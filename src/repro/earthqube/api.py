"""JSON-level request API: the back-end server's wire format.

"The back-end server provides the means to submit geospatial queries,
filter the images based on different search criteria, and perform CBIR.
To this end, EarthQube invokes different services that validate and process
the user query" (paper, Section 3.2).

:class:`EarthQubeAPI` is that validation/processing layer: it accepts plain
``dict`` requests (what an HTTP handler would deserialize), validates every
field into typed query objects, dispatches to the system services, and
returns plain JSON-compatible ``dict`` responses.  All validation failures
surface as structured error responses instead of exceptions, mirroring a
well-behaved HTTP 400.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Mapping

from ..errors import ReproError, ValidationError
from ..geo.bbox import BoundingBox
from ..geo.shapes import Circle, Polygon, Rectangle, Shape
from ..obs import Observability, render_prometheus
from .label_filter import LabelOperator
from .query import QuerySpec
from .server import EarthQube

if TYPE_CHECKING:
    from ..federation.facade import FederatedEarthQube

_OPERATORS = {op.value: op for op in LabelOperator}


def _parse_shape(payload: "Mapping[str, Any] | None") -> "Shape | None":
    """Parse the query panel's shape payload.

    Formats (mirroring the coordinates subsection / drawn shapes):
      {"type": "rectangle", "west": .., "south": .., "east": .., "north": ..}
      {"type": "circle", "lon": .., "lat": .., "radius_km": ..}
      {"type": "polygon", "coordinates": [[lon, lat], ...]}
    """
    if payload is None:
        return None
    if not isinstance(payload, Mapping):
        raise ValidationError("shape must be an object")
    kind = payload.get("type")
    if kind == "rectangle":
        try:
            return Rectangle(BoundingBox(
                west=float(payload["west"]), south=float(payload["south"]),
                east=float(payload["east"]), north=float(payload["north"])))
        except KeyError as missing:
            raise ValidationError(f"rectangle shape is missing {missing}") from None
    if kind == "circle":
        try:
            return Circle(lon=float(payload["lon"]), lat=float(payload["lat"]),
                          radius_km=float(payload["radius_km"]))
        except KeyError as missing:
            raise ValidationError(f"circle shape is missing {missing}") from None
    if kind == "polygon":
        coords = payload.get("coordinates")
        if not isinstance(coords, (list, tuple)):
            raise ValidationError("polygon shape needs a coordinates list")
        return Polygon.from_coords(coords)
    raise ValidationError(
        f"unknown shape type {kind!r}; expected rectangle, circle, or polygon")


def parse_query_request(payload: Mapping[str, Any]) -> QuerySpec:
    """Validate a raw search request into a :class:`QuerySpec`."""
    if not isinstance(payload, Mapping):
        raise ValidationError("request body must be an object")
    unknown = set(payload) - {"shape", "date_from", "date_to", "seasons",
                              "satellites", "labels", "label_operator",
                              "limit", "skip"}
    if unknown:
        raise ValidationError(f"unknown request fields: {sorted(unknown)}")
    operator_name = payload.get("label_operator", "some")
    operator = _OPERATORS.get(operator_name)
    if operator is None:
        raise ValidationError(
            f"unknown label_operator {operator_name!r}; "
            f"expected one of {sorted(_OPERATORS)}")
    labels = payload.get("labels")
    return QuerySpec(
        shape=_parse_shape(payload.get("shape")),
        date_from=payload.get("date_from"),
        date_to=payload.get("date_to"),
        seasons=tuple(payload["seasons"]) if payload.get("seasons") else None,
        satellites=tuple(payload["satellites"]) if payload.get("satellites") else None,
        labels=tuple(labels) if labels else None,
        label_operator=operator,
        limit=payload.get("limit"),
        skip=payload.get("skip", 0),
    )


class EarthQubeAPI:
    """Dict-in/dict-out facade over a bootstrapped :class:`EarthQube`.

    With ``federation`` set, query routes (search / similar /
    similar_batch / statistics) scatter-gather across the federation's
    nodes instead of hitting the local system; federated responses carry a
    ``federation`` section (the :class:`~repro.federation.executor.
    FederatedResultMeta`) naming the nodes that answered, failed, or were
    skipped.  ``GET /federation/nodes`` exposes membership and health.
    """

    def __init__(self, system: "EarthQube | None" = None, *,
                 federation: "FederatedEarthQube | None" = None) -> None:
        if system is None and federation is None:
            raise ValidationError(
                "EarthQubeAPI needs a system, a federation, or both")
        self.system = system
        self.federation = federation

    @staticmethod
    def _error(exc: Exception) -> dict:
        return {"ok": False, "error": type(exc).__name__, "message": str(exc)}

    def _require_system(self) -> EarthQube:
        if self.system is None:
            raise ValidationError("this route needs a local system "
                                  "(the API was built federation-only)")
        return self.system

    def _obs(self) -> Observability:
        """The observability facade query routes report into.

        Federated APIs observe at the federation front-end (the request's
        root lives there; per-node work stitches in as child spans);
        otherwise at the local system.
        """
        if self.federation is not None:
            return self.federation.obs
        return self._require_system().obs

    @staticmethod
    def _attach_trace(payload: dict, request_ctx) -> dict:
        """Add ``trace_id`` + the span tree to a ``trace=true`` response."""
        if request_ctx.traced:
            payload["trace_id"] = request_ctx.trace_id
            payload["trace"] = request_ctx.tree()
        return payload

    @staticmethod
    def _attach_costs(explain: dict, request_ctx) -> dict:
        """Add the request's cost profile to an ``explain=true`` section.

        ``costs`` totals the typed operator counters (rows scanned, buckets
        probed, candidates verified, ...); ``stages`` attributes them to
        the operator stages with per-stage self-time.  Both come from the
        span tree when traced, from the cost-only ledger otherwise, and
        are omitted only when cost tracking is disabled.

        When the query planner recorded its decision on the span tree the
        section also carries ``plan`` (the similarity planner's chosen
        plan, the rejected alternatives with predicted costs, and the
        measured execution cost) and ``store_plan`` (the columnar
        intersection-order decision).  Legacy string ``plan`` annotations
        (the metadata access path) are left to the route's own fields.
        """
        profile = request_ctx.profile()
        if profile is not None:
            explain["costs"] = profile["costs"]
            explain["stages"] = profile["stages"]
            attrs = profile.get("attrs") or {}
            plan = attrs.get("plan")
            if isinstance(plan, dict) and "plan" not in explain:
                explain["plan"] = plan
            store_plan = attrs.get("store_plan")
            if isinstance(store_plan, dict) and "store_plan" not in explain:
                explain["store_plan"] = store_plan
        return explain

    def _attach_federation(self, payload: dict, meta) -> dict:
        """Add the coverage meta; flag responses that lost nodes.

        Whenever the scatter recorded failed nodes the response carries a
        top-level ``partial`` flag plus the failed node list — clients
        must not have to dig through ``federation.failed`` to notice.
        ``partial`` is ``true`` only when the failures actually cost
        coverage: an elastic federation that answered every ring segment
        through fallback replicas reports ``partial: false`` (the result
        is byte-complete) while still naming the failed nodes.  Each
        coverage-losing response increments the
        ``federation.partial_responses`` counter on ``GET /metrics``.
        """
        if meta is None:
            return payload
        payload["federation"] = meta.as_dict()
        if meta.failed:
            partial = not meta.coverage_complete
            payload["partial"] = partial
            payload["failed_nodes"] = sorted(meta.failed)
            if partial and self.federation is not None:
                self.federation.metrics.counter(
                    "federation.partial_responses").increment()
        return payload

    @staticmethod
    def _parse_filter(payload: "Mapping[str, Any] | None") -> "QuerySpec | None":
        """Parse the optional metadata filter of a CBIR request.

        The filter reuses the search-request schema, but selects *all*
        matching images: pagination fields are meaningless and rejected.
        """
        if payload is None:
            return None
        spec = parse_query_request(payload)
        if spec.limit is not None or spec.skip:
            raise ValidationError(
                "a similarity filter selects all matching images; "
                "it cannot carry limit/skip")
        return spec

    def search(self, request: Mapping[str, Any]) -> dict:
        """POST /search — query-panel search (federated when configured).

        ``explain=true`` adds an ``explain`` section whose ``plan`` object
        carries the access-path ``query_plan`` string plus — when the
        store's cost-ordered intersection ran — the chosen source order,
        the rejected declaration order with predicted costs, and the
        measured intersection cost; ``candidates_examined`` counts the
        index candidates the matcher verified.  ``trace=true`` adds
        ``trace_id`` and the request's span ``trace`` tree.
        """
        try:
            if not isinstance(request, Mapping):
                raise ValidationError("request body must be an object")
            request = dict(request)
            explain = bool(request.pop("explain", False))
            trace = bool(request.pop("trace", False))
            spec = parse_query_request(request)
            with self._obs().request("api.search", force_trace=trace) as ctx:
                if self.federation is not None:
                    federated = self.federation.search(spec)
                    response, meta = federated.value, federated.meta
                else:
                    response, meta = self._require_system().search(spec), None
        except ReproError as exc:
            return self._error(exc)
        payload = {
            "ok": True,
            "total_matches": response.total_matches,
            "plan": response.plan,
            "names": response.names,
            "documents": response.documents,
        }
        if explain:
            section = self._attach_costs(
                {"candidates_examined": response.candidates_examined}, ctx)
            plan_section = {"query_plan": response.plan}
            plan_section.update(section.pop("store_plan", None) or {})
            section["plan"] = plan_section
            payload["explain"] = section
        self._attach_federation(payload, meta)
        return self._attach_trace(payload, ctx)

    def similar(self, request: Mapping[str, Any]) -> dict:
        """POST /similar — CBIR from an archive image name.

        Under federation the name may be namespaced (``node/patch_name``);
        a bare name resolves to the first node that indexes it.  An
        optional ``filter`` object (search-request schema) restricts the
        ranking to metadata-matching images (filtered similarity).
        ``explain=true`` adds an ``explain`` section with the request's
        operator cost counters, per-stage self-times, and the query
        planner's ``plan`` record — chosen physical plan, rejected
        alternatives with predicted costs, and the measured execution
        cost (plus ``store_plan`` when a metadata filter ran the columnar
        intersection planner).
        """
        try:
            if not isinstance(request, Mapping) or "name" not in request:
                raise ValidationError("similar request needs a 'name' field")
            name = str(request["name"])
            k = request.get("k", 10)
            radius = request.get("radius")
            trace = bool(request.get("trace", False))
            explain = bool(request.get("explain", False))
            kwargs = ({"k": None, "radius": int(radius)} if radius is not None
                      else {"k": int(k)})
            kwargs["filter"] = self._parse_filter(request.get("filter"))
            meta = None
            with self._obs().request("api.similar", force_trace=trace) as ctx:
                if self.federation is not None:
                    federated = self.federation.similar_images(name, **kwargs)
                    result, meta = federated.value, federated.meta
                else:
                    result = self._require_system().similar_images(name, **kwargs)
        except ReproError as exc:
            return self._error(exc)
        payload = {
            "ok": True,
            "query": result.query_name,
            "radius_used": result.radius_used,
            "results": [{"name": str(r.item_id), "distance": r.distance}
                        for r in result.results],
        }
        if explain:
            payload["explain"] = self._attach_costs({}, ctx)
        self._attach_federation(payload, meta)
        return self._attach_trace(payload, ctx)

    def similar_batch(self, request: Mapping[str, Any]) -> dict:
        """POST /similar/batch — CBIR for many archive images in one call.

        Request: ``{"names": [...], "k": 10}`` or
        ``{"names": [...], "radius": 2}``, optionally with a ``filter``
        object applied to the whole batch.  The whole batch executes one
        coalesced index pass; the response carries one entry per name, in
        request order, each shaped exactly like a ``/similar`` response.
        ``explain=true`` adds the batch's cost counters and the planner's
        ``plan`` record, as on ``/similar``.
        """
        try:
            if not isinstance(request, Mapping):
                raise ValidationError("similar_batch request must be an object")
            names = request.get("names")
            if not isinstance(names, (list, tuple)) or not names:
                raise ValidationError(
                    "similar_batch request needs a non-empty 'names' list")
            names = [str(name) for name in names]
            k = request.get("k", 10)
            radius = request.get("radius")
            trace = bool(request.get("trace", False))
            explain = bool(request.get("explain", False))
            kwargs = ({"k": None, "radius": int(radius)} if radius is not None
                      else {"k": int(k)})
            kwargs["filter"] = self._parse_filter(request.get("filter"))
            meta = None
            with self._obs().request("api.similar_batch",
                                     force_trace=trace) as ctx:
                if self.federation is not None:
                    federated = self.federation.similar_images_batch(
                        names, **kwargs)
                    responses, meta = federated.value, federated.meta
                else:
                    responses = self._require_system().similar_images_batch(
                        names, **kwargs)
        except ReproError as exc:
            return self._error(exc)
        payload = {
            "ok": True,
            "count": len(responses),
            "queries": [{
                "query": response.query_name,
                "radius_used": response.radius_used,
                "results": [{"name": str(r.item_id), "distance": r.distance}
                            for r in response.results],
            } for response in responses],
        }
        if explain:
            payload["explain"] = self._attach_costs({}, ctx)
        self._attach_federation(payload, meta)
        return self._attach_trace(payload, ctx)

    def delete_image(self, name: str) -> dict:
        """DELETE /images/<name> — remove an image from the live archive.

        Removes the store documents and the retrieval code in one step, so
        the image immediately stops appearing in search, similarity (all
        paths), statistics, and rendering.  Under federation the name may
        be namespaced (``node/patch_name``); a bare name resolves to the
        first node that indexes it, and the response names the owning node.
        """
        try:
            if not isinstance(name, str) or not name:
                raise ValidationError("delete_image needs a non-empty name")
            if self.federation is not None:
                summary = self.federation.delete_image(name)
            else:
                summary = self._require_system().delete_image(name)
        except ReproError as exc:
            return self._error(exc)
        return {"ok": True, "deleted": True, **summary}

    def statistics(self, request: Mapping[str, Any]) -> dict:
        """POST /statistics — label statistics for a list of names."""
        try:
            names = request.get("names") if isinstance(request, Mapping) else None
            if not isinstance(names, (list, tuple)) or not names:
                raise ValidationError("statistics request needs a non-empty 'names' list")
            meta = None
            if self.federation is not None:
                federated = self.federation.statistics_for(list(names))
                stats, meta = federated.value, federated.meta
            else:
                stats = self._require_system().statistics_for(list(names))
        except ReproError as exc:
            return self._error(exc)
        payload = {
            "ok": True,
            "total_images": stats.total_images,
            "bars": [{"label": b.label, "count": b.count, "color": b.color}
                     for b in stats],
        }
        return self._attach_federation(payload, meta)

    def feedback(self, request: Mapping[str, Any]) -> dict:
        """POST /feedback — store anonymous feedback (always node-local)."""
        try:
            if not isinstance(request, Mapping) or "text" not in request:
                raise ValidationError("feedback request needs a 'text' field")
            self._require_system().submit_feedback(
                str(request["text"]),
                category=request.get("category", "comment"))
        except ReproError as exc:
            return self._error(exc)
        return {"ok": True}

    def describe(self) -> dict:
        """GET /describe — system (and federation) summary."""
        payload: dict = {"ok": True}
        if self.system is not None:
            payload.update(self.system.describe())
        if self.federation is not None:
            payload["federation"] = self.federation.describe()
        return payload

    def federation_nodes(self) -> dict:
        """GET /federation/nodes — membership, capabilities, health.

        Each entry names one node with its capability descriptor
        (collections, code bit-width, corpus size) and circuit-breaker
        health state; ``federated: false`` when no federation is wired.
        """
        if self.federation is None:
            return {"ok": True, "federated": False, "count": 0, "nodes": []}
        nodes = self.federation.nodes()
        payload = {"ok": True, "federated": True, "count": len(nodes),
                   "nodes": nodes}
        if self.federation.elastic:
            payload["replication"] = {
                "replication_factor":
                    self.federation.config.replication_factor,
                "ring": self.federation.ring.describe(),
                "pending_hints": self.federation.hints.snapshot(),
            }
        return payload

    def federation_join(self, request: Mapping[str, Any]) -> dict:
        """POST /federation/join — add a node to a live elastic federation.

        Request: ``{"name": "<node>", "serving": false}``.  The new node
        starts as an empty clone of an existing member (same trained
        models), receives its shard through seq-stamped snapshot handoff,
        catches up on writes that raced the transfer, and only then joins
        the placement ring.  The response reports how many patches/bytes
        were shipped and how many tail writes were replayed.
        """
        try:
            if self.federation is None:
                raise ValidationError("this API has no federation wired")
            if not isinstance(request, Mapping) or "name" not in request:
                raise ValidationError("join request needs a 'name' field")
            summary = self.federation.join_node(
                str(request["name"]),
                serving=bool(request.get("serving", False)))
        except ReproError as exc:
            return self._error(exc)
        return {"ok": True, "joined": True, **summary}

    def federation_leave(self, request: Mapping[str, Any]) -> dict:
        """POST /federation/leave — remove a node from an elastic federation.

        Request: ``{"name": "<node>", "graceful": true}``.  Graceful
        (default): the node ships its shard to the members that inherit
        its placement, then deregisters — no replication debt.
        ``graceful: false`` declares the node dead instead: it is ejected
        immediately and its shard is re-replicated from the surviving
        replicas (the response lists any patch with no surviving copy).
        """
        try:
            if self.federation is None:
                raise ValidationError("this API has no federation wired")
            if not isinstance(request, Mapping) or "name" not in request:
                raise ValidationError("leave request needs a 'name' field")
            name = str(request["name"])
            if request.get("graceful", True):
                summary = self.federation.leave_node(name)
            else:
                summary = self.federation.node_died(name)
        except ReproError as exc:
            return self._error(exc)
        return {"ok": True, "left": True, **summary}

    def metrics(self, format: str = "json") -> "dict | str":
        """GET /metrics — serving + federation observability snapshot.

        ``serving``: latency percentiles, QPS, cache hit/miss accounting,
        micro-batcher coalescing stats, and shard occupancy when the
        serving tier is enabled (``null`` otherwise).  ``federation``:
        scatter-gather latency with the per-node series when federated.

        ``workload``: per-query-family (backend × strategy × selectivity)
        latency and cost-counter aggregates when workload statistics are
        enabled.

        ``GET /metrics?format=prometheus`` returns the same snapshot as
        Prometheus text exposition (version 0.0.4) instead of JSON:
        counters as ``_total`` series, latency summaries in seconds with
        quantile labels plus cumulative ``_hist_seconds`` bucket series,
        labeled families (e.g. per-node latency) with their label sets.
        """
        if format not in ("json", "prometheus"):
            return self._error(ValidationError(
                f"format must be 'json' or 'prometheus', got {format!r}"))
        payload: dict = {"ok": True, "serving": None}
        if self.system is not None and self.system.gateway is not None:
            payload["serving"] = self.system.gateway.metrics_snapshot()
        if self.federation is not None:
            payload["federation"] = self.federation.metrics_snapshot()
        workload = self._obs().workload
        if workload is not None:
            payload["workload"] = workload.metrics_snapshot()
        if format == "prometheus":
            return render_prometheus(payload)
        return payload

    def admin_checkpoint(self) -> dict:
        """POST /admin/checkpoint — checkpoint the durable node now.

        Writes an atomic snapshot (document store + packed code matrix +
        alive mask) covering the current WAL sequence, then truncates the
        covered log prefix.  Requires a local system with the durability
        tier attached (:class:`~repro.earthqube.durability.DurableEarthQube`);
        an un-durable node answers with a structured error.
        """
        try:
            system = self._require_system()
            durability = system.durability
            if durability is None:
                raise ValidationError(
                    "this node has no durability tier; attach a "
                    "DurableEarthQube to enable checkpoints")
            info = durability.checkpoint()
        except ReproError as exc:
            return self._error(exc)
        return {
            "ok": True,
            "checkpoint": {
                "wal_seq": info.wal_seq,
                "num_rows": info.num_rows,
                "num_words": info.num_words,
                "created_at": info.created_at,
            },
            "wal_records": durability.wal.record_count,
        }

    def health(self) -> dict:
        """GET /health — liveness: the process answers requests at all."""
        return {"ok": True, "status": "alive"}

    def ready(self) -> dict:
        """GET /ready — readiness: can this API actually serve queries?

        A local system is ready once its Hamming index holds at least one
        image; a federation is ready when it has registered nodes and at
        least one circuit is not open.  ``ready`` is the conjunction, so a
        load balancer can gate traffic on this single flag.

        A durable node additionally reports its durability state — last
        checkpoint sequence, WAL length, and whether a recovery replay is
        in progress (which gates readiness, so an orchestrator holds
        traffic until the replay lands).
        """
        ready = True
        payload: dict = {"ok": True, "system": None, "federation": None}
        if self.system is not None:
            indexed = len(self.system.cbir)
            payload["system"] = {
                "index_built": indexed > 0,
                "indexed_images": indexed,
                "serving_enabled": self.system.gateway is not None,
            }
            ready = ready and indexed > 0
            durability = self.system.durability
            if durability is not None:
                info = durability.durability_info()
                payload["system"]["durability"] = {
                    "last_checkpoint_seq": info["last_checkpoint_seq"],
                    "snapshot_age_seconds": info["snapshot_age_seconds"],
                    "wal_records": info["wal_records"],
                    "wal_last_seq": info["wal_last_seq"],
                    "last_applied_seq": info["last_applied_seq"],
                    "recovery_in_progress": info["recovery_in_progress"],
                }
                ready = ready and not info["recovery_in_progress"]
        if self.federation is not None:
            nodes = self.federation.nodes()
            open_circuits = sum(1 for entry in nodes
                                if entry["health"]["state"] == "open")
            payload["federation"] = {
                "nodes_total": len(nodes),
                "nodes_open_circuit": open_circuits,
                "nodes_available": len(nodes) - open_circuits,
                # How long each ejected node has been out: an operator (or
                # autoscaler) reads sustained ages as "replace the node",
                # transient ones as "a probe will readmit it shortly".
                "open_breaker_ages_seconds": {
                    entry["name"]: entry["health"]["open_age_seconds"]
                    for entry in nodes
                    if entry["health"]["state"] == "open"},
            }
            ready = ready and len(nodes) > 0 and open_circuits < len(nodes)
        payload["ready"] = ready
        return payload

    def slow_queries(self, limit: "int | None" = None) -> dict:
        """GET /debug/slow_queries — the slow-query ring buffer, newest
        first.  Traced entries carry their span tree, so a tail-latency
        spike can be drilled into after the fact."""
        try:
            if limit is not None and int(limit) < 1:
                raise ValidationError(f"limit must be >= 1, got {limit}")
        except (TypeError, ValueError):
            return self._error(ValidationError(
                f"limit must be an integer, got {limit!r}"))
        except ReproError as exc:
            return self._error(exc)
        log = self._obs().slow_log
        entries = log.snapshot()
        if limit is not None:
            entries = entries[:int(limit)]
        info = log.describe()
        return {"ok": True, "threshold_ms": info["threshold_ms"],
                "capacity": info["capacity"],
                "recorded_total": info["recorded_total"],
                "count": len(entries), "entries": entries}

    def workload(self) -> dict:
        """GET /debug/workload — the workload-statistics profile.

        One entry per query family — ``(backend, strategy,
        filter-selectivity bucket)`` — with its latency percentile summary
        and per-cost-counter aggregates (total / mean / max / power-of-two
        histogram).  Every root request lands here, sampled or not, so the
        profile converges on real traffic; the same document persists as
        the workload-profile JSON sidecar.
        """
        profile = self._obs().workload_profile()
        if profile is None:
            return self._error(ValidationError(
                "workload statistics are disabled "
                "(ObsConfig.workload_enabled=false)"))
        return {"ok": True, **profile}
