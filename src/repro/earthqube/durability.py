"""Crash-safe durability for a live EarthQube node.

:class:`DurableEarthQube` attaches to a bootstrapped
:class:`~repro.earthqube.server.EarthQube` and makes its mutable state —
the document store *and* the CBIR index — survive a ``kill -9``:

* every mutation that reaches the store/CBIR tier (collection
  ``insert_one``/``insert_many``/``update_one``/``delete_one``/
  ``delete_many``, ``cbir.add_image``, facade ``ingest_new_patch``/
  ``delete_image``/``update_image``/``compact_index``) is journaled to a
  :class:`~repro.store.wal.WriteAheadLog` *before* the in-memory apply,
* :meth:`checkpoint` writes an atomic
  :class:`~repro.store.snapshot.SnapshotManager` checkpoint — document
  store plus the packed code matrix and alive mask — covering the WAL
  sequence reached, then truncates the log,
* on attach, existing on-disk state triggers recovery: load the last
  checkpoint, replay the WAL tail, rebuild the serving gateway with a
  monotone generation, and (optionally) verify recovered hash codes
  against a sampled re-extraction oracle.

Granularity is the *logical operation*: one WAL record per facade op or
direct collection write.  Nested writes (the three document inserts inside
one ingest) ride on the outer record — replaying the op re-derives them,
which is deterministic because replay starts from the exact state the live
op saw.  Recovery therefore lands on an operation boundary: the recovered
node equals the never-crashed node after the same op prefix, byte for byte
(``tests/store/test_crash_recovery.py`` asserts exactly this against an
oracle for every crash point).
"""

from __future__ import annotations

import time
from datetime import datetime
from pathlib import Path
from typing import Any

import numpy as np

from ..bigearthnet.patch import Patch
from ..config import DurabilityConfig
from ..errors import DurabilityError, ReproError, ValidationError
from ..geo.bbox import BoundingBox
from ..obs import tracing
from ..serving.metrics import MetricsRegistry
from ..store.faults import NO_FAULTS, FaultInjector
from ..store.snapshot import SnapshotManager
from ..store.wal import WriteAheadLog

_WAL_FILE = "wal.log"
_CHECKPOINT_DIR = "checkpoint"

#: Collection mutation methods that take the WAL detour.
_STORE_OPS = ("insert_one", "insert_many", "update_one",
              "delete_one", "delete_many")


def patch_to_payload(patch: Patch) -> dict:
    """Serialize a :class:`Patch` for a WAL record (bit-exact bands)."""
    return {
        "name": patch.name,
        "labels": list(patch.labels),
        "country": patch.country,
        "bbox": [patch.bbox.west, patch.bbox.south,
                 patch.bbox.east, patch.bbox.north],
        "acquisition_date": patch.acquisition_date.isoformat(),
        "season": patch.season,
        "s2_bands": dict(patch.s2_bands),
        "s1_bands": dict(patch.s1_bands),
    }


def patch_from_payload(payload: dict) -> Patch:
    """Invert :func:`patch_to_payload`."""
    west, south, east, north = payload["bbox"]
    return Patch(
        name=payload["name"],
        labels=tuple(payload["labels"]),
        country=payload["country"],
        bbox=BoundingBox(west=west, south=south, east=east, north=north),
        acquisition_date=datetime.fromisoformat(payload["acquisition_date"]),
        season=payload["season"],
        s2_bands={band: np.asarray(pixels, dtype=np.float32)
                  for band, pixels in payload["s2_bands"].items()},
        s1_bands={band: np.asarray(pixels, dtype=np.float32)
                  for band, pixels in payload["s1_bands"].items()},
    )


class DurableEarthQube:
    """WAL + checkpoint + recovery wrapper around a live system.

    Construction is the whole lifecycle driver: with a clean directory it
    writes an initial checkpoint (so even a node that crashes before its
    first explicit checkpoint restarts without re-embedding); with
    existing state it recovers — checkpoint load, WAL tail replay, serving
    rebuild — before returning.  After construction the system is live and
    journaled; ``system.durability`` points back here.
    """

    def __init__(self, system, config: "DurabilityConfig | None" = None, *,
                 faults: "FaultInjector | None" = None) -> None:
        self.system = system
        self.config = config if config is not None else system.config.durability
        if self.config.directory is None:
            raise ValidationError(
                "DurabilityConfig.directory must be set to attach "
                "DurableEarthQube")
        self.faults = faults if faults is not None else NO_FAULTS
        self.metrics = MetricsRegistry()
        self.directory = Path(self.config.directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        wal_path = self.directory / _WAL_FILE
        self.snapshots = SnapshotManager(self.directory / _CHECKPOINT_DIR,
                                         faults=self.faults)
        had_manifest = self.snapshots.manifest_path.exists()
        had_wal = wal_path.exists()
        self.wal = WriteAheadLog(wal_path, fsync=self.config.fsync,
                                 fsync_interval=self.config.fsync_interval,
                                 faults=self.faults, metrics=self.metrics)
        self._in_op = False
        self._replaying = False
        self._recovery_in_progress = False
        # Names re-embedded from externally supplied features: their codes
        # legitimately disagree with the re-extraction oracle, so the
        # verify pass skips them.  Persisted in the checkpoint manifest
        # (the information is gone from the WAL once it truncates).
        self._reembedded: set = set()
        self._last_applied_seq = self.wal.last_seq
        self.recovery_info: "dict | None" = None
        self._original_store_methods: dict = {}
        self._wrap_system()
        self._wrap_database(system.db)
        if had_manifest or (had_wal and self.wal.record_count > 0):
            self.recover()
        else:
            # First attach: checkpoint immediately so a crash at any later
            # instant restores from disk instead of re-embedding.
            self.checkpoint()
        system.durability = self

    # ------------------------------------------------------------------ #
    # Journaling wrappers
    # ------------------------------------------------------------------ #

    def _journaled(self, op: str, payload_of, original):
        """Wrap a bound mutation method with append-before-apply.

        Nested calls (``_in_op``) and recovery replay (``_replaying``)
        pass straight through: the outer record — or the record being
        replayed — already covers them.
        """
        def wrapped(*args: Any, **kwargs: Any):
            if self._in_op or self._replaying:
                return original(*args, **kwargs)
            payload = payload_of(*args, **kwargs)
            self._in_op = True
            try:
                seq = self.wal.append(op, payload)
                result = original(*args, **kwargs)
            finally:
                self._in_op = False
            self._last_applied_seq = seq
            self._maybe_auto_checkpoint()
            return result
        wrapped.__wrapped__ = original  # type: ignore[attr-defined]
        return wrapped

    def _wrap_system(self) -> None:
        system = self.system
        system.ingest_new_patch = self._journaled(
            "image.ingest",
            lambda patch, **kwargs: {"patch": patch_to_payload(patch),
                                     **kwargs},
            system.ingest_new_patch)
        system.delete_image = self._journaled(
            "image.delete", lambda name: {"name": name}, system.delete_image)

        original_update = system.update_image

        def tracked_update(name, features):
            result = original_update(name, features)
            self._reembedded.add(name)
            return result

        system.update_image = self._journaled(
            "image.update",
            lambda name, features: {
                "name": name,
                "features": np.asarray(features, dtype=np.float64)},
            tracked_update)
        system.compact_index = self._journaled(
            "index.compact", lambda: {}, system.compact_index)
        system.import_shard = self._journaled(
            "shard.import",
            lambda shard, *, realign=None: {"shard": shard,
                                            "realign": realign},
            system.import_shard)
        system.cbir.add_image = self._journaled(
            "cbir.add_image",
            lambda name, features: {
                "name": name,
                "features": np.asarray(features, dtype=np.float64)},
            system.cbir.add_image)

    def _wrap_database(self, db) -> None:
        """Journal direct collection writes (metadata fixes, feedback, ...).

        Re-run against the restored database after recovery swaps it in.
        """
        self._original_store_methods = {}
        for collection_name in db.collection_names():
            collection = db[collection_name]
            for method_name in _STORE_OPS:
                original = getattr(collection, method_name)
                payload_of = self._store_payload(collection_name, method_name)
                setattr(collection, method_name,
                        self._journaled(f"store.{method_name}", payload_of,
                                        original))
                self._original_store_methods[(collection_name,
                                              method_name)] = original

    @staticmethod
    def _store_payload(collection_name: str, method_name: str):
        if method_name == "insert_one":
            return lambda document: {"collection": collection_name,
                                     "document": dict(document)}
        if method_name == "insert_many":
            return lambda documents: {"collection": collection_name,
                                      "documents": [dict(d)
                                                    for d in documents]}
        if method_name == "update_one":
            def payload(query, update):
                if callable(update):
                    raise DurabilityError(
                        "callable update_one arguments are not "
                        "WAL-serializable on a durable system; pass a "
                        '{"$set": ...} document instead')
                return {"collection": collection_name,
                        "query": dict(query), "update": dict(update)}
            return payload
        # delete_one / delete_many
        return lambda query: {"collection": collection_name,
                              "query": dict(query)}

    # ------------------------------------------------------------------ #
    # Checkpoints
    # ------------------------------------------------------------------ #

    def checkpoint(self):
        """Write an atomic checkpoint and truncate the covered WAL prefix.

        Returns the committed
        :class:`~repro.store.snapshot.SnapshotInfo`.  Crash windows: dying
        before the manifest replace leaves the previous checkpoint + full
        WAL (recovery replays everything); dying after it but before the
        truncate leaves a log whose prefix the checkpoint already covers
        (recovery skips records at or below the covered sequence).
        """
        with tracing.span("durability.checkpoint") as span:
            state = self.system.cbir.snapshot_state()
            covered = self.wal.last_seq
            info = self.snapshots.write(
                self.system.db, names=state["names"], codes=state["codes"],
                alive=state["alive"], wal_seq=covered,
                extra={"reembedded": sorted(self._reembedded)})
            span.annotate(wal_seq=covered, rows=info.num_rows)
            self.wal.truncate(covered)
        self.metrics.counter("checkpoint.runs").increment()
        self._refresh_gauges()
        return info

    def _maybe_auto_checkpoint(self) -> None:
        limit = self.config.auto_checkpoint_records
        if limit and self.wal.record_count >= limit:
            self.checkpoint()

    def _refresh_gauges(self) -> None:
        info = self.snapshots.read_manifest()
        if info is not None:
            self.metrics.gauge("snapshot.age_seconds").set(info.age_seconds)
            self.metrics.gauge("snapshot.covered_seq").set(info.wal_seq)

    # ------------------------------------------------------------------ #
    # Recovery
    # ------------------------------------------------------------------ #

    def recover(self, *, verify: "bool | None" = None) -> dict:
        """Restore checkpoint state and replay the WAL tail onto it.

        Runs automatically at attach when on-disk state exists.  ``verify``
        overrides ``config.verify_on_load`` (sampled re-extraction oracle
        over the recovered codes).  Returns (and stores as
        ``self.recovery_info``) a summary dict — also surfaced by
        ``GET /ready`` so an orchestrator can gate traffic.
        """
        verify = self.config.verify_on_load if verify is None else verify
        started = time.perf_counter()
        self._recovery_in_progress = True
        try:
            with tracing.span("durability.recover") as span:
                snapshot = self.snapshots.load_latest()
                checkpoint_seq = 0
                self._reembedded = (set(snapshot.info.extra.get(
                    "reembedded", [])) if snapshot is not None else set())
                if snapshot is not None:
                    with tracing.span("recover.load_checkpoint") as load_span:
                        self.system.attach_database(snapshot.db)
                        self._wrap_database(snapshot.db)
                        self.system.cbir.restore_state(
                            snapshot.names, snapshot.codes, snapshot.alive)
                        checkpoint_seq = snapshot.info.wal_seq
                        load_span.annotate(rows=snapshot.info.num_rows,
                                           wal_seq=checkpoint_seq)
                        load_span.add_cost(
                            codes_restored=snapshot.info.num_rows)
                replayed, skipped = self._replay_tail(checkpoint_seq)
                if self.system.gateway is not None:
                    self._restore_serving()
                if verify:
                    self._verify_codes()
                span.annotate(checkpoint_seq=checkpoint_seq,
                              replayed=replayed, skipped=skipped)
        finally:
            self._recovery_in_progress = False
        self.recovery_info = {
            "recovered": True,
            "checkpoint_seq": checkpoint_seq,
            "replayed_records": replayed,
            "skipped_records": skipped,
            "last_applied_seq": self._last_applied_seq,
            "verified": bool(verify),
            "duration_seconds": time.perf_counter() - started,
        }
        self.metrics.counter("recovery.runs").increment()
        self._refresh_gauges()
        return self.recovery_info

    def _replay_tail(self, checkpoint_seq: int) -> "tuple[int, int]":
        """Apply every WAL record past the checkpoint; returns
        ``(applied, skipped)``.

        A record whose apply raises a :class:`ReproError` is skipped: the
        WAL is append-before-apply, so an op that failed validation on the
        live node left a record behind — replaying it from the identical
        state fails identically, which is the correct (deterministic)
        outcome, not damage.
        """
        records = self.wal.replay(after_seq=checkpoint_seq)
        applied = skipped = 0
        self._replaying = True
        try:
            with tracing.span("recover.replay",
                              records=len(records)) as replay_span:
                for record in records:
                    try:
                        self._apply(record.op, record.payload)
                        applied += 1
                    except ReproError:
                        skipped += 1
                replay_span.add_cost(wal_records_replayed=applied,
                                     wal_records_skipped=skipped)
        finally:
            self._replaying = False
        self._last_applied_seq = (records[-1].seq if records
                                  else checkpoint_seq)
        return applied, skipped

    def _apply(self, op: str, payload: dict) -> None:
        system = self.system
        if op == "image.ingest":
            kwargs = {k: v for k, v in payload.items() if k != "patch"}
            system.ingest_new_patch(patch_from_payload(payload["patch"]),
                                    **kwargs)
        elif op == "image.delete":
            system.delete_image(payload["name"])
        elif op == "image.update":
            system.update_image(payload["name"], payload["features"])
        elif op == "index.compact":
            system.compact_index()
        elif op == "shard.import":
            system.import_shard(payload["shard"], realign=payload["realign"])
        elif op == "cbir.add_image":
            system.cbir.add_image(payload["name"], payload["features"])
        elif op.startswith("store."):
            collection = system.db[payload["collection"]]
            method = getattr(collection, op.removeprefix("store."))
            if op == "store.insert_one":
                method(payload["document"])
            elif op == "store.insert_many":
                method(payload["documents"])
            elif op == "store.update_one":
                method(payload["query"], payload["update"])
            else:
                method(payload["query"])
        else:
            raise DurabilityError(f"unknown WAL operation {op!r}")

    def _restore_serving(self) -> None:
        """Rebuild the gateway from recovered state with a monotone
        generation.

        Each journaled mutation bumps the gateway generation at most twice
        (the mutation hook plus a coordinated compaction), so fast-
        forwarding past ``2 * last_applied_seq`` strictly supersedes any
        generation a client captured before the crash.
        """
        with tracing.span("recover.serving"):
            gateway = self.system.enable_serving()
            gateway.restore_generation(2 * self._last_applied_seq)

    def _verify_codes(self) -> None:
        """Sampled re-extraction oracle over the recovered code matrix.

        Re-extracts features for a deterministic sample of recovered
        images that still exist in the archive, re-hashes them, and
        requires bit-identity with the restored codes.  An image that was
        re-embedded with externally supplied features (``update_image``)
        legitimately disagrees with re-extraction; it is checked against
        the system's replayed feature row instead.  Debug-only
        (``verify_on_load``): it re-runs feature extraction.
        """
        system = self.system
        candidates = sorted(name for name in system.cbir._code_by_name
                            if name in system.archive
                            and name not in self._reembedded)
        sample = candidates[:self.config.verify_sample]
        with tracing.span("recover.verify", sample=len(sample)):
            for name in sample:
                patch = system.archive._by_name[name]
                features = system.extractor.extract(patch)
                code = system.hasher.hash_packed(features[None, :])[0]
                if not np.array_equal(code, system.cbir.code_of(name)):
                    raise DurabilityError(
                        f"recovered code for {name!r} does not match the "
                        f"re-extraction oracle — snapshot or WAL damage")

    # ------------------------------------------------------------------ #
    # Federation
    # ------------------------------------------------------------------ #

    def reregister(self, federation, node_name: str):
        """Re-register the recovered node with a federation.

        Replaces any stale pre-crash registration so the federation's
        scatter-gather sees the recovered system and a *fresh* capability
        descriptor (corpus size and serving state reflect post-recovery
        reality, not what the node advertised before it died).  Returns
        the new :class:`~repro.federation.registry.FederatedNode`.

        Elastic federations do more than swap the handle: a node still on
        the placement ring drains the writes hinted at it while it was
        down and realigns its index rows; a node that was ejected
        (:meth:`~repro.federation.facade.FederatedEarthQube.node_died`)
        rejoins through the full shard handoff.
        """
        return federation.reregister_node(node_name, self.system)

    # ------------------------------------------------------------------ #
    # Introspection / lifecycle
    # ------------------------------------------------------------------ #

    def durability_info(self) -> dict:
        """Durability state for ``GET /ready`` and operators."""
        manifest = self.snapshots.read_manifest()
        self._refresh_gauges()
        return {
            "enabled": True,
            "directory": str(self.directory),
            "fsync": self.config.fsync,
            "last_checkpoint_seq": (manifest.wal_seq
                                    if manifest is not None else None),
            "snapshot_age_seconds": (manifest.age_seconds
                                     if manifest is not None else None),
            "wal_records": self.wal.record_count,
            "wal_last_seq": self.wal.last_seq,
            "last_applied_seq": self._last_applied_seq,
            "recovery_in_progress": self._recovery_in_progress,
            "recovery": self.recovery_info,
        }

    @property
    def last_applied_seq(self) -> int:
        """Sequence number of the newest mutation applied in memory."""
        return self._last_applied_seq

    def close(self) -> None:
        """Sync and release the WAL (the system stays usable, un-journaled
        writes after close are NOT durable)."""
        self.wal.close()
