"""The geospatial/attribute search service (the back-end's query path).

Compiles a :class:`~repro.earthqube.query.QuerySpec` into one document-store
query over the metadata collection — spatial constraint via
``$geoIntersects`` (served by the geohash index), date range via ISO-string
comparisons, seasons/satellites via ``$in``, and the label filter via its
indexed store form — then executes it and wraps the results.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..bigearthnet.labels import LabelCharCodec
from ..store.database import Database, METADATA
from .label_filter import LabelFilter
from .query import QuerySpec


@dataclass
class SearchResponse:
    """Documents matching a query, plus execution diagnostics."""

    documents: list[dict]
    total_matches: int
    plan: str = "scan"
    candidates_examined: int = 0

    def __len__(self) -> int:
        return len(self.documents)

    def __iter__(self):
        return iter(self.documents)

    @property
    def names(self) -> list[str]:
        """Patch names of the returned page."""
        return [doc["name"] for doc in self.documents]


class SearchService:
    """Executes query-panel searches against the metadata collection."""

    def __init__(self, db: Database, codec: "LabelCharCodec | None" = None) -> None:
        self._metadata = db[METADATA]
        self._codec = codec or LabelCharCodec()

    def compile_query(self, spec: QuerySpec, *, use_codec: bool = True) -> dict:
        """The store query document for a spec (exposed for tests/benches)."""
        conditions: list[dict] = []
        if spec.shape is not None:
            conditions.append({"location": {"$geoIntersects": spec.shape}})
        if spec.date_from is not None:
            conditions.append({"properties.acquisition_date": {"$gte": spec.date_from}})
        if spec.date_to is not None:
            # Inclusive end of day: ISO timestamps on that date still match.
            conditions.append({"properties.acquisition_date": {"$lte": spec.date_to + "T23:59:59"}})
        if spec.seasons:
            conditions.append({"properties.season": {"$in": list(spec.seasons)}})
        if spec.satellites:
            conditions.append({"properties.satellites": {"$in": list(spec.satellites)}})
        if spec.labels is not None:
            label_filter = LabelFilter(spec.labels, spec.label_operator, self._codec)
            conditions.append(dict(label_filter.store_query(use_codec=use_codec)))
        if not conditions:
            return {}
        if len(conditions) == 1:
            return conditions[0]
        return {"$and": conditions}

    def search(self, spec: QuerySpec, *, use_codec: bool = True) -> SearchResponse:
        """Run the query; returns the (paginated) documents and plan info.

        Pagination is pushed into the store: only the requested page is
        deep-copied, while ``total_matches`` still reports the full
        pre-pagination match count.
        """
        query = self.compile_query(spec, use_codec=use_codec)
        result = self._metadata.find(query, skip=spec.skip, limit=spec.limit)
        return SearchResponse(
            documents=result.documents,
            total_matches=result.total_matches,
            plan=result.plan,
            candidates_examined=result.candidates_examined,
        )

    def count(self, spec: QuerySpec) -> int:
        """Number of matches without materializing a page."""
        return self._metadata.count(self.compile_query(spec))

    def matching_names(self, spec: QuerySpec) -> list[str]:
        """Patch names matching a spec's filters (pagination ignored).

        The zero-copy projection behind filtered similarity search: no
        document is materialized, only the ``name`` values are read.
        """
        query = self.compile_query(spec)
        return list(self._metadata.field_values(query, "name"))
