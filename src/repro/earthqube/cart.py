"""The download cart.

"[Users can] add the current page range of images (up to 50) to the download
cart.  The cart allows users to combine images from different searches and
download them together as a single collection" (paper, Section 3.1).
"""

from __future__ import annotations

from typing import Iterable

from ..errors import CartError


class DownloadCart:
    """Accumulates patch names across searches; order-preserving, de-duped."""

    def __init__(self, page_limit: int = 50) -> None:
        if page_limit <= 0:
            raise CartError(f"page_limit must be positive, got {page_limit}")
        self.page_limit = page_limit
        self._names: list[str] = []
        self._seen: set[str] = set()

    def __len__(self) -> int:
        return len(self._names)

    def __contains__(self, name: str) -> bool:
        return name in self._seen

    @property
    def names(self) -> list[str]:
        """Cart contents in insertion order."""
        return list(self._names)

    def add(self, name: str) -> bool:
        """Add a single image; returns False when already present."""
        if not name:
            raise CartError("cannot add an empty image name")
        if name in self._seen:
            return False
        self._seen.add(name)
        self._names.append(name)
        return True

    def add_page(self, names: Iterable[str]) -> int:
        """Add one result-page of names (at most ``page_limit``).

        Returns the number actually added (duplicates are skipped).
        Raises :class:`CartError` when the page exceeds the limit — the UI
        never offers more than 50 at once.
        """
        page = list(names)
        if len(page) > self.page_limit:
            raise CartError(
                f"page of {len(page)} images exceeds the cart page limit "
                f"of {self.page_limit}")
        return sum(1 for name in page if self.add(name))

    def remove(self, name: str) -> bool:
        """Remove one image; returns False when it was not in the cart."""
        if name not in self._seen:
            return False
        self._seen.discard(name)
        self._names.remove(name)
        return True

    def clear(self) -> None:
        """Empty the cart."""
        self._names.clear()
        self._seen.clear()

    def download(self) -> list[str]:
        """Finalize the collection: returns the names and empties the cart,
        mirroring the UI's single-collection download."""
        collection = list(self._names)
        self.clear()
        return collection
