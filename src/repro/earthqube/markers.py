"""Map-view markers and zoom-dependent cluster groups.

"The map displays the locations of the retrieved images as markers
(zoomed-in view) and marker cluster groups (zoomed-out view)" (paper,
Section 3.1).  Clustering follows the Leaflet.markercluster scheme: at web
Mercator zoom ``z`` the world is ``256 * 2^z`` pixels wide and markers
within the same ``grid_px``-pixel cell merge into one cluster whose position
is the mean of its members.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..errors import GeoError, ValidationError

_WORLD_PX_AT_ZOOM0 = 256.0
MIN_ZOOM = 0
MAX_ZOOM = 19


@dataclass(frozen=True)
class Marker:
    """One image marker: patch name plus its map position."""

    name: str
    lon: float
    lat: float

    def __post_init__(self) -> None:
        if not -180.0 <= self.lon <= 180.0:
            raise GeoError(f"marker longitude out of range: {self.lon}")
        if not -90.0 <= self.lat <= 90.0:
            raise GeoError(f"marker latitude out of range: {self.lat}")


@dataclass
class MarkerCluster:
    """A cluster group: centroid, member markers, and the cell it owns."""

    lon: float
    lat: float
    members: list[Marker] = field(default_factory=list)

    @property
    def count(self) -> int:
        return len(self.members)

    @property
    def is_singleton(self) -> bool:
        """Singletons render as plain markers in the UI."""
        return len(self.members) == 1


class MarkerClusterer:
    """Grid-based clustering at a fixed zoom level."""

    def __init__(self, zoom: int, grid_px: float = 80.0) -> None:
        if not MIN_ZOOM <= zoom <= MAX_ZOOM:
            raise ValidationError(f"zoom must be in [{MIN_ZOOM}, {MAX_ZOOM}], got {zoom}")
        if grid_px <= 0:
            raise ValidationError(f"grid_px must be positive, got {grid_px}")
        self.zoom = zoom
        self.grid_px = grid_px
        world_px = _WORLD_PX_AT_ZOOM0 * (2 ** zoom)
        # Cell size in degrees of longitude; latitude uses the Mercator
        # projection so cells are square in screen space.
        self._cell_deg = 360.0 * grid_px / world_px

    @property
    def cell_size_deg(self) -> float:
        """Longitudinal cell extent in degrees at this zoom."""
        return self._cell_deg

    @staticmethod
    def _mercator_y(lat: float) -> float:
        """Web-Mercator y in [0, 1] (clamped near the poles)."""
        lat = max(-85.05112878, min(85.05112878, lat))
        sin = math.sin(math.radians(lat))
        return 0.5 - math.log((1 + sin) / (1 - sin)) / (4 * math.pi)

    def _cell_of(self, marker: Marker) -> tuple[int, int]:
        x = (marker.lon + 180.0) / 360.0
        y = self._mercator_y(marker.lat)
        cells = 360.0 / self._cell_deg
        return (int(x * cells), int(y * cells))

    def cluster(self, markers: "list[Marker] | tuple[Marker, ...]") -> list[MarkerCluster]:
        """Group markers into cluster groups; total membership is conserved.

        Returned clusters are sorted by descending size then west-to-east,
        matching the stable order the UI renders them in.
        """
        buckets: dict[tuple[int, int], list[Marker]] = {}
        for marker in markers:
            buckets.setdefault(self._cell_of(marker), []).append(marker)
        clusters = []
        for members in buckets.values():
            lon = sum(m.lon for m in members) / len(members)
            lat = sum(m.lat for m in members) / len(members)
            clusters.append(MarkerCluster(lon=lon, lat=lat, members=members))
        clusters.sort(key=lambda c: (-c.count, c.lon, c.lat))
        return clusters


def markers_from_documents(documents) -> list[Marker]:
    """Build markers from metadata documents (bbox centers)."""
    markers = []
    for doc in documents:
        bbox = doc.get("location", {}).get("bbox")
        if not bbox or len(bbox) != 4:
            continue
        west, south, east, north = bbox
        markers.append(Marker(name=doc["name"],
                              lon=(west + east) / 2.0,
                              lat=(south + north) / 2.0))
    return markers
