"""Archive -> data tier ingestion.

Populates the four MongoDB-style collections exactly as the paper lays them
out (Section 3.2):

* ``metadata`` — per image: a ``location`` attribute (the bounding
  rectangle, geohash-indexed) and a ``properties`` attribute with the
  queryable features (name, labels — both as strings and as the
  char-codec string —, season, country, satellites, acquisition date),
* ``image_data`` — the binary representations of the 12 bands (keyed by
  patch name, the auto-indexed primary key),
* ``rendered_images`` — displayable RGB renderings built by "combining the
  RGB bands",
* ``feedback`` — left empty at ingestion; filled by the feedback service.
"""

from __future__ import annotations

import numpy as np

from ..bigearthnet.archive import SyntheticArchive
from ..bigearthnet.labels import LabelCharCodec
from ..bigearthnet.patch import Patch
from ..store.database import Database, IMAGE_DATA, METADATA, RENDERED_IMAGES
from .rendering import render_rgb


def metadata_document(patch: Patch, codec: LabelCharCodec) -> dict:
    """The metadata-collection document for one patch."""
    satellites = ["S2", "S1"] if patch.has_s1 else ["S2"]
    return {
        "name": patch.name,
        "location": {"bbox": list(patch.bbox.as_tuple())},
        "properties": {
            "labels": list(patch.labels),
            "label_chars": codec.encode(patch.labels),
            "num_labels": len(patch.labels),
            "season": patch.season,
            "country": patch.country,
            "satellites": satellites,
            "acquisition_date": patch.acquisition_date.isoformat(),
        },
    }


def image_data_document(patch: Patch) -> dict:
    """The image-data document: raw band buffers plus shape/dtype info."""
    bands = {}
    for band_name, pixels in {**patch.s2_bands, **patch.s1_bands}.items():
        bands[band_name] = {
            "data": pixels.tobytes(),
            "shape": list(pixels.shape),
            "dtype": str(pixels.dtype),
        }
    return {"name": patch.name, "bands": bands}


def rendered_image_document(patch: Patch) -> dict:
    """The rendered-image document: stretched uint8 RGB bytes."""
    rgb = render_rgb(patch)
    return {
        "name": patch.name,
        "data": rgb.tobytes(),
        "shape": list(rgb.shape),
        "dtype": str(rgb.dtype),
    }


def decode_image_document(document: dict, band: str) -> np.ndarray:
    """Rebuild a band array from an image-data document."""
    entry = document["bands"][band]
    return np.frombuffer(entry["data"], dtype=entry["dtype"]).reshape(entry["shape"])


def decode_rendered_document(document: dict) -> np.ndarray:
    """Rebuild the uint8 RGB array from a rendered-image document."""
    return np.frombuffer(document["data"], dtype=document["dtype"]).reshape(document["shape"])


def ingest_archive(db: Database, archive: SyntheticArchive,
                   codec: "LabelCharCodec | None" = None,
                   *, store_images: bool = True,
                   store_renders: bool = True) -> int:
    """Load an archive into the data tier; returns patches ingested.

    ``store_images``/``store_renders`` can be disabled for metadata-scale
    benchmarks where pixel payloads would only waste memory.
    """
    codec = codec or LabelCharCodec()
    # Bulk insert per collection: one batched index/column update pass
    # each, instead of per-document index maintenance.
    db[METADATA].insert_many(
        metadata_document(patch, codec) for patch in archive)
    if store_images:
        db[IMAGE_DATA].insert_many(
            image_data_document(patch) for patch in archive)
    if store_renders:
        db[RENDERED_IMAGES].insert_many(
            rendered_image_document(patch) for patch in archive)
    return len(archive)
