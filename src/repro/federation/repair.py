"""Replica convergence: pending-write hints and anti-entropy read-repair.

Two mechanisms keep R copies of every patch identical:

* **Hinted handoff** (:class:`HintLog`) — a write fanned out while one
  replica was down is parked as a hint addressed to that node; when the
  node is reachable again the facade drains its hints in order
  (:meth:`FederatedEarthQube.flush_hints`), then re-sorts the node's
  index rows to the global insertion order.  Write-side repair: bounded
  staleness equal to the downtime.
* **Anti-entropy** (:class:`ReadRepairer`) — divergence the hints missed
  (a node that lost state, a torn crash) is *detected* by comparing
  per-partition content digests across each replica set and *healed* by
  copying the authoritative version — the earliest replica in placement
  order that holds the patch — over the divergent copies.  Digests make
  the common all-in-sync case O(partitions) digest comparisons; only a
  divergent partition is drilled into patch by patch.

The repairer runs synchronously (:meth:`ReadRepairer.scan`, used by
tests and the REST admin surface) or as a background daemon
(:meth:`start` / :meth:`stop`).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from .facade import FederatedEarthQube

#: Hint operations, mirroring the write fan-out surface.
HINT_INGEST = "ingest"
HINT_DELETE = "delete"
HINT_UPDATE = "update"


@dataclass
class Hint:
    """One missed write addressed to one (temporarily down) replica."""

    op: str
    name: str
    payload: Any = None
    seq: int = 0


@dataclass
class HintLog:
    """Per-node queues of writes that missed a replica."""

    metrics: Any = None
    _hints: "dict[str, list[Hint]]" = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock)

    def record(self, node_name: str, hint: Hint) -> None:
        with self._lock:
            self._hints.setdefault(node_name, []).append(hint)
            depth = len(self._hints[node_name])
        self._update_lag(node_name, depth)

    def drain(self, node_name: str) -> "list[Hint]":
        """Remove and return the node's hints, oldest first."""
        with self._lock:
            hints = self._hints.pop(node_name, [])
        self._update_lag(node_name, 0)
        return hints

    def discard(self, node_name: str) -> int:
        """Drop a departed node's hints (its data was re-replicated)."""
        with self._lock:
            dropped = len(self._hints.pop(node_name, []))
        self._update_lag(node_name, 0)
        return dropped

    def depth(self, node_name: str) -> int:
        with self._lock:
            return len(self._hints.get(node_name, []))

    def pending_nodes(self) -> "list[str]":
        with self._lock:
            return [name for name, hints in self._hints.items() if hints]

    def snapshot(self) -> dict:
        with self._lock:
            return {name: len(hints) for name, hints in self._hints.items()
                    if hints}

    def _update_lag(self, node_name: str, depth: int) -> None:
        if self.metrics is not None:
            self.metrics.gauge("replication.lag", node=node_name).set(depth)


class ReadRepairer:
    """Anti-entropy scanner over an elastic federation's replica sets."""

    def __init__(self, federation: "FederatedEarthQube", *,
                 interval_s: float = 0.0) -> None:
        self.federation = federation
        self.interval_s = interval_s
        self._stop_event = threading.Event()
        self._thread: "threading.Thread | None" = None

    # ------------------------------------------------------------------ #
    # One synchronous pass
    # ------------------------------------------------------------------ #

    def scan(self) -> dict:
        """Compare digests across every replica set; sync divergent copies.

        Patches group by ``(partition, replica set)``; each registered
        replica digests its copies of the group
        (:meth:`EarthQube.shard_digest`).  Groups whose digests all agree
        are done; a divergent group is drilled into patch by patch, and
        every replica missing the patch or holding different code bits is
        re-synced from the authoritative copy — the earliest replica in
        placement order that is registered and holds the patch (replicas
        share the hasher, so a diverging copy means missed writes, and
        placement order makes every scanner pick the same authority).
        Hints for reachable nodes are drained first (write repair before
        content comparison).
        """
        fed = self.federation
        metrics = fed.metrics
        metrics.counter("repair.scans").increment()
        summary = {"groups": 0, "divergent_groups": 0, "synced": 0,
                   "hints_flushed": 0}
        for node_name in list(fed.hints.pending_nodes()):
            if node_name in fed.registry:
                summary["hints_flushed"] += fed.flush_hints(node_name)

        groups: "dict[tuple[int, tuple[str, ...]], list[str]]" = {}
        for name in fed.tracked_names():
            replicas = fed.ring.replicas_for(name)
            groups.setdefault((fed.ring.partition_of(name), replicas),
                              []).append(name)
        summary["groups"] = len(groups)
        for (_partition, replicas), names in sorted(groups.items()):
            members = [fed.registry.get(r) for r in replicas
                       if r in fed.registry]
            if len(members) < 2:
                continue
            digests = {node.name: node.shard_digest(names)
                       for node in members}
            if len(set(digests.values())) == 1:
                continue
            summary["divergent_groups"] += 1
            metrics.counter("repair.divergent").increment()
            summary["synced"] += self._sync_group(members, names)
        return summary

    def _sync_group(self, members: list, names: "list[str]") -> int:
        """Heal one divergent replica group, patch by patch."""
        fed = self.federation
        synced = 0
        for name in sorted(names, key=lambda n: fed.seq_of(n)):
            authority = next((node for node in members
                              if node.has_image(name)), None)
            if authority is None:
                continue
            reference = authority.system.cbir.code_of(name)
            for node in members:
                if node is authority:
                    continue
                if node.has_image(name):
                    local = node.system.cbir.code_of(name)
                    if local.shape == reference.shape and \
                            bool((local == reference).all()):
                        continue
                    # Divergent bits: drop the local copy, re-import below.
                    node.delete_image(name)
                shard = authority.export_shard([name])
                node.import_shard(shard, realign=fed.sequence_map())
                fed.metrics.counter("repair.synced", node=node.name).increment()
                synced += 1
        return synced

    # ------------------------------------------------------------------ #
    # Background daemon
    # ------------------------------------------------------------------ #

    def start(self, interval_s: "float | None" = None) -> None:
        """Run :meth:`scan` every ``interval_s`` seconds on a daemon thread."""
        if interval_s is not None:
            self.interval_s = interval_s
        if self.interval_s <= 0:
            raise ValueError("start() needs a positive repair interval")
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop_event.clear()

        def loop() -> None:
            while not self._stop_event.wait(self.interval_s):
                try:
                    self.scan()
                except Exception:  # noqa: BLE001 - a failed pass must not
                    pass           # kill the daemon; the next pass retries.

        self._thread = threading.Thread(target=loop, name="read-repair",
                                        daemon=True)
        self._thread.start()

    def stop(self) -> None:
        self._stop_event.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
