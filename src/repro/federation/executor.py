"""Federated query execution: scatter-gather with fault isolation.

One slow or crashed archive must not take the whole federation down.  The
:class:`FederatedExecutor` fans a per-node callable out — one dedicated
daemon thread per admitted node per scatter, so a hung node's stuck call
can never occupy a worker another node needs — and gathers per-node
outcomes under three protections:

* **per-node timeout** — a node that does not answer within
  ``node_timeout_s`` is counted as failed for this query (its thread
  finishes in the background; the result is discarded),
* **bounded retries** — a node callable that raises is retried up to
  ``max_retries`` times *within* its timeout budget,
* **circuit breaker** — ``breaker_failure_threshold`` consecutive failures
  eject the node (queries skip it outright, reported as skipped); after
  ``breaker_cooldown_s`` one half-open probe decides readmission.

The breaker also bounds abandoned-thread growth: once a hung node's
breaker opens, no new calls (threads) are sent its way until the
half-open probe, so at most ``breaker_failure_threshold`` stuck calls
accumulate per cooldown window.

Every scatter returns the per-node outcomes plus a
:class:`FederatedResultMeta` making partial results *explicit*: which
nodes were queried, which answered, which failed and why, which were
skipped.  Per-node latency, failures and skips are recorded as labeled
metric series (``node.latency`` / ``node.failures`` / ``node.skipped``
with a ``node=<name>`` label) on the executor's metrics registry, and
each scatter opens a ``federation.scatter`` trace span whose per-node
``federation.node`` children run on the call threads (the trace context
is captured before the fan-out and re-attached inside each thread, so
cross-thread spans stitch into the caller's tree).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..config import FederationConfig
from ..obs import tracing
from ..serving.metrics import MetricsRegistry
from .breaker import CLOSED
from .registry import FederatedNode, NodeRegistry

SKIP_CIRCUIT_OPEN = "circuit_open"
SKIP_INCOMPATIBLE = "incompatible_bit_width"
SKIP_NO_DATA = "no_matching_data"
SKIP_REPLICA_COVERED = "replica_covered"


@dataclass
class NodeOutcome:
    """What one node did with one scattered call."""

    node_name: str
    ok: bool
    value: Any = None
    error: "str | None" = None
    latency_s: float = 0.0
    attempts: int = 0


@dataclass
class FederatedResultMeta:
    """Explicit accounting of a federated query's coverage.

    A federated answer is only trustworthy alongside this: ``answered``
    names the archives the merged result actually covers, ``failed`` maps
    the others to their error, and ``skipped`` maps nodes that were never
    queried to the reason (open circuit, incompatible code width, no
    relevant data).
    """

    nodes_total: int
    queried: list[str] = field(default_factory=list)
    answered: list[str] = field(default_factory=list)
    failed: dict[str, str] = field(default_factory=dict)
    skipped: dict[str, str] = field(default_factory=dict)
    latency_s: dict[str, float] = field(default_factory=dict)
    #: Replicated reads only: failed/ejected reader -> the replica that
    #: answered for its ring segments instead (the fallback wave).
    recovered: dict[str, str] = field(default_factory=dict)
    #: Replicated reads only: ring segments no replica could answer for.
    lost_segments: int = 0

    @property
    def complete(self) -> bool:
        """Did every registered node contribute to the merged result?"""
        return not self.failed and not self.skipped

    @property
    def coverage_complete(self) -> bool:
        """Does the merged result cover every patch despite failures?

        Unreplicated scatters need every node (``complete``); replicated
        reads only need one live replica per ring segment, so a failed or
        circuit-ejected reader whose segments a fallback replica answered
        still yields full coverage.
        """
        if self.lost_segments:
            return False
        for name in self.failed:
            if name not in self.recovered and name not in self.answered:
                return False
        for name, reason in self.skipped.items():
            if reason == SKIP_REPLICA_COVERED:
                continue
            if name not in self.recovered:
                return False
        return True

    def as_dict(self) -> dict:
        return {
            "nodes_total": self.nodes_total,
            "queried": list(self.queried),
            "answered": list(self.answered),
            "failed": dict(self.failed),
            "skipped": dict(self.skipped),
            "complete": self.complete,
            "coverage_complete": self.coverage_complete,
            "recovered": dict(self.recovered),
            "lost_segments": self.lost_segments,
            "latency_ms": {name: round(seconds * 1e3, 4)
                           for name, seconds in self.latency_s.items()},
        }


class _AttemptsExhausted(Exception):
    """Internal: carries the attempt count alongside the final error."""

    def __init__(self, attempts: int, cause: BaseException) -> None:
        super().__init__(str(cause))
        self.attempts = attempts
        self.cause = cause


class FederatedExecutor:
    """Thread-per-call scatter-gather over the registry's healthy nodes."""

    def __init__(self, registry: NodeRegistry, config: "FederationConfig | None" = None,
                 *, metrics: "MetricsRegistry | None" = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.registry = registry
        self.config = config or FederationConfig()
        self.metrics = metrics if metrics is not None else MetricsRegistry(
            histogram_window=self.config.histogram_window)
        self._clock = clock

    # ------------------------------------------------------------------ #
    # Scatter-gather
    # ------------------------------------------------------------------ #

    def scatter(self, fn: Callable[[FederatedNode], Any], *,
                nodes: "Sequence[FederatedNode] | None" = None,
                pre_skipped: "dict[str, str] | None" = None,
                ) -> tuple[list[NodeOutcome], FederatedResultMeta]:
        """Run ``fn(node)`` on every target node; gather outcomes + meta.

        ``nodes`` defaults to every registered node (registration order —
        outcomes keep that order, which the merge tie-break relies on).
        ``pre_skipped`` lets the caller report nodes it excluded before the
        scatter (incompatible capabilities, no relevant data).
        """
        targets = list(nodes) if nodes is not None else list(self.registry)
        meta = FederatedResultMeta(nodes_total=len(self.registry))
        if pre_skipped:
            meta.skipped.update(pre_skipped)

        admitted: list[FederatedNode] = []
        for node in targets:
            if self.registry.breaker_of(node.name).allow():
                admitted.append(node)
            else:
                meta.skipped[node.name] = SKIP_CIRCUIT_OPEN
                self.metrics.counter("node.skipped", node=node.name).increment()
        meta.queried = [node.name for node in admitted]

        outcomes: list[NodeOutcome] = []
        if admitted:
            with tracing.span("federation.scatter", nodes=len(admitted),
                              skipped=len(meta.skipped)) as scatter_span:
                started = self._clock()
                futures = [self._spawn(fn, node) for node in admitted]
                deadline = started + self.config.node_timeout_s
                for node, future in zip(admitted, futures):
                    outcome = self._gather_one(node, future, started, deadline)
                    outcomes.append(outcome)
                    meta.latency_s[node.name] = outcome.latency_s
                    if outcome.ok:
                        meta.answered.append(node.name)
                    else:
                        meta.failed[node.name] = outcome.error or "unknown error"
                scatter_span.annotate(answered=len(meta.answered),
                                      failed=len(meta.failed))
                scatter_span.add_cost(nodes_answered=len(meta.answered),
                                      nodes_failed=len(meta.failed))
        return outcomes, meta

    def scatter_replicated(self, fn: Callable[[FederatedNode], Any], *,
                           chains: "Sequence[tuple[str, ...]]",
                           targets: "Sequence[FederatedNode] | None" = None,
                           pre_skipped: "dict[str, str] | None" = None,
                           ) -> tuple[list[NodeOutcome], FederatedResultMeta]:
        """Read one-of-R: cover every replica chain with healthy readers.

        ``chains`` are the placement ring's distinct replica sets (every
        patch's replicas equal exactly one chain), so an answer from one
        member of each chain covers the whole corpus.  The plan greedily
        picks one reader per chain — preferring a node already chosen for
        another chain (fewest nodes queried), then the first replica in
        placement order whose breaker is closed — and scatters wave by
        wave: a reader that fails or is ejected by its breaker has its
        chains retried on the next untried replica in the chain, and the
        recovery is recorded in ``meta.recovered`` (the deduplicating
        merge absorbs any overlap).  A chain that runs out of replicas
        counts as a lost segment (``meta.lost_segments``), the only case
        where ``meta.coverage_complete`` turns false.
        """
        available = {node.name: node
                     for node in (targets if targets is not None
                                  else list(self.registry))}
        meta = FederatedResultMeta(nodes_total=len(self.registry))
        if pre_skipped:
            meta.skipped.update(pre_skipped)

        outcomes: list[NodeOutcome] = []
        answered: set[str] = set()
        attempted: set[str] = set()
        chain_failures: "dict[tuple[str, ...], list[str]]" = \
            {chain: [] for chain in chains}
        pending = list(chains)
        while True:
            need = [chain for chain in pending
                    if not any(member in answered for member in chain)]
            if not need:
                pending = []
                break
            picks: "dict[tuple[str, ...], str]" = {}
            wave: "dict[str, FederatedNode]" = {}
            for chain in need:
                candidates = [member for member in chain
                              if member in available and member not in attempted]
                if not candidates:
                    continue
                pick = next((m for m in candidates if m in wave), None)
                if pick is None:
                    pick = next(
                        (m for m in candidates
                         if self.registry.breaker_of(m).state == CLOSED),
                        candidates[0])
                picks[chain] = pick
                wave[pick] = available[pick]
            if not wave:
                pending = need
                break
            # Registry order keeps outcome (and merge-input) order stable.
            wave_nodes = [wave[name] for name in self.registry.names
                          if name in wave]
            wave_outcomes, wave_meta = self.scatter(fn, nodes=wave_nodes)
            outcomes.extend(wave_outcomes)
            meta.queried.extend(wave_meta.queried)
            meta.answered.extend(wave_meta.answered)
            meta.failed.update(wave_meta.failed)
            meta.skipped.update(wave_meta.skipped)
            meta.latency_s.update(wave_meta.latency_s)
            answered.update(wave_meta.answered)
            attempted.update(wave)
            for chain, pick in picks.items():
                if pick in answered:
                    for earlier in chain_failures[chain]:
                        meta.recovered.setdefault(earlier, pick)
                else:
                    chain_failures[chain].append(pick)
            pending = need

        uncovered = {chain for chain in pending
                     if not any(member in answered for member in chain)}
        meta.lost_segments = len(uncovered)
        for name in available:
            if name not in attempted:
                meta.skipped.setdefault(name, SKIP_REPLICA_COVERED)
        order = {name: i for i, name in enumerate(self.registry.names)}
        outcomes.sort(key=lambda o: order.get(o.node_name, len(order)))
        return outcomes, meta

    def _spawn(self, fn: Callable[[FederatedNode], Any],
               node: FederatedNode) -> "Future[tuple[int, Any]]":
        """Run the node call on its own daemon thread.

        Dedicated threads (instead of a shared pool) mean a node stuck past
        its timeout only strands its own thread — it can never queue another
        node's call behind it and burn that node's deadline.  Daemon threads
        also keep a permanently hung archive from blocking interpreter exit.
        """
        future: "Future[tuple[int, Any]]" = Future()
        parent = tracing.capture()

        def run() -> None:
            with tracing.attach(parent), \
                    tracing.span("federation.node", node=node.name) as node_span:
                try:
                    result = self._call_with_retries(fn, node)
                except BaseException as exc:
                    node_span.annotate(ok=False)
                    future.set_exception(exc)
                else:
                    node_span.annotate(ok=True, attempts=result[0])
                    future.set_result(result)

        threading.Thread(target=run, name=f"federation-{node.name}",
                         daemon=True).start()
        return future

    def _call_with_retries(self, fn: Callable[[FederatedNode], Any],
                           node: FederatedNode) -> tuple[int, Any]:
        attempts = 0
        while True:
            attempts += 1
            try:
                return attempts, fn(node)
            except BaseException as exc:
                if attempts > self.config.max_retries:
                    raise _AttemptsExhausted(attempts, exc) from exc

    def _gather_one(self, node: FederatedNode, future, started: float,
                    deadline: float) -> NodeOutcome:
        breaker = self.registry.breaker_of(node.name)
        remaining = max(0.0, deadline - self._clock())
        try:
            attempts, value = future.result(timeout=remaining)
        except FutureTimeoutError:
            latency = self._clock() - started
            breaker.record_failure()
            self.metrics.counter("node.failures", node=node.name).increment()
            return NodeOutcome(
                node.name, ok=False, latency_s=latency,
                error=f"timeout after {self.config.node_timeout_s}s")
        except _AttemptsExhausted as exc:
            latency = self._clock() - started
            breaker.record_failure()
            self.metrics.counter("node.failures", node=node.name).increment()
            self.metrics.histogram("node.latency", node=node.name).record(latency)
            return NodeOutcome(
                node.name, ok=False, latency_s=latency, attempts=exc.attempts,
                error=f"{type(exc.cause).__name__}: {exc.cause}")
        latency = self._clock() - started
        breaker.record_success()
        self.metrics.histogram("node.latency", node=node.name).record(latency)
        return NodeOutcome(node.name, ok=True, value=value,
                           latency_s=latency, attempts=attempts)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Nothing to tear down: call threads are per-scatter daemons that
        exit with their call (abandoned timed-out calls drain on their
        own).  Kept so the facade's lifecycle is uniform across tiers."""

    def __enter__(self) -> "FederatedExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
