"""Deterministic cross-node result merging.

Every per-node result list arrives already ordered by the node's own
``(distance, insertion row)`` tie-break.  The federation re-merges them by
the *global* ``(distance, node order, insertion row)`` tie-break: results
are concatenated in registry (node) order and stably sorted by distance,
so equal-distance results keep node order, and within a node keep
insertion-row order.  Consequences:

* merging a single node's results is the identity — a 1-node federation is
  byte-identical to querying the node directly,
* the merged ranking is independent of which node answered first (thread
  scheduling never changes a result).

When the federation spans several archives, patch names are no longer
unique; :func:`namespaced_id` disambiguates them as ``node/patch_name``
(node names themselves may not contain ``/``).
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from ..earthqube.search import SearchResponse
from ..earthqube.statistics import LabelBar, LabelStatistics
from ..index.results import SearchResult
from .registry import NAMESPACE_SEPARATOR

# One per-node CBIR answer: (node name, ranked results, radius used).
NodeSimilarity = "tuple[str, list[SearchResult], int]"


def namespaced_id(node_name: str, item_id: object) -> str:
    """The federation-wide id of one node's patch: ``node/patch_name``."""
    return f"{node_name}{NAMESPACE_SEPARATOR}{item_id}"


def split_namespaced(name: str) -> "tuple[str | None, str]":
    """``"node/patch"`` -> ``("node", "patch")``; bare names -> ``(None, name)``.

    Only the first separator splits (patch names may themselves contain
    ``/``); whether the prefix is actually a registered node is the
    caller's decision.
    """
    if NAMESPACE_SEPARATOR in name:
        node, _, rest = name.partition(NAMESPACE_SEPARATOR)
        return node, rest
    return None, name


def merge_similarity(per_node: "Sequence[tuple[str, list, int]]", *,
                     k: "int | None" = None, radius: "int | None" = None,
                     namespace: bool = False, dedupe: bool = False,
                     order_of: "Callable[[object], int] | None" = None,
                     ) -> "tuple[list[SearchResult], int]":
    """Merge per-node CBIR rankings into one global ranking.

    ``per_node`` must be in registry order.  For kNN queries (``radius is
    None``) the merged ranking is truncated back to ``k`` and the radius
    used is the last kept distance — exactly how the single-node paths
    report it.  Radius queries keep everything within the radius.

    ``dedupe=True`` is the replicated-federation variant: several nodes
    hold copies of the same patch, so answers first deduplicate by patch
    identity (replicas share the hasher, so duplicate answers carry
    identical distances — the first occurrence in registry order is
    kept), then sort by the *global* ``(distance, insertion seq)``
    tie-break, where ``order_of(item_id)`` returns the federation-wide
    insertion sequence.  That ordering is independent of *which* replica
    answered — the elastic byte-identity guarantee.
    """
    merged: list[SearchResult] = []
    for node_name, results, _used in per_node:
        if namespace:
            merged.extend(SearchResult(namespaced_id(node_name, r.item_id),
                                       r.distance) for r in results)
        else:
            merged.extend(results)
    if dedupe:
        first: dict[object, SearchResult] = {}
        for r in merged:
            if r.item_id not in first:
                first[r.item_id] = r
        merged = list(first.values())
        if order_of is not None:
            merged.sort(key=lambda r: (r.distance, order_of(r.item_id)))
        else:
            merged.sort(key=lambda r: r.distance)
    else:
        # Stable sort by distance == global (distance, node order, row) order.
        merged.sort(key=lambda r: r.distance)
    if radius is not None:
        return merged, radius
    if k is not None:
        merged = merged[:k]
    return merged, (merged[-1].distance if merged else 0)


def merge_search(per_node: "Sequence[tuple[str, SearchResponse]]", *,
                 skip: int = 0, limit: "int | None" = None,
                 namespace: bool = False, dedupe: bool = False,
                 order_of: "Callable[[str], int] | None" = None) -> SearchResponse:
    """Merge per-node search pages into one globally paginated response.

    The caller queries every node with ``skip=0`` and ``limit=skip+limit``
    (enough rows that any global page can be cut), then this applies the
    *global* skip/limit over the concatenation in registry order.  With one
    answering node the result is byte-identical to that node's own
    response to the original query.

    ``dedupe=True`` is the replicated-federation variant: each node was
    asked for *all* its matches (no per-node page), duplicates collapse by
    document name (replica copies are identical documents), the distinct
    documents sort by the global insertion sequence ``order_of(name)`` —
    document order in a single store is ascending doc-id, i.e. ingest
    order — and ``total_matches`` counts distinct documents.
    """
    documents: list[dict] = []
    total_matches = 0
    candidates = 0
    plans: list[str] = []
    for node_name, response in per_node:
        if namespace:
            documents.extend({**doc, "name": namespaced_id(node_name, doc["name"])}
                             for doc in response.documents)
        else:
            documents.extend(response.documents)
        total_matches += response.total_matches
        candidates += response.candidates_examined
        plans.append(response.plan)
    if dedupe:
        first: dict[str, dict] = {}
        for doc in documents:
            first.setdefault(doc["name"], doc)
        documents = list(first.values())
        if order_of is not None:
            documents.sort(key=lambda doc: order_of(doc["name"]))
        total_matches = len(documents)
    if skip:
        documents = documents[skip:]
    if limit is not None:
        documents = documents[:limit]
    plan = plans[0] if len(plans) == 1 else "federated(" + ";".join(plans) + ")"
    return SearchResponse(documents=documents, total_matches=total_matches,
                          plan=plan, candidates_examined=candidates)


def merge_statistics(per_node: "Iterable[LabelStatistics]") -> LabelStatistics:
    """Sum label occurrence counts across archives.

    CLC labels are a shared nomenclature, so bars merge by label (never
    namespaced); colors are stable per label.  Bars re-sort by
    ``(-count, label)`` — the same key :func:`~repro.earthqube.statistics.
    label_statistics` uses, so merging one node's statistics is the
    identity.
    """
    counts: dict[str, int] = {}
    colors: dict[str, str] = {}
    total_images = 0
    for stats in per_node:
        total_images += stats.total_images
        for bar in stats:
            counts[bar.label] = counts.get(bar.label, 0) + bar.count
            colors.setdefault(bar.label, bar.color)
    bars = [LabelBar(label=label, count=count, color=colors[label])
            for label, count in counts.items()]
    bars.sort(key=lambda bar: (-bar.count, bar.label))
    return LabelStatistics(bars=bars, total_images=total_images)
