"""Consistent-hash placement: which R nodes own each patch.

AgoraEO members come and go; placement must survive that without
reshuffling the world.  A :class:`PlacementRing` hashes every member onto
a ring at ``virtual_nodes`` points and assigns each patch name to the
first ``replication_factor`` *distinct* members clockwise from the
patch's own hash — the classic consistent-hash scheme, so a membership
change only moves the keys adjacent to the changed node's points.

Everything here must be deterministic across processes and Python runs:

* hashing uses :func:`stable_hash` (blake2b), never the salted builtin
  ``hash()``,
* :meth:`replicas_for` returns the replicas in **placement order** (ring
  order) — the read planner prefers earlier replicas and read-repair
  treats the earliest healthy replica as authoritative, so every caller
  agrees on the same ordering,
* :meth:`replica_chains` enumerates the distinct replica sets over all
  ring segments, in first-appearance ring order: a reader set touching
  at least one member of every chain covers every possible key.

The ring also buckets keys into ``partitions`` (:meth:`partition_of`) —
the unit of anti-entropy digest comparison in
:mod:`repro.federation.repair`.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right

from ..errors import ValidationError


def stable_hash(key: str) -> int:
    """A process-independent 64-bit hash of a string key."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class PlacementRing:
    """Consistent-hash ring with virtual nodes and R-way placement."""

    def __init__(self, *, replication_factor: int = 1, virtual_nodes: int = 64,
                 partitions: int = 32) -> None:
        if replication_factor < 1:
            raise ValidationError(
                f"replication_factor must be >= 1, got {replication_factor}")
        if virtual_nodes < 1:
            raise ValidationError(
                f"virtual_nodes must be >= 1, got {virtual_nodes}")
        if partitions < 1:
            raise ValidationError(f"partitions must be >= 1, got {partitions}")
        self.replication_factor = replication_factor
        self.virtual_nodes = virtual_nodes
        self.partitions = partitions
        self._members: list[str] = []          # insertion order
        self._points: list[tuple[int, str]] = []  # sorted (hash, member)

    # ------------------------------------------------------------------ #
    # Membership
    # ------------------------------------------------------------------ #

    @property
    def members(self) -> list[str]:
        """Ring members in the order they were added."""
        return list(self._members)

    def __contains__(self, name: str) -> bool:
        return name in self._members

    def __len__(self) -> int:
        return len(self._members)

    def add_node(self, name: str) -> None:
        """Add a member at its ``virtual_nodes`` deterministic points."""
        if name in self._members:
            raise ValidationError(f"node {name!r} is already on the ring")
        self._members.append(name)
        for v in range(self.virtual_nodes):
            self._points.append((stable_hash(f"{name}#{v}"), name))
        self._points.sort()

    def remove_node(self, name: str) -> None:
        if name not in self._members:
            raise ValidationError(f"node {name!r} is not on the ring")
        self._members.remove(name)
        self._points = [(h, m) for h, m in self._points if m != name]

    def copy(self) -> "PlacementRing":
        """An independent ring with the same members and parameters."""
        clone = PlacementRing(replication_factor=self.replication_factor,
                              virtual_nodes=self.virtual_nodes,
                              partitions=self.partitions)
        clone._members = list(self._members)
        clone._points = list(self._points)
        return clone

    def with_node(self, name: str) -> "PlacementRing":
        """A copy with one more member (for prospective-placement planning)."""
        clone = self.copy()
        clone.add_node(name)
        return clone

    def without_node(self, name: str) -> "PlacementRing":
        """A copy with one member removed."""
        clone = self.copy()
        clone.remove_node(name)
        return clone

    # ------------------------------------------------------------------ #
    # Placement
    # ------------------------------------------------------------------ #

    def _walk(self, start: int) -> "tuple[str, ...]":
        """First R distinct members clockwise from point index ``start``."""
        replicas: list[str] = []
        n = len(self._points)
        for step in range(n):
            member = self._points[(start + step) % n][1]
            if member not in replicas:
                replicas.append(member)
                if len(replicas) == self.replication_factor:
                    break
        return tuple(replicas)

    def replicas_for(self, key: str) -> "tuple[str, ...]":
        """The nodes owning ``key``, in deterministic placement order.

        Fewer than R members means every member is a replica (placement
        degrades gracefully while the federation is small).
        """
        if not self._points:
            return ()
        start = bisect_right(self._points, (stable_hash(key), "￿"))
        return self._walk(start % len(self._points))

    def replica_chains(self) -> "list[tuple[str, ...]]":
        """Distinct replica sets across all ring segments, in ring order.

        Every key's :meth:`replicas_for` equals exactly one chain, so a
        reader set that intersects every chain covers every key.
        """
        chains: list[tuple[str, ...]] = []
        seen: set[tuple[str, ...]] = set()
        for start in range(len(self._points)):
            chain = self._walk(start)
            if chain not in seen:
                seen.add(chain)
                chains.append(chain)
        return chains

    def partition_of(self, key: str) -> int:
        """Stable partition bucket of a key (anti-entropy digest unit)."""
        return stable_hash(key) % self.partitions

    def describe(self) -> dict:
        """Ring summary: members, parameters, per-member ownership share."""
        shares: dict[str, float] = {m: 0.0 for m in self._members}
        if self._points:
            span = float(2 ** 64)
            for i, (point, member) in enumerate(self._points):
                prev = self._points[i - 1][0] if i else self._points[-1][0] - 2 ** 64
                shares[member] += (point - prev) / span
        return {
            "members": list(self._members),
            "replication_factor": self.replication_factor,
            "virtual_nodes": self.virtual_nodes,
            "partitions": self.partitions,
            "ownership_share": {m: round(s, 4) for m, s in shares.items()},
        }
