"""Per-node circuit breaker for the federation executor.

A federated query must not let one flapping archive drag every request to
its timeout: after ``failure_threshold`` consecutive failures the breaker
*opens* and the executor skips the node outright (reported in the result
meta, not silently).  Once ``cooldown_s`` has elapsed the breaker moves to
*half-open* and admits exactly one probe query; a success closes the
breaker (the node is readmitted), a failure re-opens it for another
cooldown.

The clock is injectable so ejection/readmission cycles are testable
without sleeping.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from ..errors import ValidationError

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Thread-safe closed -> open -> half-open -> closed state machine."""

    def __init__(self, failure_threshold: int = 3, cooldown_s: float = 30.0,
                 *, clock: Callable[[], float] = time.monotonic,
                 on_transition: "Callable[[str], None] | None" = None) -> None:
        if failure_threshold < 1:
            raise ValidationError(
                f"failure_threshold must be >= 1, got {failure_threshold}")
        if cooldown_s < 0.0:
            raise ValidationError(f"cooldown_s must be >= 0, got {cooldown_s}")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        # Called with "opened" / "reclosed" on state transitions (outside
        # the lock) — the registry wires per-node transition counters here.
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_in_flight = False
        # Lifetime accounting, exported through the registry snapshot.
        self.total_successes = 0
        self.total_failures = 0
        self.times_opened = 0

    @property
    def state(self) -> str:
        """Current state; an elapsed cooldown surfaces as ``half_open``."""
        with self._lock:
            if (self._state == OPEN
                    and self._clock() - self._opened_at >= self.cooldown_s):
                return HALF_OPEN
            return self._state

    def allow(self) -> bool:
        """May a request be sent to this node right now?

        Closed: always.  Open: only once the cooldown has elapsed, and then
        only one probe at a time (the half-open trial).
        """
        with self._lock:
            if self._state == CLOSED:
                return True
            if self._clock() - self._opened_at < self.cooldown_s:
                return False
            if self._probe_in_flight:
                return False
            self._state = HALF_OPEN
            self._probe_in_flight = True
            return True

    def record_success(self) -> None:
        """The call succeeded: close the breaker and reset the streak."""
        with self._lock:
            self.total_successes += 1
            self._consecutive_failures = 0
            reclosed = self._state != CLOSED
            self._state = CLOSED
            self._probe_in_flight = False
        if reclosed and self._on_transition is not None:
            self._on_transition("reclosed")

    def record_failure(self) -> None:
        """The call failed: count it, opening at the threshold.

        A failure while half-open re-opens immediately (the probe burnt its
        one chance); the cooldown restarts from now.
        """
        opened = False
        with self._lock:
            self.total_failures += 1
            self._consecutive_failures += 1
            was_open = self._state != CLOSED
            if was_open or self._consecutive_failures >= self.failure_threshold:
                if self._state != OPEN:
                    self.times_opened += 1
                    opened = True
                self._state = OPEN
                self._opened_at = self._clock()
            self._probe_in_flight = False
        if opened and self._on_transition is not None:
            self._on_transition("opened")

    def open_age_s(self) -> "float | None":
        """Seconds since the breaker last opened; ``None`` when closed.

        Operators tell a flapping node (small age, large ``times_opened``)
        from a dead one (monotonically growing age) with this — exposed
        per node in ``GET /ready``.
        """
        with self._lock:
            if self._state == CLOSED:
                return None
            return max(0.0, self._clock() - self._opened_at)

    def snapshot(self) -> dict:
        """JSON-compatible state for ``GET /federation/nodes``."""
        age = self.open_age_s()
        return {
            "state": self.state,
            "consecutive_failures": self._consecutive_failures,
            "total_successes": self.total_successes,
            "total_failures": self.total_failures,
            "times_opened": self.times_opened,
            "open_age_seconds": None if age is None else round(age, 3),
        }
