"""The federation tier: multi-node EarthQube behind one query surface.

AgoraEO is pitched as a *decentralized* EO ecosystem: MILAN-style image
search runs across independently operated archives.  This package turns N
independent :class:`~repro.earthqube.server.EarthQube` instances into one
queryable system:

* :mod:`repro.federation.registry` — named :class:`FederatedNode` handles
  with capability descriptors and health state,
* :mod:`repro.federation.breaker` — the per-node circuit breaker that
  ejects flapping archives and readmits them after a cooldown,
* :mod:`repro.federation.executor` — the scatter-gather planner/executor:
  thread-pool fan-out with per-node timeouts, bounded retries, and
  explicit :class:`FederatedResultMeta` coverage accounting,
* :mod:`repro.federation.merge` — deterministic cross-node merging by the
  global ``(distance, node order, insertion row)`` tie-break (a 1-node
  federation is byte-identical to the direct path) with ``node/patch``
  namespacing,
* :mod:`repro.federation.facade` — :class:`FederatedEarthQube`, the
  EarthQube-shaped entry point that composes with each node's serving
  tier (sharding, micro-batching, caching).

Elastic mode (``FederationConfig(elastic=True)``) adds replication and
live membership:

* :mod:`repro.federation.placement` — the consistent-hash
  :class:`PlacementRing` assigning every patch to R replicas,
* :mod:`repro.federation.handoff` — :func:`ship_shard`, snapshot-backed
  shard transfer for join/leave rebalancing,
* :mod:`repro.federation.repair` — the :class:`HintLog` of writes that
  missed a down replica and the anti-entropy :class:`ReadRepairer`.
"""

from .breaker import CircuitBreaker
from .executor import (
    SKIP_REPLICA_COVERED,
    FederatedExecutor,
    FederatedResultMeta,
    NodeOutcome,
)
from .facade import FederatedEarthQube, FederatedResponse
from .handoff import ship_shard
from .merge import (
    merge_search,
    merge_similarity,
    merge_statistics,
    namespaced_id,
    split_namespaced,
)
from .placement import PlacementRing, stable_hash
from .registry import FederatedNode, NodeCapabilities, NodeRegistry
from .repair import Hint, HintLog, ReadRepairer

__all__ = [
    "CircuitBreaker",
    "FederatedEarthQube",
    "FederatedExecutor",
    "FederatedNode",
    "FederatedResponse",
    "FederatedResultMeta",
    "Hint",
    "HintLog",
    "NodeCapabilities",
    "NodeOutcome",
    "NodeRegistry",
    "PlacementRing",
    "ReadRepairer",
    "SKIP_REPLICA_COVERED",
    "merge_search",
    "merge_similarity",
    "merge_statistics",
    "namespaced_id",
    "ship_shard",
    "split_namespaced",
    "stable_hash",
]
