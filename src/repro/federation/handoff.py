"""Shard handoff: move patch copies between replicas via snapshots.

Join/leave rebalancing ships whole shards, not per-patch RPCs.  The
source node packages the moving patches (:meth:`EarthQube.export_shard`),
the shard round-trips through a seq-stamped on-disk snapshot written with
the PR-7 :class:`~repro.store.snapshot.SnapshotManager` — the same
atomic manifest-last protocol (and the same armable crash points) as a
durability checkpoint, so a handoff interrupted mid-ship leaves a
loadable previous state and no torn shard — and the target imports the
loaded copy (:meth:`EarthQube.import_shard`), re-sorting its index rows
to the federation's global insertion order.

``seq`` stamps the snapshot with the federation's handoff sequence
number; writes that race the ship are parked in the hint log and drained
before the ring flips (the WAL-tail catch-up step in
:meth:`~repro.federation.facade.FederatedEarthQube.join_node`).
"""

from __future__ import annotations

import tempfile
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from ..store.database import Database
from ..store.faults import NO_FAULTS
from ..store.snapshot import SnapshotManager

if TYPE_CHECKING:
    from ..earthqube.server import EarthQube


def ship_shard(source: "EarthQube", names: "list[str]", target: "EarthQube",
               *, seq: int, directory: "str | Path | None" = None,
               faults=NO_FAULTS,
               realign: "dict[str, int] | None" = None) -> dict:
    """Ship one shard from ``source`` to ``target`` through a snapshot.

    ``names`` must already be in global insertion-sequence order (the
    caller sorts); entry order survives the snapshot round-trip.  Returns
    ``{"patches", "bytes", "seq", "imported", "skipped"}``.
    """
    if not names:
        return {"patches": 0, "bytes": 0, "seq": seq,
                "imported": 0, "skipped": 0}
    shard = source.export_shard(names)
    with tempfile.TemporaryDirectory(prefix="handoff-") as tmp:
        ship_dir = Path(directory) if directory is not None else Path(tmp)
        ship_dir.mkdir(parents=True, exist_ok=True)
        manager = SnapshotManager(ship_dir, faults=faults)
        shard_db = Database.earthqube_schema(
            geo_precision=source.config.geo_index.precision)
        for entry in shard["entries"]:
            for collection_name, doc in entry["documents"].items():
                if collection_name in shard_db:
                    shard_db[collection_name].insert_one(dict(doc))
        codes = np.stack([np.asarray(entry["code"], dtype=np.uint64)
                          for entry in shard["entries"]])
        info = manager.write(
            shard_db, names=[entry["name"] for entry in shard["entries"]],
            codes=codes, alive=np.ones(len(names), dtype=bool), wal_seq=seq,
            extra={"kind": "shard_handoff", "num_bits": shard["num_bits"]})
        loaded = manager.load_latest()
        shipped_bytes = sum((ship_dir / filename).stat().st_size
                            for filename in info.files.values()
                            if (ship_dir / filename).exists())
        entries = []
        for row, name in enumerate(loaded.names):
            documents: dict[str, dict] = {}
            for collection_name in loaded.db.collection_names():
                doc = loaded.db[collection_name].find_one({"name": name})
                if doc is not None:
                    documents[collection_name] = doc
            # Copy the row out of the snapshot's mmap before the temp
            # directory (and its backing file) goes away.
            entries.append({"name": name,
                            "code": np.array(loaded.codes[row],
                                             dtype=np.uint64, copy=True),
                            "documents": documents})
        summary = target.import_shard(
            {"entries": entries, "num_bits": loaded.info.extra["num_bits"]},
            realign=realign)
    return {"patches": len(names), "bytes": shipped_bytes, "seq": seq,
            **summary}
