"""Node registry: named handles on independent EarthQube instances.

AgoraEO is a *decentralized* ecosystem — MILAN-style search is supposed to
span independently operated archives.  A :class:`FederatedNode` is the
federation tier's handle on one such archive: a name, a capability
descriptor (collections, code bit-width, corpus size), and the query
surface the scatter-gather executor fans out over.  Nodes here wrap
in-process :class:`~repro.earthqube.server.EarthQube` systems (the repro's
stand-in for remote AgoraEO members); every call goes through the node's
own serving tier when that node has one enabled, so federation composes
with per-node sharding, micro-batching, and caching.

:class:`NodeRegistry` keeps the nodes in deterministic insertion order —
merge tie-breaks depend on it — together with one circuit breaker and one
health record per node.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterator

import numpy as np

from ..errors import UnknownPatchError, ValidationError
from .breaker import CircuitBreaker

if TYPE_CHECKING:
    from ..earthqube.query import QuerySpec
    from ..earthqube.search import SearchResponse
    from ..earthqube.server import EarthQube
    from ..earthqube.statistics import LabelStatistics

NAMESPACE_SEPARATOR = "/"


@dataclass(frozen=True)
class NodeCapabilities:
    """What one archive can answer: advertised by ``GET /federation/nodes``.

    ``num_bits`` decides CBIR compatibility — hash codes from nodes with
    different code widths are not comparable, so the executor only scatters
    a code query to nodes whose width matches the query's.
    """

    collections: tuple[str, ...]
    num_bits: int
    corpus_size: int
    feature_dimension: int
    serving_enabled: bool

    def as_dict(self) -> dict:
        return {
            "collections": list(self.collections),
            "num_bits": self.num_bits,
            "corpus_size": self.corpus_size,
            "feature_dimension": self.feature_dimension,
            "serving_enabled": self.serving_enabled,
        }


class FederatedNode:
    """One member archive: a named EarthQube plus its query surface."""

    def __init__(self, name: str, system: "EarthQube") -> None:
        if not name or NAMESPACE_SEPARATOR in name:
            raise ValidationError(
                f"node name must be non-empty and free of "
                f"{NAMESPACE_SEPARATOR!r}, got {name!r}")
        self.name = name
        self.system = system

    def capabilities(self) -> NodeCapabilities:
        """Live capability descriptor (corpus size tracks online ingest)."""
        return NodeCapabilities(
            collections=tuple(self.system.db.collection_names()),
            num_bits=self.system.hasher.num_bits,
            corpus_size=len(self.system.cbir),
            feature_dimension=self.system.extractor.dimension,
            serving_enabled=self.system.gateway is not None,
        )

    # ------------------------------------------------------------------ #
    # Query surface (what the executor scatters)
    # ------------------------------------------------------------------ #

    def has_image(self, name: str) -> bool:
        """Does this archive index an image of that (bare) name?"""
        return self.system.cbir.has(name)

    def code_of(self, name: str) -> np.ndarray:
        """The packed code of one of this archive's images."""
        try:
            return self.system.cbir.code_of(name)
        except UnknownPatchError:
            raise UnknownPatchError(
                f"node {self.name!r} has no indexed image named {name!r}") from None

    def plan_choice(self, *, k: "int | None" = None,
                    radius: "int | None" = None,
                    filter_spec: "QuerySpec | None" = None):
        """This node's planner decision for one code query (or ``None``).

        Computed against the node's own corpus and metadata tier; the
        federation front-end calls this on the owning node, records the
        decision on the request span, and scatters the chosen plan's
        summary as a hint so every member runs one consistent strategy.
        """
        system = self.system
        if not system.planner.config.enabled:
            return None
        row_filter = system.row_filter_for(filter_spec)
        if row_filter is not None and row_filter.count == 0:
            return None
        return system.cbir.plan_query(row_filter, k=k, radius=radius)

    def query_code(self, code: np.ndarray, *, k: "int | None" = None,
                   radius: "int | None" = None,
                   filter_spec: "QuerySpec | None" = None,
                   plan_hint: "dict | None" = None) -> tuple[list, int]:
        """One packed-code CBIR query, via the node's gateway if enabled.

        ``filter_spec`` is resolved against *this node's* metadata tier —
        every archive applies the same metadata constraints to its own
        corpus before its candidates join the federated merge.
        ``plan_hint`` (the front-end planner's chosen-plan summary) pins
        the transferable plan dimensions on this node's own planner.
        """
        if self.system.gateway is not None:
            return self.system.gateway.query_code(code, k=k, radius=radius,
                                                  filter=filter_spec,
                                                  plan_hint=plan_hint)
        return self.system.cbir.query_code(
            code, k=k, radius=radius,
            filter=self.system.row_filter_for(filter_spec),
            plan_hint=plan_hint)

    def query_codes_batch(self, codes: np.ndarray, *, k: "int | None" = None,
                          radius: "int | None" = None,
                          filter_spec: "QuerySpec | None" = None,
                          plan_hint: "dict | None" = None,
                          ) -> list[tuple[list, int]]:
        """Batch packed-code CBIR, via the node's gateway if enabled."""
        if self.system.gateway is not None:
            return self.system.gateway.query_codes_batch(codes, k=k,
                                                         radius=radius,
                                                         filter=filter_spec,
                                                         plan_hint=plan_hint)
        return self.system.cbir.query_codes_batch(
            codes, k=k, radius=radius,
            filter=self.system.row_filter_for(filter_spec),
            plan_hint=plan_hint)

    def search(self, spec: "QuerySpec") -> "SearchResponse":
        """Query-panel search against this archive."""
        return self.system.search(spec)

    def statistics_for(self, names: list[str]) -> "LabelStatistics":
        """Label statistics for this archive's documents."""
        return self.system.statistics_for(names)

    def default_radius(self) -> int:
        """The node's configured Hamming radius (the no-k-no-radius default)."""
        return self.system.config.index.hamming_radius

    def delete_image(self, name: str) -> dict:
        """Delete one of this archive's images (store + index together)."""
        return self.system.delete_image(name)

    # ------------------------------------------------------------------ #
    # Replication surface (write fan-out, handoff, anti-entropy)
    # ------------------------------------------------------------------ #

    def ingest_new_patch(self, patch, *, auto_label_if_missing: bool = False,
                         k: int = 10) -> dict:
        """Apply one fanned-out ingest to this replica."""
        return self.system.ingest_new_patch(
            patch, auto_label_if_missing=auto_label_if_missing, k=k)

    def update_image(self, name: str, features: np.ndarray) -> dict:
        """Apply one fanned-out re-embedding to this replica."""
        return self.system.update_image(name, features)

    def export_shard(self, names: list[str]) -> dict:
        """Package this replica's copies of ``names`` for handoff."""
        return self.system.export_shard(names)

    def import_shard(self, shard: dict, *,
                     realign: "dict[str, int] | None" = None) -> dict:
        """Apply a handoff shard to this replica."""
        return self.system.import_shard(shard, realign=realign)

    def shard_digest(self, names: list[str]) -> str:
        """Content digest of this replica's copies (anti-entropy)."""
        return self.system.shard_digest(names)

    def __repr__(self) -> str:
        return f"FederatedNode({self.name!r}, corpus={len(self.system.cbir)})"


@dataclass
class _NodeEntry:
    """Registry row: the node plus its health machinery."""

    node: FederatedNode
    breaker: CircuitBreaker


class NodeRegistry:
    """Ordered, thread-safe collection of federation members."""

    def __init__(self, *, failure_threshold: int = 3, cooldown_s: float = 30.0,
                 clock: "Callable[[], float] | None" = None,
                 metrics=None) -> None:
        self._failure_threshold = failure_threshold
        self._cooldown_s = cooldown_s
        self._clock = clock
        # Optional MetricsRegistry: breaker state transitions become
        # per-node labeled counters (breaker.opened / breaker.reclosed).
        self._metrics = metrics
        self._lock = threading.Lock()
        self._entries: dict[str, _NodeEntry] = {}

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._entries

    def __iter__(self) -> Iterator[FederatedNode]:
        """Nodes in registration order (the merge tie-break order)."""
        with self._lock:
            return iter([entry.node for entry in self._entries.values()])

    def _new_breaker(self, node_name: str) -> CircuitBreaker:
        kwargs = {} if self._clock is None else {"clock": self._clock}
        if self._metrics is not None:
            metrics = self._metrics

            def on_transition(event: str,
                              _node: str = node_name) -> None:
                metrics.counter(f"breaker.{event}", node=_node).increment()

            kwargs["on_transition"] = on_transition
        return CircuitBreaker(self._failure_threshold, self._cooldown_s, **kwargs)

    def add(self, node: FederatedNode) -> FederatedNode:
        """Register a node under its (unique) name."""
        if not isinstance(node, FederatedNode):
            raise ValidationError(
                f"registry accepts FederatedNode, got {type(node).__name__}")
        with self._lock:
            if node.name in self._entries:
                raise ValidationError(f"node {node.name!r} is already registered")
            self._entries[node.name] = _NodeEntry(node, self._new_breaker(node.name))
        return node

    def remove(self, name: str) -> None:
        """Deregister a node (its breaker state is discarded)."""
        with self._lock:
            if name not in self._entries:
                raise ValidationError(f"no registered node named {name!r}")
            del self._entries[name]

    def get(self, name: str) -> FederatedNode:
        with self._lock:
            entry = self._entries.get(name)
        if entry is None:
            raise ValidationError(f"no registered node named {name!r}")
        return entry.node

    def breaker_of(self, name: str) -> CircuitBreaker:
        with self._lock:
            entry = self._entries.get(name)
        if entry is None:
            raise ValidationError(f"no registered node named {name!r}")
        return entry.breaker

    @property
    def names(self) -> list[str]:
        with self._lock:
            return list(self._entries)

    def snapshot(self) -> list[dict]:
        """Per-node state for ``GET /federation/nodes``: capabilities plus
        breaker health, in registration order."""
        with self._lock:
            entries = list(self._entries.values())
        return [{
            "name": entry.node.name,
            "capabilities": entry.node.capabilities().as_dict(),
            "health": entry.breaker.snapshot(),
        } for entry in entries]
