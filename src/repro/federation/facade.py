"""FederatedEarthQube: N independent archives behind one query surface.

The facade mirrors the :class:`~repro.earthqube.server.EarthQube` query
API — ``search``, ``similar_images``, ``similar_images_batch``,
``statistics_for`` — but executes each call as a scatter-gather across
every registered node and returns a :class:`FederatedResponse`: the merged
value (byte-identical in type and, for one node, in content, to the direct
call) plus the :class:`~repro.federation.executor.FederatedResultMeta`
that makes partial coverage explicit.

CBIR queries resolve the query image to its *owning* node (by namespaced
id ``node/patch_name``, or by scanning registration order for a bare
name), read the packed code there, and scatter the code to every node with
a compatible bit-width — each node answering through its own serving tier
(cache, micro-batcher, shards) when enabled.  The owning node's self-match
is dropped globally, exactly like the single-system paths.

**Elastic mode** (``FederationConfig(elastic=True)``) layers replication
and live membership on top:

* every patch is placed on ``replication_factor`` nodes by a
  consistent-hash :class:`~repro.federation.placement.PlacementRing`,
* writes (``ingest_new_patch`` / ``delete_image`` / ``update_image``) fan
  out to all replicas; a write that misses a down replica is parked in
  the :class:`~repro.federation.repair.HintLog` and drained when the node
  is reachable again,
* reads query **one** healthy replica per ring segment
  (:meth:`FederatedExecutor.scatter_replicated`) and fall back through
  the replica chain on failure; the merge deduplicates replica answers
  by patch identity and orders by the *global* ``(distance, insertion
  seq)`` tie-break, so results are byte-identical whichever replica
  answered,
* nodes :meth:`join_node` / :meth:`leave_node` / :meth:`node_died` live,
  with shard handoff shipped through seq-stamped snapshots
  (:func:`~repro.federation.handoff.ship_shard`) followed by a
  hint-drain catch-up and an atomic ring flip,
* a :class:`~repro.federation.repair.ReadRepairer` detects replica
  divergence from per-partition digests and re-syncs in the background.

The byte-identity invariant rests on one bookkeeping rule: the facade
assigns every live patch a federation-wide insertion sequence (bumped on
update, dropped on delete) and keeps every replica's local index-row
order a subsequence of that global order — fan-out applies writes in
global order, and handoff imports re-sort the receiving node's rows
(:meth:`EarthQube.realign_index_rows`).  Per-node kNN truncation then
agrees with the full-corpus oracle's ``(distance, insertion row)``
ranking at every tie.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Callable, Iterable, Mapping

import numpy as np

from ..config import FederationConfig
from ..earthqube.cbir import SimilarityResponse, shape_name_response
from ..earthqube.query import QuerySpec
from ..errors import EmptyIndexError, ReproError, UnknownPatchError, ValidationError
from ..obs import Observability
from ..store.faults import NO_FAULTS
from .breaker import OPEN
from .executor import (
    SKIP_INCOMPATIBLE,
    SKIP_NO_DATA,
    SKIP_REPLICA_COVERED,
    FederatedExecutor,
    FederatedResultMeta,
)
from .handoff import ship_shard
from .merge import (
    merge_search,
    merge_similarity,
    merge_statistics,
    namespaced_id,
    split_namespaced,
)
from .placement import PlacementRing
from .registry import FederatedNode, NodeRegistry
from .repair import HINT_DELETE, HINT_INGEST, HINT_UPDATE, Hint, HintLog, ReadRepairer
from ..serving.metrics import MetricsRegistry

if TYPE_CHECKING:
    from ..earthqube.server import EarthQube


@dataclass
class FederatedResponse:
    """A merged result plus the coverage meta that qualifies it."""

    value: Any
    meta: FederatedResultMeta


class FederatedEarthQube:
    """Scatter-gather facade over a registry of EarthQube nodes."""

    def __init__(self,
                 nodes: "Mapping[str, EarthQube] | Iterable[FederatedNode] | None" = None,
                 config: "FederationConfig | None" = None, *,
                 clock: Callable[[], float] = time.monotonic,
                 faults=NO_FAULTS) -> None:
        self.config = config or FederationConfig()
        self.metrics = MetricsRegistry(
            histogram_window=self.config.histogram_window)
        self.registry = NodeRegistry(
            failure_threshold=self.config.breaker_failure_threshold,
            cooldown_s=self.config.breaker_cooldown_s,
            clock=clock, metrics=self.metrics)
        self.executor = FederatedExecutor(self.registry, self.config,
                                          metrics=self.metrics, clock=clock)
        self.obs = Observability(self.config.obs, component="federation")
        # Elastic-mode state: placement ring, hint log, global insertion
        # sequences, read-repairer, and the fault injector handoff
        # snapshots are written under (armable crash points in tests).
        self.faults = faults
        self.ring = PlacementRing(
            replication_factor=self.config.replication_factor,
            virtual_nodes=self.config.virtual_nodes,
            partitions=self.config.ring_partitions) if self.config.elastic \
            else None
        self.hints = HintLog(metrics=self.metrics)
        self.repairer = ReadRepairer(
            self, interval_s=self.config.repair_interval_s) \
            if self.config.elastic else None
        self._next_seq = 0
        self._row_seq: dict[str, int] = {}   # name -> CBIR insertion seq
        self._doc_seq: dict[str, int] = {}   # name -> document insertion seq
        self._handoff_seq = 0
        # Nodes mid-join: name -> prospective ring; writes during the
        # handoff are additionally hinted to the joining node (the
        # WAL-tail catch-up drained before the ring flips).
        self._joining: dict[str, PlacementRing] = {}
        if nodes is not None:
            if isinstance(nodes, Mapping):
                for name, system in nodes.items():
                    self.add_node(name, system)
            else:
                for node in nodes:
                    self.registry.add(node)
                    self._on_node_added(node)
        if self.repairer is not None and self.config.repair_interval_s > 0:
            self.repairer.start()

    @property
    def elastic(self) -> bool:
        return self.config.elastic

    # ------------------------------------------------------------------ #
    # Membership
    # ------------------------------------------------------------------ #

    def add_node(self, name: str, system: "EarthQube") -> FederatedNode:
        """Register one EarthQube instance under a federation-unique name.

        In elastic mode the node also joins the placement ring
        immediately — right when assembling a federation *before* data
        flows.  To add capacity to a federation that already holds data,
        use :meth:`join_node` (which ships the node its shard before the
        ring flips).
        """
        node = self.registry.add(FederatedNode(name, system))
        self._on_node_added(node)
        return node

    def _on_node_added(self, node: FederatedNode) -> None:
        if not self.elastic:
            return
        if node.name not in self.ring:
            self.ring.add_node(node.name)
        self._absorb_existing(node)

    def _absorb_existing(self, node: FederatedNode) -> None:
        """Track a pre-populated node's patches in the global sequence.

        Adding a non-empty system to an elastic federation (the
        start-with-one-node story) adopts its corpus: names enter the
        global insertion sequence in the node's own row order, so the
        node's local order is a subsequence of the global order by
        construction.
        """
        names, _codes = node.system.cbir.indexed_items()
        for name in names:
            if name not in self._row_seq:
                seq = self._next_seq
                self._next_seq += 1
                self._row_seq[name] = seq
                self._doc_seq[name] = seq

    def remove_node(self, name: str) -> None:
        self.registry.remove(name)
        if self.elastic and name in self.ring:
            self.ring.remove_node(name)

    @property
    def num_nodes(self) -> int:
        return len(self.registry)

    def nodes(self) -> list[dict]:
        """Per-node capability + health snapshot (``GET /federation/nodes``)."""
        snapshot = self.registry.snapshot()
        if self.elastic:
            shares = self.ring.describe()["ownership_share"]
            for entry in snapshot:
                entry["placement"] = {
                    "on_ring": entry["name"] in self.ring,
                    "ownership_share": shares.get(entry["name"], 0.0),
                    "pending_hints": self.hints.depth(entry["name"]),
                }
        return snapshot

    def _namespacing(self) -> bool:
        mode = self.config.namespace_results
        if mode == "always":
            return True
        if mode == "never":
            return False
        # Elastic federations replicate *one* logical corpus across the
        # members; names are globally unique, so "auto" never namespaces.
        if self.elastic:
            return False
        return len(self.registry) > 1

    def _require_elastic(self) -> None:
        if not self.elastic:
            raise ValidationError(
                "this operation needs FederationConfig(elastic=True)")

    # ------------------------------------------------------------------ #
    # Name resolution
    # ------------------------------------------------------------------ #

    def resolve_image(self, name: str) -> tuple[FederatedNode, str]:
        """The (owning node, bare name) of a federated patch id.

        A ``node/patch_name`` id routes to that node; a bare name is looked
        up across nodes in registration order and the first archive that
        indexes it owns the query (deterministic under duplicates).  In
        elastic mode placement is authoritative instead: the first
        replica in placement order that is registered, breaker-admitted
        and holds the patch answers, falling back to any registered
        holder.
        """
        prefix, bare = split_namespaced(name)
        if prefix is not None and prefix in self.registry:
            node = self.registry.get(prefix)
            if not node.has_image(bare):
                raise UnknownPatchError(
                    f"node {prefix!r} has no indexed image named {bare!r}")
            return node, bare
        if self.elastic:
            for replica in self.ring.replicas_for(name):
                if replica not in self.registry:
                    continue
                if self.registry.breaker_of(replica).state == OPEN:
                    continue
                node = self.registry.get(replica)
                if node.has_image(name):
                    return node, name
        for node in self.registry:
            if node.has_image(name):
                return node, name
        raise UnknownPatchError(
            f"no federation node indexes an image named {name!r}")

    def _canonical_id(self, node: FederatedNode, bare: str,
                      namespace: bool) -> str:
        return namespaced_id(node.name, bare) if namespace else bare

    def _compatible_targets(self, num_bits: int,
                            ) -> tuple[list[FederatedNode], dict[str, str]]:
        """Nodes whose code width matches the query's, rest pre-skipped."""
        targets: list[FederatedNode] = []
        skipped: dict[str, str] = {}
        for node in self.registry:
            if node.system.hasher.num_bits == num_bits:
                targets.append(node)
            else:
                skipped[node.name] = SKIP_INCOMPATIBLE
        return targets, skipped

    def _require_nodes(self) -> None:
        if len(self.registry) == 0:
            raise ValidationError("the federation has no registered nodes")

    @staticmethod
    def _validate_code_query(k: "int | None", radius: "int | None") -> None:
        """Reject malformed client input *before* the scatter.

        A bad ``k``/``radius`` must surface as a ValidationError (an HTTP
        400), exactly like the direct path — not execute on the nodes,
        where each per-node exception would be recorded as a node failure
        and bad client input could trip healthy nodes' circuit breakers.
        """
        if radius is not None and radius < 0:
            raise ValidationError(f"radius must be >= 0, got {radius}")
        if radius is None and (k is None or k <= 0):
            raise ValidationError("provide k > 0 or an explicit radius")

    # ------------------------------------------------------------------ #
    # Global insertion sequence (elastic mode)
    # ------------------------------------------------------------------ #

    def seq_of(self, name: str) -> int:
        """The patch's global CBIR insertion sequence (elastic mode)."""
        return self._row_seq.get(name, -1)

    def sequence_map(self) -> dict[str, int]:
        """A copy of the global name -> insertion-seq map (for realign)."""
        return dict(self._row_seq)

    def tracked_names(self) -> list[str]:
        """Every live patch the elastic federation places."""
        return list(self._row_seq)

    def _row_order(self, item_id: object) -> "tuple[int, object]":
        seq = self._row_seq.get(item_id)
        return (0, seq) if seq is not None else (1, str(item_id))

    def _doc_order(self, name: str) -> "tuple[int, object]":
        seq = self._doc_seq.get(name)
        return (0, seq) if seq is not None else (1, str(name))

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def search(self, spec: QuerySpec) -> FederatedResponse:
        """Scatter a query-panel search; merge with global pagination.

        Each node is asked for the head of its result set (``skip=0``,
        ``limit=skip+limit``) so any global page can be cut from the
        concatenation; the original skip/limit apply to the merged list.
        In elastic mode the chosen readers return *all* their matches
        (replica copies must dedup before the page is cut), the distinct
        documents sort by global ingest order, and skip/limit apply to
        that — identical to the full-corpus store's ascending-doc-id
        answer.
        """
        self._require_nodes()
        with self.obs.request("federation.search") as req:
            if self.elastic:
                node_spec = replace(spec, skip=0, limit=None)
                outcomes, meta = self.executor.scatter_replicated(
                    lambda node: node.search(node_spec),
                    chains=self.ring.replica_chains())
                merged = merge_search(
                    [(o.node_name, o.value) for o in outcomes if o.ok],
                    skip=spec.skip, limit=spec.limit,
                    namespace=self._namespacing(),
                    dedupe=True, order_of=self._doc_order)
            else:
                node_limit = None if spec.limit is None else spec.skip + spec.limit
                node_spec = replace(spec, skip=0, limit=node_limit)
                outcomes, meta = self.executor.scatter(
                    lambda node: node.search(node_spec))
                merged = merge_search(
                    [(o.node_name, o.value) for o in outcomes if o.ok],
                    skip=spec.skip, limit=spec.limit,
                    namespace=self._namespacing())
            req.annotate(answered=len(meta.answered), failed=len(meta.failed))
            return FederatedResponse(merged, meta)

    def similar_images(self, name: str, *, k: "int | None" = 10,
                       radius: "int | None" = None,
                       filter: "QuerySpec | None" = None) -> FederatedResponse:
        """Federated CBIR from an archive image anywhere in the federation.

        ``filter`` (a metadata :class:`QuerySpec`) is scattered alongside
        the code: every node resolves it against its own metadata tier and
        answers with its filtered candidates, so the merged ranking equals
        filtering a global ranking.
        """
        self._require_nodes()
        with self.obs.request("federation.similar") as req:
            owner, bare = self.resolve_image(name)
            if radius is None and k is None:
                radius = owner.default_radius()
            self._validate_code_query(k, radius)
            code = owner.code_of(bare)
            request_k = None if k is None else k + 1
            namespace = self._namespacing()
            targets, pre_skipped = self._compatible_targets(
                owner.system.hasher.num_bits)
            # filter_spec rides along only when set, so stubs/peers speaking
            # the unfiltered protocol keep working.
            filter_kwargs = {} if filter is None else {"filter_spec": filter}
            plan_hint = (None if filter is None else
                         self._scatter_plan(owner, req, k=request_k,
                                            radius=radius, filter_spec=filter))
            fn = self._code_query_fn(code, request_k, radius, filter_kwargs,
                                     plan_hint)
            if self.elastic:
                outcomes, meta = self.executor.scatter_replicated(
                    fn, chains=self.ring.replica_chains(), targets=targets,
                    pre_skipped=pre_skipped)
                merged, used = merge_similarity(
                    [(o.node_name, o.value[0], o.value[1])
                     for o in outcomes if o.ok],
                    k=request_k, radius=radius, namespace=namespace,
                    dedupe=True, order_of=self._row_order)
            else:
                outcomes, meta = self.executor.scatter(
                    fn, nodes=targets, pre_skipped=pre_skipped)
                merged, used = merge_similarity(
                    [(o.node_name, o.value[0], o.value[1])
                     for o in outcomes if o.ok],
                    k=request_k, radius=radius, namespace=namespace)
            query_id = self._canonical_id(owner, bare, namespace)
            req.annotate(owner=owner.name, answered=len(meta.answered),
                         failed=len(meta.failed))
            return FederatedResponse(
                shape_name_response(query_id, merged, used, k), meta)

    @staticmethod
    def _scatter_plan(owner: FederatedNode, req, *, k: "int | None",
                      radius: "int | None",
                      filter_spec) -> "dict | None":
        """Plan once at the owning node; return the summary to scatter.

        The owner's planner prices the query against its own corpus and
        workload statistics; the chosen plan's summary (backend + filter
        mode) rides the scatter as a ``plan_hint`` so every member runs
        one consistent strategy, and the full decision (rejected
        alternatives, predicted costs) is recorded on the federation
        request span for ``explain=true``.  ``None`` — scatter without a
        hint — when the planner is disabled or the filter is empty; call
        sites also skip the hint entirely for unfiltered queries, both
        because each member's backend choice should track its own corpus
        size and so stubs/peers speaking the unfiltered protocol keep
        working.
        """
        choice = owner.plan_choice(k=k, radius=radius,
                                   filter_spec=filter_spec)
        if choice is None:
            return None
        req.annotate(plan=choice.explain())
        return choice.chosen.summary()

    @staticmethod
    def _code_query_fn(code: np.ndarray, request_k: "int | None",
                       radius: "int | None", filter_kwargs: dict,
                       plan_hint: "dict | None" = None):
        hint_kwargs = {} if plan_hint is None else {"plan_hint": plan_hint}

        def fn(node: FederatedNode):
            try:
                return node.query_code(code, k=request_k, radius=radius,
                                       **filter_kwargs, **hint_kwargs)
            except EmptyIndexError:
                # An elastic replica can legitimately be empty (all its
                # patches deleted, or a fresh joiner racing the handoff):
                # it contributes nothing, it is not a failure.
                return [], 0
        return fn

    def similar_images_batch(self, names: "list[str]", *,
                             k: "int | None" = 10,
                             radius: "int | None" = None,
                             filter: "QuerySpec | None" = None) -> FederatedResponse:
        """Batch federated CBIR: one merged response per name, in order.

        All query codes are resolved up front (each at its owning node),
        then every compatible node answers the whole batch through its
        native batch path — one scatter per federation, one coalesced scan
        per node.
        """
        self._require_nodes()
        names = list(names)
        if not names:
            raise ValidationError("similar_images_batch needs at least one name")
        with self.obs.request("federation.similar_batch",
                              queries=len(names)) as req:
            resolved = [self.resolve_image(name) for name in names]
            widths = {owner.system.hasher.num_bits for owner, _ in resolved}
            if len(widths) > 1:
                raise ValidationError(
                    f"batch queries span incompatible code widths {sorted(widths)}")
            if radius is None and k is None:
                radius = resolved[0][0].default_radius()
            self._validate_code_query(k, radius)
            codes = np.stack([owner.code_of(bare) for owner, bare in resolved])
            request_k = None if k is None else k + 1
            namespace = self._namespacing()
            targets, pre_skipped = self._compatible_targets(widths.pop())
            filter_kwargs = {} if filter is None else {"filter_spec": filter}
            plan_hint = (None if filter is None else
                         self._scatter_plan(resolved[0][0], req, k=request_k,
                                            radius=radius, filter_spec=filter))
            hint_kwargs = {} if plan_hint is None else {"plan_hint": plan_hint}

            def fn(node: FederatedNode):
                try:
                    return node.query_codes_batch(codes, k=request_k,
                                                  radius=radius,
                                                  **filter_kwargs,
                                                  **hint_kwargs)
                except EmptyIndexError:
                    return [([], 0)] * len(names)

            if self.elastic:
                outcomes, meta = self.executor.scatter_replicated(
                    fn, chains=self.ring.replica_chains(), targets=targets,
                    pre_skipped=pre_skipped)
            else:
                outcomes, meta = self.executor.scatter(
                    fn, nodes=targets, pre_skipped=pre_skipped)
            answered = [o for o in outcomes if o.ok]
            dedupe_kwargs = {"dedupe": True, "order_of": self._row_order} \
                if self.elastic else {}
            responses: list[SimilarityResponse] = []
            for position, (owner, bare) in enumerate(resolved):
                merged, used = merge_similarity(
                    [(o.node_name, o.value[position][0], o.value[position][1])
                     for o in answered],
                    k=request_k, radius=radius, namespace=namespace,
                    **dedupe_kwargs)
                query_id = self._canonical_id(owner, bare, namespace)
                responses.append(shape_name_response(query_id, merged, used, k))
            req.annotate(answered=len(meta.answered), failed=len(meta.failed))
            return FederatedResponse(responses, meta)

    def statistics_for(self, names: "list[str]") -> FederatedResponse:
        """Label statistics over federated names, summed across archives."""
        self._require_nodes()
        with self.obs.request("federation.statistics", names=len(names)):
            if self.elastic:
                return self._elastic_statistics(names)
            groups: dict[str, list[str]] = {}
            for name in names:
                owner, bare = self.resolve_image(name)
                groups.setdefault(owner.name, []).append(bare)
            owners = [node for node in self.registry if node.name in groups]
            pre_skipped = {node.name: SKIP_NO_DATA for node in self.registry
                           if node.name not in groups}
            outcomes, meta = self.executor.scatter(
                lambda node: node.statistics_for(groups[node.name]),
                nodes=owners, pre_skipped=pre_skipped)
            merged = merge_statistics(o.value for o in outcomes if o.ok)
            return FederatedResponse(merged, meta)

    def _elastic_statistics(self, names: "list[str]") -> FederatedResponse:
        """Replicated statistics: each name answered by one live replica.

        Names route to their first breaker-admitted replica in placement
        order; a failed node's names retry on the next untried replica
        (recorded in ``meta.recovered``).  Every name is counted exactly
        once, so the merged sums equal the full-corpus oracle's.
        """
        meta = FederatedResultMeta(nodes_total=len(self.registry))
        pending: list[tuple[str, list[str]]] = []  # (name, untried replicas)
        for name in names:
            replicas = [r for r in self.ring.replicas_for(name)
                        if r in self.registry]
            # A name no registered replica could hold contributes nothing,
            # exactly like the direct path's silent $in miss.
            if replicas:
                preferred = sorted(
                    replicas,
                    key=lambda r: self.registry.breaker_of(r).state == OPEN)
                pending.append((name, preferred))
        collected: list = []
        answered: set[str] = set()
        attempted: set[str] = set()
        failures: dict[str, list[str]] = {}
        while pending:
            groups: dict[str, list[str]] = {}
            leftovers: list[tuple[str, str, list[str]]] = []
            for name, candidates in pending:
                usable = [r for r in candidates if r not in attempted]
                if not usable:
                    meta.lost_segments += 1
                    continue
                groups.setdefault(usable[0], []).append(name)
                leftovers.append((name, usable[0], usable))
            if not groups:
                break
            wave_nodes = [self.registry.get(n) for n in self.registry.names
                          if n in groups]
            outcomes, wave_meta = self.executor.scatter(
                lambda node: node.statistics_for(groups[node.name]),
                nodes=wave_nodes)
            meta.queried.extend(wave_meta.queried)
            meta.answered.extend(wave_meta.answered)
            meta.failed.update(wave_meta.failed)
            meta.skipped.update(wave_meta.skipped)
            meta.latency_s.update(wave_meta.latency_s)
            answered.update(wave_meta.answered)
            attempted.update(groups)
            collected.extend(o.value for o in outcomes if o.ok)
            pending = []
            for name, picked, candidates in leftovers:
                if picked in answered:
                    for earlier in failures.get(name, []):
                        meta.recovered.setdefault(earlier, picked)
                else:
                    failures.setdefault(name, []).append(picked)
                    pending.append((name, candidates))
        for name in self.registry.names:
            if name not in attempted:
                meta.skipped.setdefault(name, SKIP_REPLICA_COVERED)
        merged = merge_statistics(collected)
        return FederatedResponse(merged, meta)

    # ------------------------------------------------------------------ #
    # Writes (fan-out in elastic mode)
    # ------------------------------------------------------------------ #

    def ingest_new_patch(self, patch, *, auto_label_if_missing: bool = False,
                         k: int = 10) -> dict:
        """Ingest one new patch into every replica the ring places it on.

        Elastic mode only.  Replicas apply the write in fan-out order; a
        replica that is down (open breaker, unregistered, or raising)
        gets a hint instead, replayed by :meth:`flush_hints`.  The patch
        enters the global insertion sequence once at least one replica
        holds it; if *no* replica could apply the write the ingest fails
        (and no hint survives — the write never happened).
        """
        self._require_elastic()
        self._require_nodes()
        name = patch.name
        if split_namespaced(name)[0] in self.registry.names:
            raise ValidationError(
                f"elastic patch names must be bare, got {name!r}")
        if name in self._row_seq:
            raise ValidationError(f"patch {name!r} already exists in the federation")
        replicas = self.ring.replicas_for(name)
        applied: list[str] = []
        failed: dict[str, str] = {}
        deferred_hints: list[tuple[str, Hint]] = []
        first_error: "BaseException | None" = None
        summary: dict = {}
        for replica in replicas:
            node, reason = self._writable_node(replica)
            if node is None:
                failed[replica] = reason
                deferred_hints.append((replica, Hint(
                    HINT_INGEST, name, payload=patch)))
                continue
            try:
                result = node.ingest_new_patch(
                    patch, auto_label_if_missing=auto_label_if_missing, k=k)
            except ReproError:
                raise
            except BaseException as exc:  # noqa: BLE001 - node fault
                self.registry.breaker_of(replica).record_failure()
                self.metrics.counter("replication.write_failures",
                                     node=replica).increment()
                failed[replica] = f"{type(exc).__name__}: {exc}"
                deferred_hints.append((replica, Hint(
                    HINT_INGEST, name, payload=patch)))
                if first_error is None:
                    first_error = exc
                continue
            self.registry.breaker_of(replica).record_success()
            applied.append(replica)
            if not summary:
                summary = result
        if not applied:
            if first_error is not None:
                raise first_error
            raise ValidationError(
                f"no replica of {name!r} is reachable "
                f"(placement: {list(replicas)})")
        for replica, hint in deferred_hints:
            hint.seq = self._next_seq
            self.hints.record(replica, hint)
        self._hint_joining(name, Hint(HINT_INGEST, name, payload=patch))
        seq = self._next_seq
        self._next_seq += 1
        self._row_seq[name] = seq
        self._doc_seq[name] = seq
        self.metrics.counter("replication.writes").increment()
        return {**summary, "name": name, "replicas": applied,
                "hinted": [r for r, _ in deferred_hints], "seq": seq}

    def update_image(self, name: str, features: np.ndarray) -> dict:
        """Re-embed an image on every node that holds it.

        In elastic mode the patch re-enters the global insertion sequence
        at the end (mirroring the single-system semantics where an update
        re-appends the row); replicas that miss the write are hinted.  In
        static mode the update fans out to every registered holder — same
        all-owners semantics as :meth:`delete_image`.
        """
        self._require_nodes()
        features = np.asarray(features, dtype=np.float64)
        if self.elastic:
            return self._fan_out_mutation(
                name, HINT_UPDATE,
                lambda node: node.update_image(name, features),
                payload=features)
        prefix, bare = split_namespaced(name)
        if prefix is not None and prefix in self.registry:
            node = self.registry.get(prefix)
            return {"node": prefix, **node.update_image(bare, features)}
        owners = [node for node in self.registry if node.has_image(name)]
        if not owners:
            raise UnknownPatchError(
                f"no federation node indexes an image named {name!r}")
        summaries = [(node.name, node.update_image(name, features))
                     for node in owners]
        return {"node": summaries[0][0], "nodes": [n for n, _ in summaries],
                **summaries[0][1]}

    def delete_image(self, name: str) -> dict:
        """Delete a federated image from *every* node that holds it.

        A namespaced ``node/patch`` id stays a point delete on that node.
        A bare name fans out to all owners — with replication (or
        duplicate bare names across archives) a single-owner delete would
        leave a replica serving the deleted patch forever.  The response
        keeps the historical ``"node"`` key (the first owner in
        registration order) and adds ``"nodes"`` with every node that
        deleted a copy.
        """
        self._require_nodes()
        if self.elastic:
            summary = self._fan_out_mutation(
                name, HINT_DELETE, lambda node: node.delete_image(name))
            self._row_seq.pop(name, None)
            self._doc_seq.pop(name, None)
            return summary
        prefix, bare = split_namespaced(name)
        if prefix is not None and prefix in self.registry:
            node = self.registry.get(prefix)
            summary = node.delete_image(bare)
            return {"node": prefix, **summary}
        owners = [node for node in self.registry if node.has_image(name)]
        if not owners:
            raise UnknownPatchError(
                f"no federation node indexes an image named {name!r}")
        summaries = [(node.name, node.delete_image(name)) for node in owners]
        return {"node": summaries[0][0], "nodes": [n for n, _ in summaries],
                **summaries[0][1]}

    def _writable_node(self, replica: str) -> "tuple[FederatedNode | None, str]":
        if replica not in self.registry:
            return None, "not_registered"
        if self.registry.breaker_of(replica).state == OPEN:
            return None, "circuit_open"
        return self.registry.get(replica), ""

    def _fan_out_mutation(self, name: str, op: str,
                          apply: Callable[[FederatedNode], dict],
                          payload: Any = None) -> dict:
        """Elastic delete/update fan-out with per-replica hints."""
        if split_namespaced(name)[0] in self.registry.names:
            raise ValidationError(
                f"elastic patch names must be bare, got {name!r}")
        if name not in self._row_seq:
            raise UnknownPatchError(
                f"no federation node indexes an image named {name!r}")
        replicas = list(self.ring.replicas_for(name))
        # Over-replicated transients (mid-rebalance copies) must go too.
        for node in self.registry:
            if node.name not in replicas and node.has_image(name):
                replicas.append(node.name)
        applied: list[str] = []
        hinted: list[str] = []
        summary: dict = {}
        for replica in replicas:
            node, _reason = self._writable_node(replica)
            if node is None:
                hinted.append(replica)
                self.hints.record(replica, Hint(op, name, payload=payload,
                                                seq=self._next_seq))
                continue
            try:
                result = apply(node)
            except UnknownPatchError:
                continue  # this replica never had the copy
            except ReproError:
                raise
            except BaseException as exc:  # noqa: BLE001 - node fault
                self.registry.breaker_of(replica).record_failure()
                self.metrics.counter("replication.write_failures",
                                     node=replica).increment()
                hinted.append(replica)
                self.hints.record(replica, Hint(op, name, payload=payload,
                                                seq=self._next_seq))
                if not applied and replica == replicas[-1]:
                    raise exc
                continue
            self.registry.breaker_of(replica).record_success()
            applied.append(replica)
            if not summary:
                summary = result
        self._hint_joining(name, Hint(op, name, payload=payload,
                                      seq=self._next_seq))
        if op == HINT_UPDATE and (applied or hinted):
            seq = self._next_seq
            self._next_seq += 1
            self._row_seq[name] = seq
        self.metrics.counter("replication.writes").increment()
        return {**summary, "name": name, "node": applied[0] if applied else None,
                "nodes": applied, "hinted": hinted}

    def _hint_joining(self, name: str, hint: Hint) -> None:
        """WAL-tail catch-up: mirror a racing write to mid-join nodes."""
        for joining, prospective in self._joining.items():
            if joining in prospective.replicas_for(name):
                self.hints.record(joining, Hint(hint.op, hint.name,
                                                payload=hint.payload,
                                                seq=self._next_seq))

    # ------------------------------------------------------------------ #
    # Hinted handoff
    # ------------------------------------------------------------------ #

    def flush_hints(self, node_name: str) -> int:
        """Replay a reachable node's parked writes, oldest first.

        Applied hints converge the replica to the fan-out state; the
        node's rows are then re-sorted to the global insertion order
        (replayed ingests appended out of sequence).  A hint that fails
        (node still broken) is re-parked along with the rest, preserving
        order.
        """
        node = self.registry.get(node_name)
        hints = self.hints.drain(node_name)
        applied = 0
        for position, hint in enumerate(hints):
            try:
                if hint.op == HINT_INGEST:
                    if not node.has_image(hint.name):
                        node.ingest_new_patch(hint.payload,
                                              auto_label_if_missing=False)
                elif hint.op == HINT_DELETE:
                    node.delete_image(hint.name)
                elif hint.op == HINT_UPDATE:
                    node.update_image(hint.name, hint.payload)
            except (UnknownPatchError, ValidationError):
                pass  # already converged (replayed after a repair sync)
            except BaseException:  # noqa: BLE001 - node still down: re-park
                for leftover in hints[position:]:
                    self.hints.record(node_name, leftover)
                self.registry.breaker_of(node_name).record_failure()
                return applied
            applied += 1
        if applied:
            node.system.realign_index_rows(self.sequence_map())
        return applied

    # ------------------------------------------------------------------ #
    # Elastic membership: join / leave / death / recovery
    # ------------------------------------------------------------------ #

    def join_node(self, name: str, system: "EarthQube | None" = None, *,
                  serving: bool = False) -> dict:
        """Add a node to a live elastic federation, with shard handoff.

        The sequence is: register the node (still off the ring) → compute
        its prospective placement → ship every patch it will own from a
        current replica through seq-stamped snapshots → drain the hint
        tail that accumulated while shipping (writes racing the join) →
        flip the ring → drop copies other nodes no longer own.  A failure
        anywhere before the flip rolls the registration back: the ring
        never points at a node that does not hold its shard.

        ``system=None`` spawns an empty clone of the first registered
        node (sharing its trained models).
        """
        self._require_elastic()
        self._require_nodes()
        if system is None:
            template = next(iter(self.registry))
            system = template.system.empty_clone(serving=serving)
        node = self.registry.add(FederatedNode(name, system))
        new_ring = self.ring.with_node(name)
        self._joining[name] = new_ring
        shipped = {"patches": 0, "bytes": 0, "shipments": 0}
        try:
            with self.obs.request("federation.join", node=name):
                seq_map = self.sequence_map()
                moving = [p for p, _ in sorted(self._row_seq.items(),
                                               key=lambda kv: kv[1])
                          if name in new_ring.replicas_for(p)
                          and not node.has_image(p)]
                by_source = self._plan_sources(moving, exclude=name)
                for source_name in [n.name for n in self.registry
                                    if n.name in by_source]:
                    self._handoff_seq += 1
                    result = ship_shard(
                        self.registry.get(source_name).system,
                        by_source[source_name], system,
                        seq=self._handoff_seq, faults=self.faults,
                        realign=seq_map)
                    shipped["patches"] += result["patches"]
                    shipped["bytes"] += result["bytes"]
                    shipped["shipments"] += 1
                    self.metrics.counter("handoff.patches",
                                         node=name).increment(result["patches"])
                    self.metrics.counter("handoff.bytes",
                                         node=name).increment(result["bytes"])
                # WAL-tail catch-up: writes that raced the ship were hinted.
                tail = self.flush_hints(name)
                self.ring = new_ring  # the atomic flip
        except BaseException:
            self.registry.remove(name)
            self.hints.discard(name)
            raise
        finally:
            self._joining.pop(name, None)
        dropped = self._drop_over_replicated()
        self.metrics.counter("membership.joins").increment()
        return {"node": name, **shipped, "tail_writes": tail,
                "dropped_copies": dropped}

    def leave_node(self, name: str) -> dict:
        """Gracefully retire a node: hand its shard off, then deregister.

        The leaving node is still alive, so it ships its own copies to
        the nodes that become replicas under the shrunk ring; only then
        does the ring flip and the registration drop.
        """
        self._require_elastic()
        leaving = self.registry.get(name)
        new_ring = self.ring.without_node(name)
        seq_map = self.sequence_map()
        moves: dict[str, list[str]] = {}
        for pname, _ in sorted(self._row_seq.items(), key=lambda kv: kv[1]):
            if name not in self.ring.replicas_for(pname):
                continue
            for target in new_ring.replicas_for(pname):
                if target in self.registry and \
                        not self.registry.get(target).has_image(pname):
                    moves.setdefault(target, []).append(pname)
        shipped = {"patches": 0, "bytes": 0, "shipments": 0}
        with self.obs.request("federation.leave", node=name):
            for target in [n.name for n in self.registry if n.name in moves]:
                names_held = [p for p in moves[target] if leaving.has_image(p)]
                self._handoff_seq += 1
                result = ship_shard(
                    leaving.system, names_held,
                    self.registry.get(target).system,
                    seq=self._handoff_seq, faults=self.faults,
                    realign=seq_map)
                shipped["patches"] += result["patches"]
                shipped["bytes"] += result["bytes"]
                shipped["shipments"] += 1
                self.metrics.counter("handoff.patches",
                                     node=target).increment(result["patches"])
                self.metrics.counter("handoff.bytes",
                                     node=target).increment(result["bytes"])
            self.ring = new_ring
            self.registry.remove(name)
            self.hints.discard(name)
        self.metrics.counter("membership.leaves").increment()
        return {"node": name, **shipped}

    def node_died(self, name: str) -> dict:
        """Abrupt node loss: eject it and re-replicate from survivors.

        No handoff from the dead node is possible — every patch it owned
        is re-shipped to its replacement replica from a *surviving*
        replica (with R >= 2 one always exists).  A patch with no
        surviving copy is reported lost and dropped from placement.
        """
        self._require_elastic()
        if name in self.registry:
            self.registry.remove(name)
        if name not in self.ring:
            return {"node": name, "patches": 0, "bytes": 0, "lost": []}
        old_ring = self.ring
        new_ring = self.ring.without_node(name)
        seq_map = self.sequence_map()
        moves: dict[tuple[str, str], list[str]] = {}
        lost: list[str] = []
        for pname, _ in sorted(self._row_seq.items(), key=lambda kv: kv[1]):
            if name not in old_ring.replicas_for(pname):
                continue
            survivor = next(
                (r for r in old_ring.replicas_for(pname)
                 if r != name and r in self.registry
                 and self.registry.get(r).has_image(pname)),
                None)
            if survivor is None:
                survivor = next((n.name for n in self.registry
                                 if n.has_image(pname)), None)
            if survivor is None:
                lost.append(pname)
                continue
            for target in new_ring.replicas_for(pname):
                if target in self.registry and \
                        not self.registry.get(target).has_image(pname):
                    moves.setdefault((survivor, target), []).append(pname)
        shipped = {"patches": 0, "bytes": 0, "shipments": 0}
        with self.obs.request("federation.node_died", node=name):
            for source, target in sorted(moves):
                self._handoff_seq += 1
                result = ship_shard(
                    self.registry.get(source).system, moves[(source, target)],
                    self.registry.get(target).system,
                    seq=self._handoff_seq, faults=self.faults,
                    realign=seq_map)
                shipped["patches"] += result["patches"]
                shipped["bytes"] += result["bytes"]
                shipped["shipments"] += 1
                self.metrics.counter("handoff.patches",
                                     node=target).increment(result["patches"])
                self.metrics.counter("handoff.bytes",
                                     node=target).increment(result["bytes"])
            self.ring = new_ring
            self.hints.discard(name)
        for pname in lost:
            self._row_seq.pop(pname, None)
            self._doc_seq.pop(pname, None)
        self.metrics.counter("membership.deaths").increment()
        return {"node": name, **shipped, "lost": lost}

    def reregister_node(self, name: str, system: "EarthQube") -> FederatedNode:
        """Swap a recovered system in under its federation name.

        The crash-recovery path: replaces any stale registration with the
        recovered system.  In elastic mode a node still on the ring
        drains its parked hints and realigns its rows (it kept its shard
        across the restart); a node that was ejected via
        :meth:`node_died` instead rejoins through the full handoff.
        """
        if name in self.registry:
            self.registry.remove(name)
        if self.elastic and name not in self.ring:
            self.join_node(name, system)
            return self.registry.get(name)
        node = self.registry.add(FederatedNode(name, system))
        if self.elastic:
            if self.hints.depth(name):
                self.flush_hints(name)
            system.realign_index_rows(self.sequence_map())
        return node

    def _plan_sources(self, names: "list[str]", *,
                      exclude: str) -> dict[str, list[str]]:
        """Group patches by the replica that will ship them (join path)."""
        by_source: dict[str, list[str]] = {}
        for pname in names:
            source = next(
                (r for r in self.ring.replicas_for(pname)
                 if r != exclude and r in self.registry
                 and self.registry.breaker_of(r).state != OPEN
                 and self.registry.get(r).has_image(pname)),
                None)
            if source is None:
                source = next((n.name for n in self.registry
                               if n.name != exclude and n.has_image(pname)),
                              None)
            if source is not None:
                by_source.setdefault(source, []).append(pname)
        return by_source

    def _drop_over_replicated(self) -> int:
        """Delete copies on nodes the (new) ring no longer places them on."""
        dropped = 0
        for pname in list(self._row_seq):
            replicas = set(self.ring.replicas_for(pname))
            for node in self.registry:
                if node.name in replicas or not node.has_image(pname):
                    continue
                try:
                    node.delete_image(pname)
                    dropped += 1
                except ReproError:
                    pass
        return dropped

    # ------------------------------------------------------------------ #
    # Introspection / lifecycle
    # ------------------------------------------------------------------ #

    def describe(self) -> dict:
        """Federation summary: members, capabilities, health, config."""
        snapshot = self.nodes()
        summary = {
            "nodes": snapshot,
            "num_nodes": len(snapshot),
            "total_corpus": sum(entry["capabilities"]["corpus_size"]
                                for entry in snapshot),
            "namespace_results": self.config.namespace_results,
            "node_timeout_s": self.config.node_timeout_s,
            "max_retries": self.config.max_retries,
            "breaker_failure_threshold": self.config.breaker_failure_threshold,
            "breaker_cooldown_s": self.config.breaker_cooldown_s,
        }
        if self.elastic:
            summary["replication"] = {
                "elastic": True,
                "replication_factor": self.config.replication_factor,
                "tracked_patches": len(self._row_seq),
                "ring": self.ring.describe(),
                "pending_hints": self.hints.snapshot(),
            }
        return summary

    def metrics_snapshot(self) -> dict:
        """Executor metrics plus the per-node latency series family.

        ``per_node_latency`` keeps its historical ``{node: summary}`` shape,
        projected from the labeled ``node.latency`` family (the same series
        the Prometheus exposition renders with ``node="<name>"`` labels).
        """
        snapshot = self.metrics.snapshot()
        snapshot["per_node_latency"] = self.metrics.labeled_family(
            "node.latency", "node")
        if self.elastic:
            snapshot["replication"] = {
                "pending_hints": self.hints.snapshot(),
                "tracked_patches": len(self._row_seq),
            }
        return snapshot

    def close(self) -> None:
        """Shut down the scatter-gather pool (nodes stay running)."""
        if self.repairer is not None:
            self.repairer.stop()
        self.executor.close()

    def __enter__(self) -> "FederatedEarthQube":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def replicate(cls, template: "EarthQube", node_names: "list[str]",
                  config: "FederationConfig | None" = None, *,
                  serving: bool = False,
                  clock: Callable[[], float] = time.monotonic,
                  faults=NO_FAULTS) -> "FederatedEarthQube":
        """Build an elastic federation holding ``template``'s corpus.

        Every node starts as an empty clone of ``template`` (sharing its
        trained hasher/extractor, so replica codes are bit-identical),
        then the template's patches are fan-out ingested in archive
        order — the global insertion sequence equals the template's own
        row order, which is what makes the federation byte-identical to
        querying ``template`` directly.
        """
        if config is None:
            config = FederationConfig(
                elastic=True,
                replication_factor=min(2, max(1, len(node_names))))
        fed = cls(None, config, clock=clock, faults=faults)
        for node_name in node_names:
            fed.add_node(node_name, template.empty_clone(serving=serving))
        for patch in template.archive.patches:
            fed.ingest_new_patch(patch)
        return fed
