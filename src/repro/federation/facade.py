"""FederatedEarthQube: N independent archives behind one query surface.

The facade mirrors the :class:`~repro.earthqube.server.EarthQube` query
API — ``search``, ``similar_images``, ``similar_images_batch``,
``statistics_for`` — but executes each call as a scatter-gather across
every registered node and returns a :class:`FederatedResponse`: the merged
value (byte-identical in type and, for one node, in content, to the direct
call) plus the :class:`~repro.federation.executor.FederatedResultMeta`
that makes partial coverage explicit.

CBIR queries resolve the query image to its *owning* node (by namespaced
id ``node/patch_name``, or by scanning registration order for a bare
name), read the packed code there, and scatter the code to every node with
a compatible bit-width — each node answering through its own serving tier
(cache, micro-batcher, shards) when enabled.  The owning node's self-match
is dropped globally, exactly like the single-system paths.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Callable, Iterable, Mapping

import numpy as np

from ..config import FederationConfig
from ..earthqube.cbir import SimilarityResponse, shape_name_response
from ..earthqube.query import QuerySpec
from ..errors import UnknownPatchError, ValidationError
from .executor import (
    SKIP_INCOMPATIBLE,
    SKIP_NO_DATA,
    FederatedExecutor,
    FederatedResultMeta,
)
from ..obs import Observability
from .merge import (
    merge_search,
    merge_similarity,
    merge_statistics,
    namespaced_id,
    split_namespaced,
)
from .registry import FederatedNode, NodeRegistry

if TYPE_CHECKING:
    from ..earthqube.server import EarthQube


@dataclass
class FederatedResponse:
    """A merged result plus the coverage meta that qualifies it."""

    value: Any
    meta: FederatedResultMeta


class FederatedEarthQube:
    """Scatter-gather facade over a registry of EarthQube nodes."""

    def __init__(self,
                 nodes: "Mapping[str, EarthQube] | Iterable[FederatedNode] | None" = None,
                 config: "FederationConfig | None" = None, *,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.config = config or FederationConfig()
        self.registry = NodeRegistry(
            failure_threshold=self.config.breaker_failure_threshold,
            cooldown_s=self.config.breaker_cooldown_s,
            clock=clock)
        self.executor = FederatedExecutor(self.registry, self.config, clock=clock)
        self.metrics = self.executor.metrics
        self.obs = Observability(self.config.obs, component="federation")
        if nodes is not None:
            if isinstance(nodes, Mapping):
                for name, system in nodes.items():
                    self.add_node(name, system)
            else:
                for node in nodes:
                    self.registry.add(node)

    # ------------------------------------------------------------------ #
    # Membership
    # ------------------------------------------------------------------ #

    def add_node(self, name: str, system: "EarthQube") -> FederatedNode:
        """Register one EarthQube instance under a federation-unique name."""
        return self.registry.add(FederatedNode(name, system))

    def remove_node(self, name: str) -> None:
        self.registry.remove(name)

    @property
    def num_nodes(self) -> int:
        return len(self.registry)

    def nodes(self) -> list[dict]:
        """Per-node capability + health snapshot (``GET /federation/nodes``)."""
        return self.registry.snapshot()

    def _namespacing(self) -> bool:
        mode = self.config.namespace_results
        if mode == "always":
            return True
        if mode == "never":
            return False
        return len(self.registry) > 1

    # ------------------------------------------------------------------ #
    # Name resolution
    # ------------------------------------------------------------------ #

    def resolve_image(self, name: str) -> tuple[FederatedNode, str]:
        """The (owning node, bare name) of a federated patch id.

        A ``node/patch_name`` id routes to that node; a bare name is looked
        up across nodes in registration order and the first archive that
        indexes it owns the query (deterministic under duplicates).
        """
        prefix, bare = split_namespaced(name)
        if prefix is not None and prefix in self.registry:
            node = self.registry.get(prefix)
            if not node.has_image(bare):
                raise UnknownPatchError(
                    f"node {prefix!r} has no indexed image named {bare!r}")
            return node, bare
        for node in self.registry:
            if node.has_image(name):
                return node, name
        raise UnknownPatchError(
            f"no federation node indexes an image named {name!r}")

    def _canonical_id(self, node: FederatedNode, bare: str,
                      namespace: bool) -> str:
        return namespaced_id(node.name, bare) if namespace else bare

    def _compatible_targets(self, num_bits: int,
                            ) -> tuple[list[FederatedNode], dict[str, str]]:
        """Nodes whose code width matches the query's, rest pre-skipped."""
        targets: list[FederatedNode] = []
        skipped: dict[str, str] = {}
        for node in self.registry:
            if node.system.hasher.num_bits == num_bits:
                targets.append(node)
            else:
                skipped[node.name] = SKIP_INCOMPATIBLE
        return targets, skipped

    def _require_nodes(self) -> None:
        if len(self.registry) == 0:
            raise ValidationError("the federation has no registered nodes")

    @staticmethod
    def _validate_code_query(k: "int | None", radius: "int | None") -> None:
        """Reject malformed client input *before* the scatter.

        A bad ``k``/``radius`` must surface as a ValidationError (an HTTP
        400), exactly like the direct path — not execute on the nodes,
        where each per-node exception would be recorded as a node failure
        and bad client input could trip healthy nodes' circuit breakers.
        """
        if radius is not None and radius < 0:
            raise ValidationError(f"radius must be >= 0, got {radius}")
        if radius is None and (k is None or k <= 0):
            raise ValidationError("provide k > 0 or an explicit radius")

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def search(self, spec: QuerySpec) -> FederatedResponse:
        """Scatter a query-panel search; merge with global pagination.

        Each node is asked for the head of its result set (``skip=0``,
        ``limit=skip+limit``) so any global page can be cut from the
        concatenation; the original skip/limit apply to the merged list.
        """
        self._require_nodes()
        with self.obs.request("federation.search") as req:
            node_limit = None if spec.limit is None else spec.skip + spec.limit
            node_spec = replace(spec, skip=0, limit=node_limit)
            outcomes, meta = self.executor.scatter(
                lambda node: node.search(node_spec))
            merged = merge_search(
                [(o.node_name, o.value) for o in outcomes if o.ok],
                skip=spec.skip, limit=spec.limit, namespace=self._namespacing())
            req.annotate(answered=len(meta.answered), failed=len(meta.failed))
            return FederatedResponse(merged, meta)

    def similar_images(self, name: str, *, k: "int | None" = 10,
                       radius: "int | None" = None,
                       filter: "QuerySpec | None" = None) -> FederatedResponse:
        """Federated CBIR from an archive image anywhere in the federation.

        ``filter`` (a metadata :class:`QuerySpec`) is scattered alongside
        the code: every node resolves it against its own metadata tier and
        answers with its filtered candidates, so the merged ranking equals
        filtering a global ranking.
        """
        self._require_nodes()
        with self.obs.request("federation.similar") as req:
            owner, bare = self.resolve_image(name)
            if radius is None and k is None:
                radius = owner.default_radius()
            self._validate_code_query(k, radius)
            code = owner.code_of(bare)
            request_k = None if k is None else k + 1
            namespace = self._namespacing()
            targets, pre_skipped = self._compatible_targets(
                owner.system.hasher.num_bits)
            # filter_spec rides along only when set, so stubs/peers speaking
            # the unfiltered protocol keep working.
            filter_kwargs = {} if filter is None else {"filter_spec": filter}
            outcomes, meta = self.executor.scatter(
                lambda node: node.query_code(code, k=request_k, radius=radius,
                                             **filter_kwargs),
                nodes=targets, pre_skipped=pre_skipped)
            merged, used = merge_similarity(
                [(o.node_name, o.value[0], o.value[1])
                 for o in outcomes if o.ok],
                k=request_k, radius=radius, namespace=namespace)
            query_id = self._canonical_id(owner, bare, namespace)
            req.annotate(owner=owner.name, answered=len(meta.answered),
                         failed=len(meta.failed))
            return FederatedResponse(
                shape_name_response(query_id, merged, used, k), meta)

    def similar_images_batch(self, names: "list[str]", *,
                             k: "int | None" = 10,
                             radius: "int | None" = None,
                             filter: "QuerySpec | None" = None) -> FederatedResponse:
        """Batch federated CBIR: one merged response per name, in order.

        All query codes are resolved up front (each at its owning node),
        then every compatible node answers the whole batch through its
        native batch path — one scatter per federation, one coalesced scan
        per node.
        """
        self._require_nodes()
        names = list(names)
        if not names:
            raise ValidationError("similar_images_batch needs at least one name")
        with self.obs.request("federation.similar_batch",
                              queries=len(names)) as req:
            resolved = [self.resolve_image(name) for name in names]
            widths = {owner.system.hasher.num_bits for owner, _ in resolved}
            if len(widths) > 1:
                raise ValidationError(
                    f"batch queries span incompatible code widths {sorted(widths)}")
            if radius is None and k is None:
                radius = resolved[0][0].default_radius()
            self._validate_code_query(k, radius)
            codes = np.stack([owner.code_of(bare) for owner, bare in resolved])
            request_k = None if k is None else k + 1
            namespace = self._namespacing()
            targets, pre_skipped = self._compatible_targets(widths.pop())
            filter_kwargs = {} if filter is None else {"filter_spec": filter}
            outcomes, meta = self.executor.scatter(
                lambda node: node.query_codes_batch(codes, k=request_k,
                                                    radius=radius,
                                                    **filter_kwargs),
                nodes=targets, pre_skipped=pre_skipped)
            answered = [o for o in outcomes if o.ok]
            responses: list[SimilarityResponse] = []
            for position, (owner, bare) in enumerate(resolved):
                merged, used = merge_similarity(
                    [(o.node_name, o.value[position][0], o.value[position][1])
                     for o in answered],
                    k=request_k, radius=radius, namespace=namespace)
                query_id = self._canonical_id(owner, bare, namespace)
                responses.append(shape_name_response(query_id, merged, used, k))
            req.annotate(answered=len(meta.answered), failed=len(meta.failed))
            return FederatedResponse(responses, meta)

    def delete_image(self, name: str) -> dict:
        """Delete a federated image at its owning node.

        A point operation, not a scatter: the (unique) owner resolved by
        :meth:`resolve_image` removes the image from its own store and
        index; every later federated query simply no longer sees it.
        Returns the owner's deletion summary with the node name attached.
        """
        self._require_nodes()
        owner, bare = self.resolve_image(name)
        summary = owner.delete_image(bare)
        return {"node": owner.name, **summary}

    def statistics_for(self, names: "list[str]") -> FederatedResponse:
        """Label statistics over federated names, summed across archives."""
        self._require_nodes()
        with self.obs.request("federation.statistics", names=len(names)):
            groups: dict[str, list[str]] = {}
            for name in names:
                owner, bare = self.resolve_image(name)
                groups.setdefault(owner.name, []).append(bare)
            owners = [node for node in self.registry if node.name in groups]
            pre_skipped = {node.name: SKIP_NO_DATA for node in self.registry
                           if node.name not in groups}
            outcomes, meta = self.executor.scatter(
                lambda node: node.statistics_for(groups[node.name]),
                nodes=owners, pre_skipped=pre_skipped)
            merged = merge_statistics(o.value for o in outcomes if o.ok)
            return FederatedResponse(merged, meta)

    # ------------------------------------------------------------------ #
    # Introspection / lifecycle
    # ------------------------------------------------------------------ #

    def describe(self) -> dict:
        """Federation summary: members, capabilities, health, config."""
        snapshot = self.nodes()
        return {
            "nodes": snapshot,
            "num_nodes": len(snapshot),
            "total_corpus": sum(entry["capabilities"]["corpus_size"]
                                for entry in snapshot),
            "namespace_results": self.config.namespace_results,
            "node_timeout_s": self.config.node_timeout_s,
            "max_retries": self.config.max_retries,
            "breaker_failure_threshold": self.config.breaker_failure_threshold,
            "breaker_cooldown_s": self.config.breaker_cooldown_s,
        }

    def metrics_snapshot(self) -> dict:
        """Executor metrics plus the per-node latency series family.

        ``per_node_latency`` keeps its historical ``{node: summary}`` shape,
        projected from the labeled ``node.latency`` family (the same series
        the Prometheus exposition renders with ``node="<name>"`` labels).
        """
        snapshot = self.metrics.snapshot()
        snapshot["per_node_latency"] = self.metrics.labeled_family(
            "node.latency", "node")
        return snapshot

    def close(self) -> None:
        """Shut down the scatter-gather pool (nodes stay running)."""
        self.executor.close()

    def __enter__(self) -> "FederatedEarthQube":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
