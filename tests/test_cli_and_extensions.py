"""Tests for the CLI, store persistence, evaluator, refinement, spectral
hashing, and archive summary."""

import io as iolib

import numpy as np
import pytest

from repro.baselines.spectral import SpectralHashing
from repro.bigearthnet.summary import summarize_archive
from repro.cli import main
from repro.earthqube.refinement import RelevanceFeedbackSession, RocchioWeights
from repro.errors import NotFittedError, StoreError, ValidationError
from repro.metrics.evaluation import EvaluationReport, RetrievalEvaluator
from repro.store import Database
from repro.store.persistence import load_database, save_database


class TestCLI:
    def test_generate_and_train_from_saved_archive(self, tmp_path):
        out = iolib.StringIO()
        code = main(["generate", "--patches", "12", "--seed", "3",
                     "--out", str(tmp_path / "arch")], out=out)
        assert code == 0
        assert "wrote 12 patches" in out.getvalue()

        out = iolib.StringIO()
        code = main(["train", "--archive", str(tmp_path / "arch"),
                     "--bits", "16", "--epochs", "2",
                     "--out", str(tmp_path / "model.npz")], out=out)
        assert code == 0
        assert "trained MiLaN (16 bits)" in out.getvalue()
        assert (tmp_path / "model.npz").exists()

    def test_search_command(self):
        out = iolib.StringIO()
        code = main(["search", "--patches", "40", "--seed", "5", "--bits", "16",
                     "--epochs", "2", "--labels", "Coniferous forest",
                     "--limit", "3"], out=out)
        assert code == 0
        assert "matches" in out.getvalue()

    def test_similar_command(self):
        out = iolib.StringIO()
        code = main(["similar", "--patches", "40", "--seed", "5", "--bits", "16",
                     "--epochs", "2", "--k", "3"], out=out)
        assert code == 0
        assert "images similar to" in out.getvalue()

    def test_describe_command(self):
        out = iolib.StringIO()
        code = main(["describe", "--patches", "30", "--seed", "2", "--bits", "16",
                     "--epochs", "2"], out=out)
        assert code == 0
        assert '"archive_patches": 30' in out.getvalue()

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestStorePersistence:
    def test_roundtrip_with_indexes_and_bytes(self, tmp_path):
        db = Database.earthqube_schema(geo_precision=4)
        db["metadata"].insert_one({
            "name": "p1", "location": {"bbox": [8.0, 47.0, 8.1, 47.1]},
            "properties": {"labels": ["Pastures"], "label_chars": "R",
                           "season": "Summer", "country": "Switzerland",
                           "satellites": ["S2"],
                           "acquisition_date": "2017-07-01T10:00:00"}})
        db["image_data"].insert_one({"name": "p1", "bands": {
            "B02": {"data": b"\x00\x01\x02", "shape": [1, 3], "dtype": "uint8"}}})
        db["feedback"].insert_one({"text": "hi", "category": "comment",
                                   "submitted_at": "2026-01-01T00:00:00"})

        path = tmp_path / "snapshot.json"
        save_database(db, path)
        restored = load_database(path)

        assert set(restored.collection_names()) == set(db.collection_names())
        doc = restored["metadata"].get("p1")
        assert doc["properties"]["labels"] == ["Pastures"]
        # bytes survived the base64 roundtrip
        band = restored["image_data"].get("p1")["bands"]["B02"]
        assert band["data"] == b"\x00\x01\x02"
        # indexes were rebuilt: geo query planned through the index
        from repro.geo import BoundingBox, Rectangle
        shape = Rectangle(BoundingBox(west=7.9, south=46.9, east=8.2, north=47.2))
        result = restored["metadata"].find({"location": {"$geoIntersects": shape}})
        assert result.plan == "geo_index:location"
        assert len(result) == 1

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(StoreError):
            load_database(tmp_path / "absent.json")


class TestRetrievalEvaluator:
    @pytest.fixture(scope="class")
    def setup(self):
        rng = np.random.default_rng(0)
        # Two label groups with separable codes.
        labels = np.zeros((60, 4), dtype=bool)
        labels[:30, 0] = True
        labels[30:, 1] = True
        bits = np.zeros((60, 16), dtype=np.uint8)
        bits[30:, :] = 1
        noise = rng.random((60, 16)) < 0.1
        bits ^= noise.astype(np.uint8)
        from repro.index import pack_bits
        return pack_bits(bits), labels

    def test_self_evaluation_near_perfect(self, setup):
        codes, labels = setup
        report = RetrievalEvaluator(16, k=5).evaluate(codes, labels)
        assert report.precision > 0.9
        assert report.map_score > 0.9
        assert 0 < report.recall <= 1
        assert report.num_queries == 60

    def test_query_split_evaluation(self, setup):
        codes, labels = setup
        report = RetrievalEvaluator(16, k=5).evaluate(
            codes[:50], labels[:50], codes[50:], labels[50:])
        assert report.num_queries == 10
        assert report.precision > 0.8

    def test_random_baseline(self, setup):
        _, labels = setup
        baseline = RetrievalEvaluator(16).random_baseline(labels)
        assert 0.4 < baseline < 0.6  # two equal groups

    def test_report_row_shapes(self, setup):
        codes, labels = setup
        report = RetrievalEvaluator(16, k=5).evaluate(codes, labels)
        assert len(report.as_row()) == len(EvaluationReport.header())

    def test_validation(self, setup):
        codes, labels = setup
        with pytest.raises(ValidationError):
            RetrievalEvaluator(16, k=0)
        with pytest.raises(ValidationError):
            RetrievalEvaluator(16).evaluate(codes, labels, codes, None)

    def test_max_queries_subsamples(self, setup):
        codes, labels = setup
        report = RetrievalEvaluator(16, k=5, max_queries=10).evaluate(codes, labels)
        assert report.num_queries <= 10


class TestSpectralHashing:
    @pytest.fixture(scope="class")
    def clusters(self):
        rng = np.random.default_rng(3)
        a = rng.standard_normal((60, 30)) + 3.0
        b = rng.standard_normal((60, 30)) - 3.0
        return np.vstack([a, b])

    def test_bits_shape_and_determinism(self, clusters):
        sh = SpectralHashing(16).fit(clusters)
        bits = sh.hash_bits(clusters)
        assert bits.shape == (120, 16)
        np.testing.assert_array_equal(bits, sh.hash_bits(clusters))

    def test_separates_clusters_on_average(self, clusters):
        # SH bits oscillate within clusters (higher modes), so compare mean
        # within- vs across-cluster distances rather than single pairs.
        from repro.index import pairwise_hamming
        sh = SpectralHashing(24).fit(clusters)
        packed = sh.hash_packed(clusters)
        distances = pairwise_hamming(packed)
        n = 60
        within = (distances[:n, :n].sum() + distances[n:, n:].sum()) / (n * (n - 1) * 2)
        across = distances[:n, n:].mean()
        assert within < across

    def test_more_bits_than_dimensions(self, clusters):
        sh = SpectralHashing(64).fit(clusters)  # 64 bits from 30 dims
        assert sh.hash_bits(clusters).shape == (120, 64)

    def test_single_vector(self, clusters):
        sh = SpectralHashing(16).fit(clusters)
        assert sh.hash_bits(clusters[0]).shape == (16,)

    def test_unfitted(self, clusters):
        with pytest.raises(NotFittedError):
            SpectralHashing(16).hash_bits(clusters)

    def test_validation(self):
        with pytest.raises(ValidationError):
            SpectralHashing(12)


class TestRelevanceFeedback:
    def test_refinement_improves_or_holds_precision(self, system):
        """Marking label-sharing results as relevant should not hurt."""
        from repro.core.similarity import shares_label_matrix
        labels = system.archive.label_matrix()
        similar = shares_label_matrix(labels)
        q = 3
        session = RelevanceFeedbackSession.from_archive_image(
            system.cbir, system.features, q)
        first = session.search(k=10)
        rows = [system.archive.index_of(n) for n in first.names if n in system.archive._by_name]
        relevant = [n for n, r in zip(first.names, rows) if similar[q, r]]
        irrelevant = [n for n, r in zip(first.names, rows) if not similar[q, r]]
        if not relevant:
            pytest.skip("no relevant results to feed back")
        refined = session.refine(relevant, irrelevant, k=10)
        rows2 = [system.archive.index_of(n) for n in refined.names]
        precision_before = np.mean([similar[q, r] for r in rows]) if rows else 0
        precision_after = np.mean([similar[q, r] for r in rows2]) if rows2 else 0
        assert session.rounds == 1
        assert precision_after >= precision_before - 0.21  # no collapse

    def test_refine_requires_marks(self, system):
        session = RelevanceFeedbackSession.from_archive_image(
            system.cbir, system.features, 0)
        with pytest.raises(ValidationError):
            session.refine([], [])

    def test_weights_validation(self):
        with pytest.raises(ValidationError):
            RocchioWeights(alpha=-1.0)
        with pytest.raises(ValidationError):
            RocchioWeights(alpha=0.0, beta=0.0)


class TestArchiveSummary:
    def test_summary_consistency(self, archive):
        summary = summarize_archive(archive)
        assert summary.num_patches == len(archive)
        assert sum(summary.by_country.values()) == len(archive)
        assert sum(summary.by_season.values()) == len(archive)
        assert sum(summary.labels_per_patch_histogram.values()) == len(archive)
        assert summary.labels_per_patch_mean == pytest.approx(
            sum(k * v for k, v in summary.labels_per_patch_histogram.items())
            / len(archive))

    def test_cooccurrence_diagonal_matches_counts(self, archive):
        from repro.bigearthnet.clc import get_nomenclature
        summary = summarize_archive(archive)
        nomenclature = get_nomenclature()
        for label, count in summary.label_counts.items():
            idx = nomenclature.index_of(label)
            assert summary.cooccurrence[idx, idx] == count

    def test_top_labels_sorted(self, archive):
        summary = summarize_archive(archive)
        top = summary.top_labels(5)
        counts = [c for _, c in top]
        assert counts == sorted(counts, reverse=True)

    def test_top_cooccurrences(self, archive):
        summary = summarize_archive(archive)
        pairs = summary.top_cooccurrences(5)
        assert all(a != b for a, b, _ in pairs)
        counts = [c for _, _, c in pairs]
        assert counts == sorted(counts, reverse=True)

    def test_cooccurrence_probability(self, archive):
        summary = summarize_archive(archive)
        label_a, label_b, _ = summary.top_cooccurrences(1)[0]
        p = summary.cooccurrence_probability(label_a, label_b)
        assert 0.0 < p <= 1.0
        assert summary.cooccurrence_probability(label_a, label_a) == 1.0

    def test_validation(self, archive):
        summary = summarize_archive(archive)
        with pytest.raises(ValidationError):
            summary.top_labels(0)
