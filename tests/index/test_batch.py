"""Batch-vs-sequential equivalence across every index backend.

The contract of the batch query engine: ``search_knn_batch`` /
``search_radius_batch`` return results *byte-identical* to looping the
single-query path, across MIH, linear-scan, and sharded backends —
including k > corpus, duplicate queries inside one batch, and indexes
mutated through the incremental ``add`` path.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import EmptyIndexError, ValidationError
from repro.index import LinearScanIndex, MultiIndexHashing, pack_bits
from repro.index.mih import _FLIP_MASK_CACHE, flip_masks
from repro.serving import ShardedHammingIndex


def random_codes(rng, n, k):
    bits = (rng.random((n, k)) < 0.5).astype(np.uint8)
    return pack_bits(bits)


def clustered_codes(rng, n, k, centers=8, max_flips=3):
    """Cluster-structured codes: neighbors exist at small radii, like the
    codes a trained hasher emits."""
    base = (rng.random((centers, k)) < 0.5).astype(np.uint8)
    rows = base[rng.integers(0, centers, n)]
    for row in range(n):
        flips = rng.integers(0, max_flips + 1)
        positions = rng.choice(k, size=flips, replace=False)
        rows[row, positions] ^= 1
    return pack_bits(rows)


def pairs(results):
    return [(r.item_id, r.distance) for r in results]


@pytest.fixture()
def corpus(rng):
    codes = clustered_codes(rng, 150, 32)
    ids = [f"p{i}" for i in range(150)]
    return ids, codes


@pytest.fixture()
def queries(corpus, rng):
    _, codes = corpus
    picks = rng.integers(0, codes.shape[0], 12)
    picks[3] = picks[0]  # duplicate queries inside one batch
    picks[7] = picks[0]
    return codes[picks]


class TestFlipMasks:
    def test_counts_and_popcounts(self):
        from math import comb
        for width, radius in [(8, 0), (8, 2), (12, 3), (5, 5)]:
            masks = flip_masks(width, radius)
            expected = sum(comb(width, i) for i in range(radius + 1))
            assert masks.shape[0] == expected
            assert masks.dtype == np.uint64
            popcounts = np.bitwise_count(masks)
            assert popcounts.max() <= radius or radius == 0
            assert (masks < (1 << width)).all()
            assert np.unique(masks).shape[0] == expected

    def test_zero_mask_first(self):
        assert flip_masks(8, 2)[0] == 0

    def test_cached_identity(self):
        _FLIP_MASK_CACHE.pop((16, 2), None)
        first = flip_masks(16, 2)
        assert flip_masks(16, 2) is first

    def test_radius_clipped_to_width(self):
        assert flip_masks(4, 99).shape[0] == 16  # all 4-bit masks

    def test_validation(self):
        with pytest.raises(ValidationError):
            flip_masks(0, 1)
        with pytest.raises(ValidationError):
            flip_masks(65, 1)
        with pytest.raises(ValidationError):
            flip_masks(8, -1)


class TestLinearScanBatch:
    def test_knn_batch_equals_loop(self, corpus, queries):
        ids, codes = corpus
        scan = LinearScanIndex(32)
        scan.build(ids, codes)
        batch = scan.search_knn_batch(queries, 7)
        for query, results in zip(queries, batch):
            assert pairs(results) == pairs(scan.search_knn(query, 7))

    def test_radius_batch_equals_loop(self, corpus, queries):
        ids, codes = corpus
        scan = LinearScanIndex(32)
        scan.build(ids, codes)
        batch = scan.search_radius_batch(queries, 4)
        for query, results in zip(queries, batch):
            assert pairs(results) == pairs(scan.search_radius(query, 4))

    def test_k_larger_than_corpus(self, corpus, queries):
        ids, codes = corpus
        scan = LinearScanIndex(32)
        scan.build(ids, codes)
        batch = scan.search_knn_batch(queries, 10_000)
        assert all(len(results) == len(ids) for results in batch)
        for query, results in zip(queries, batch):
            assert pairs(results) == pairs(scan.search_knn(query, 10_000))

    def test_validation(self, corpus, queries):
        ids, codes = corpus
        scan = LinearScanIndex(32)
        with pytest.raises(EmptyIndexError):
            scan.search_knn_batch(queries, 3)
        scan.build(ids, codes)
        with pytest.raises(ValidationError):
            scan.search_knn_batch(queries, 0)
        with pytest.raises(ValidationError):
            scan.search_radius_batch(queries, -1)
        with pytest.raises(ValidationError):
            scan.search_knn_batch(queries[0], 3)  # 1D, not a batch


class TestMIHBatch:
    def test_knn_batch_equals_loop_and_oracle(self, corpus, queries):
        ids, codes = corpus
        mih = MultiIndexHashing(32, 4)
        mih.build(ids, codes)
        scan = LinearScanIndex(32)
        scan.build(ids, codes)
        batch = mih.search_knn_batch(queries, 5)
        for query, results in zip(queries, batch):
            assert pairs(results) == pairs(mih.search_knn(query, 5))
            assert pairs(results) == pairs(scan.search_knn(query, 5))

    @pytest.mark.parametrize("radius", [0, 2, 5, 9])
    def test_radius_batch_equals_loop_and_oracle(self, corpus, queries, radius):
        ids, codes = corpus
        mih = MultiIndexHashing(32, 4)
        mih.build(ids, codes)
        scan = LinearScanIndex(32)
        scan.build(ids, codes)
        batch = mih.search_radius_batch(queries, radius)
        for query, results in zip(queries, batch):
            assert pairs(results) == pairs(mih.search_radius(query, radius))
            assert pairs(results) == pairs(scan.search_radius(query, radius))

    def test_duplicate_queries_get_identical_results(self, corpus, queries):
        ids, codes = corpus
        mih = MultiIndexHashing(32, 4)
        mih.build(ids, codes)
        batch = mih.search_knn_batch(queries, 5)
        assert pairs(batch[0]) == pairs(batch[3]) == pairs(batch[7])

    def test_k_larger_than_corpus(self, corpus, queries):
        ids, codes = corpus
        mih = MultiIndexHashing(32, 4)
        mih.build(ids, codes)
        scan = LinearScanIndex(32)
        scan.build(ids, codes)
        batch = mih.search_knn_batch(queries[:3], 10_000)
        for query, results in zip(queries[:3], batch):
            assert len(results) == len(ids)
            assert pairs(results) == pairs(scan.search_knn(query, 10_000))

    def test_max_radius_respected_in_batch(self, corpus, queries):
        ids, codes = corpus
        mih = MultiIndexHashing(32, 4)
        mih.build(ids, codes)
        batch = mih.search_knn_batch(queries, 10_000, max_radius=4)
        for query, results in zip(queries, batch):
            assert pairs(results) == pairs(
                mih.search_knn(query, 10_000, max_radius=4))
            assert all(r.distance <= 4 for r in results)

    def test_batch_with_stats(self, corpus, queries):
        ids, codes = corpus
        mih = MultiIndexHashing(32, 4)
        mih.build(ids, codes)
        batch, stats = mih.search_radius_batch(queries, 4, with_stats=True)
        assert len(stats) == len(batch)
        for results, stat in zip(batch, stats):
            assert stat.radius == 4
            assert stat.results == len(results)
            assert stat.buckets_probed > 0
            assert 0 <= stat.candidates <= len(ids)
        # Per-query stats agree with the single-query path.
        _, single = mih.search_radius(queries[0], 4, with_stats=True)
        assert stats[0].buckets_probed == single.buckets_probed
        assert stats[0].candidates == single.candidates

    def test_incremental_add_overflow_path(self, corpus, queries, rng):
        """Items added after build (CSR overflow) are found identically."""
        ids, codes = corpus
        split = 60
        mih = MultiIndexHashing(32, 4)
        mih.build(ids[:split], codes[:split])
        for row in range(split, len(ids)):
            mih.add(ids[row], codes[row])
        rebuilt = MultiIndexHashing(32, 4)
        rebuilt.build(ids, codes)
        for radius in (0, 3, 6):
            assert [pairs(r) for r in mih.search_radius_batch(queries, radius)] \
                == [pairs(r) for r in rebuilt.search_radius_batch(queries, radius)]
        assert [pairs(r) for r in mih.search_knn_batch(queries, 8)] \
            == [pairs(r) for r in rebuilt.search_knn_batch(queries, 8)]

    def test_add_compaction_threshold_crossed(self, rng):
        """Adding enough items to trigger CSR compaction keeps results exact."""
        codes = clustered_codes(rng, 400, 32)
        ids = list(range(400))
        mih = MultiIndexHashing(32, 4)
        mih.build(ids[:20], codes[:20])
        for row in range(20, 400):  # overflow threshold (64) crossed repeatedly
            mih.add(ids[row], codes[row])
        scan = LinearScanIndex(32)
        scan.build(ids, codes)
        for query in codes[:6]:
            assert pairs(mih.search_radius(query, 5)) == \
                pairs(scan.search_radius(query, 5))

    def test_knn_reaches_complement_bucket(self):
        """Regression: at layer == substring width the flip-mask layer is a
        single all-ones mask, which must still be XORed — otherwise the
        complement bucket is probed as the base bucket and the farthest
        item is silently missed."""
        codes = pack_bits(np.stack([np.zeros(8, dtype=np.uint8),
                                    np.ones(8, dtype=np.uint8)]))
        mih = MultiIndexHashing(8, 4)
        mih.build(["zero", "ones"], codes)
        assert pairs(mih.search_knn(codes[0], 2)) == [("zero", 0), ("ones", 8)]
        batch = mih.search_knn_batch(codes, 2)
        assert pairs(batch[0]) == [("zero", 0), ("ones", 8)]
        assert pairs(batch[1]) == [("ones", 0), ("zero", 8)]

    def test_degenerate_knn_falls_back_to_exact_scan(self, rng):
        """Far queries / k beyond the reachable neighborhood must finish
        (exact, oracle-identical) instead of enumerating a combinatorial
        number of buckets: uniform random 128-bit codes have no neighbors
        at small radii, which used to push the ladder into ~C(32, 12)
        flip-mask territory."""
        codes = random_codes(rng, 40, 128)
        ids = list(range(40))
        mih = MultiIndexHashing(128, 4)
        mih.build(ids, codes)
        scan = LinearScanIndex(128)
        scan.build(ids, codes)
        single = mih.search_knn(codes[0], 5)
        assert pairs(single) == pairs(scan.search_knn(codes[0], 5))
        batch = mih.search_knn_batch(codes[:3], 45)  # k > corpus
        for query, results in zip(codes[:3], batch):
            assert pairs(results) == pairs(scan.search_knn(query, 45))
        capped = mih.search_knn(codes[0], 5, max_radius=20)
        expected = [p for p in pairs(scan.search_knn(codes[0], 5))
                    if p[1] <= 20]
        assert pairs(capped) == expected

    def test_short_codes_rejected(self, rng):
        mih = MultiIndexHashing(128, 4)
        with pytest.raises(ValidationError):
            mih.build([0, 1], np.ones((2, 1), dtype=np.uint64))
        mih.build(list(range(4)), random_codes(rng, 4, 128))
        with pytest.raises(ValidationError):
            mih.search_radius(np.ones(1, dtype=np.uint64), 2)
        with pytest.raises(ValidationError):
            mih.search_knn_batch(np.ones((2, 1), dtype=np.uint64), 3)
        with pytest.raises(ValidationError):
            mih.add(9, np.ones(1, dtype=np.uint64))

    def test_empty_index_raises(self, queries):
        mih = MultiIndexHashing(32, 4)
        with pytest.raises(EmptyIndexError):
            mih.search_radius_batch(queries, 2)
        with pytest.raises(EmptyIndexError):
            mih.search_knn_batch(queries, 3)

    def test_batch_shape_validation(self, corpus):
        ids, codes = corpus
        mih = MultiIndexHashing(32, 4)
        mih.build(ids, codes)
        with pytest.raises(ValidationError):
            mih.search_radius_batch(codes[0], 2)  # 1D input
        with pytest.raises(ValidationError):
            mih.search_knn_batch(codes, 0)
        with pytest.raises(ValidationError):
            mih.search_radius_batch(codes, -1)


class TestShardedBatch:
    @pytest.mark.parametrize("backend", ["linear", "mih"])
    @pytest.mark.parametrize("num_shards", [1, 4])
    def test_knn_batch_equals_loop_and_oracle(self, corpus, queries,
                                              backend, num_shards):
        ids, codes = corpus
        scan = LinearScanIndex(32)
        scan.build(ids, codes)
        with ShardedHammingIndex(32, num_shards, backend=backend) as index:
            index.build(ids, codes)
            batch = index.search_knn_batch(queries, 6)
            for query, results in zip(queries, batch):
                assert pairs(results) == pairs(index.search_knn(query, 6))
                assert pairs(results) == pairs(scan.search_knn(query, 6))

    @pytest.mark.parametrize("backend", ["linear", "mih"])
    def test_radius_batch_equals_oracle(self, corpus, queries, backend):
        ids, codes = corpus
        scan = LinearScanIndex(32)
        scan.build(ids, codes)
        with ShardedHammingIndex(32, 3, backend=backend) as index:
            index.build(ids, codes)
            batch = index.search_radius_batch(queries, 5)
            for query, results in zip(queries, batch):
                assert pairs(results) == pairs(scan.search_radius(query, 5))

    def test_batch_shape_validation(self, corpus):
        ids, codes = corpus
        with ShardedHammingIndex(32, 2) as index:
            index.build(ids, codes)
            with pytest.raises(ValidationError):
                index.search_knn_batch(codes[0], 3)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000),
       k=st.integers(min_value=1, max_value=120),
       radius=st.integers(min_value=0, max_value=8))
def test_property_batch_equals_sequential(seed, k, radius):
    """Property: for random corpora and query batches (with duplicates),
    every backend's batch path equals its own sequential path and the
    linear-scan oracle."""
    rng = np.random.default_rng(seed)
    codes = clustered_codes(rng, 90, 48)
    ids = list(range(90))
    query_rows = rng.integers(0, 90, 6)
    query_rows[1] = query_rows[0]
    queries = codes[query_rows]

    scan = LinearScanIndex(48)
    scan.build(ids, codes)
    mih = MultiIndexHashing(48, 4)
    mih.build(ids, codes)

    oracle_knn = [pairs(scan.search_knn(q, k)) for q in queries]
    assert [pairs(r) for r in scan.search_knn_batch(queries, k)] == oracle_knn
    assert [pairs(r) for r in mih.search_knn_batch(queries, k)] == oracle_knn

    oracle_radius = [pairs(scan.search_radius(q, radius)) for q in queries]
    assert [pairs(r) for r in scan.search_radius_batch(queries, radius)] \
        == oracle_radius
    assert [pairs(r) for r in mih.search_radius_batch(queries, radius)] \
        == oracle_radius
