"""Tests for bit packing and Hamming kernels (with hypothesis properties)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ShapeError, ValidationError
from repro.index import (
    codes_allclose,
    hamming_distance,
    hamming_distances_to_query,
    pack_bits,
    pairwise_hamming,
    unpack_bits,
)
from repro.index.codes import code_to_key, key_to_code, storage_bytes
from repro.index.hamming import top_k_smallest


def random_bits(rng, n, k):
    return (rng.random((n, k)) < 0.5).astype(np.uint8)


class TestPacking:
    def test_roundtrip_128(self, rng):
        bits = random_bits(rng, 10, 128)
        packed = pack_bits(bits)
        assert packed.shape == (10, 2)
        assert packed.dtype == np.uint64
        np.testing.assert_array_equal(unpack_bits(packed, 128), bits)

    def test_roundtrip_non_word_multiple(self, rng):
        # 24 bits: packs into 3 bytes, padded to one 8-byte word.
        bits = random_bits(rng, 5, 24)
        packed = pack_bits(bits)
        assert packed.shape == (5, 1)
        np.testing.assert_array_equal(unpack_bits(packed, 24), bits)

    def test_1d_roundtrip(self, rng):
        bits = random_bits(rng, 1, 64)[0]
        packed = pack_bits(bits)
        assert packed.shape == (1,)
        np.testing.assert_array_equal(unpack_bits(packed, 64), bits)

    def test_known_value(self):
        bits = np.zeros(64, dtype=np.uint8)
        bits[0] = 1   # little-endian: lowest bit of the word
        bits[9] = 1
        packed = pack_bits(bits)
        assert packed[0] == (1 << 0) | (1 << 9)

    def test_invalid_bit_values_rejected(self):
        with pytest.raises(ValidationError):
            pack_bits(np.array([[0, 1, 2, 0, 1, 0, 1, 0]], dtype=np.uint8))

    def test_non_multiple_of_8_rejected(self):
        with pytest.raises(ValidationError):
            pack_bits(np.zeros((2, 7), dtype=np.uint8))

    def test_3d_rejected(self):
        with pytest.raises(ShapeError):
            pack_bits(np.zeros((2, 2, 8), dtype=np.uint8))

    def test_key_roundtrip(self, rng):
        code = pack_bits(random_bits(rng, 1, 128))[0]
        key = code_to_key(code)
        assert isinstance(key, bytes)
        np.testing.assert_array_equal(key_to_code(key), code)

    def test_storage_bytes(self):
        assert storage_bytes(1000, 128) == 1000 * 16
        assert storage_bytes(1000, 64) == 1000 * 8
        # Padding: 24 bits still needs one word.
        assert storage_bytes(10, 24) == 10 * 8
        with pytest.raises(ValidationError):
            storage_bytes(-1, 64)

    def test_codes_allclose(self, rng):
        a = pack_bits(random_bits(rng, 3, 64))
        assert codes_allclose(a, a.copy())
        b = a.copy()
        b[0, 0] ^= np.uint64(1)
        assert not codes_allclose(a, b)


class TestHammingDistance:
    def test_identical_codes(self, rng):
        code = pack_bits(random_bits(rng, 1, 128))[0]
        assert hamming_distance(code, code) == 0

    def test_single_bit_flip(self, rng):
        bits = random_bits(rng, 1, 128)[0]
        flipped = bits.copy()
        flipped[77] ^= 1
        assert hamming_distance(pack_bits(bits), pack_bits(flipped)) == 1

    def test_complement_distance(self):
        zeros = np.zeros(128, dtype=np.uint8)
        ones = np.ones(128, dtype=np.uint8)
        assert hamming_distance(pack_bits(zeros), pack_bits(ones)) == 128

    def test_matches_bit_level_xor(self, rng):
        a = random_bits(rng, 1, 96)[0]
        b = random_bits(rng, 1, 96)[0]
        expected = int((a != b).sum())
        assert hamming_distance(pack_bits(a), pack_bits(b)) == expected

    def test_distances_to_query(self, rng):
        bits = random_bits(rng, 50, 128)
        packed = pack_bits(bits)
        query = packed[7]
        distances = hamming_distances_to_query(packed, query)
        assert distances.shape == (50,)
        assert distances[7] == 0
        expected = (bits != bits[7]).sum(axis=1)
        np.testing.assert_array_equal(distances, expected)

    def test_pairwise_symmetric_zero_diagonal(self, rng):
        packed = pack_bits(random_bits(rng, 20, 64))
        matrix = pairwise_hamming(packed)
        np.testing.assert_array_equal(matrix, matrix.T)
        assert (np.diag(matrix) == 0).all()

    def test_pairwise_two_sets(self, rng):
        a = pack_bits(random_bits(rng, 4, 64))
        b = pack_bits(random_bits(rng, 6, 64))
        matrix = pairwise_hamming(a, b)
        assert matrix.shape == (4, 6)
        assert matrix[2, 3] == hamming_distance(a[2], b[3])

    def test_shape_validation(self, rng):
        a = pack_bits(random_bits(rng, 2, 64))
        with pytest.raises(ShapeError):
            hamming_distance(a, a)  # 2D input to the scalar kernel


class TestTopK:
    def test_exact_selection(self):
        distances = np.array([5, 1, 3, 1, 9, 0])
        top = top_k_smallest(distances, 3)
        assert list(top) == [5, 1, 3]  # d=0, then d=1 ties by index

    def test_k_larger_than_n(self):
        top = top_k_smallest(np.array([2, 1]), 10)
        assert list(top) == [1, 0]

    def test_k_zero(self):
        assert top_k_smallest(np.array([1, 2]), 0).size == 0

    def test_deterministic_tie_break(self):
        distances = np.array([1, 1, 1, 1])
        assert list(top_k_smallest(distances, 2)) == [0, 1]


@settings(max_examples=50)
@given(
    n=st.integers(min_value=1, max_value=20),
    k=st.sampled_from([8, 16, 64, 128, 200]),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_pack_unpack_involution(n, k, seed):
    rng = np.random.default_rng(seed)
    bits = random_bits(rng, n, k)
    np.testing.assert_array_equal(unpack_bits(pack_bits(bits), k), bits)


@settings(max_examples=50)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_property_hamming_metric_axioms(seed):
    rng = np.random.default_rng(seed)
    bits = random_bits(rng, 3, 64)
    a, b, c = pack_bits(bits)
    dab = hamming_distance(a, b)
    dba = hamming_distance(b, a)
    dac = hamming_distance(a, c)
    dbc = hamming_distance(b, c)
    assert dab == dba                       # symmetry
    assert hamming_distance(a, a) == 0      # identity
    assert dac <= dab + dbc                 # triangle inequality
