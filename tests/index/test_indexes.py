"""Tests for HashTableIndex, MultiIndexHashing, and LinearScanIndex.

The central invariant: all three index types return *identical* result sets
for the same radius/kNN query — they differ only in cost.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import EmptyIndexError, SearchError, ValidationError
from repro.index import (
    HashTableIndex,
    LinearScanIndex,
    MultiIndexHashing,
    pack_bits,
)


def random_codes(rng, n, k):
    bits = (rng.random((n, k)) < 0.5).astype(np.uint8)
    return pack_bits(bits)


@pytest.fixture()
def small_setup(rng):
    codes = random_codes(rng, 200, 32)
    ids = [f"p{i}" for i in range(200)]
    return ids, codes


def build_all(ids, codes, num_bits, tables=4):
    table = HashTableIndex(num_bits)
    table.add_many(ids, codes)
    mih = MultiIndexHashing(num_bits, tables)
    mih.build(ids, codes)
    scan = LinearScanIndex(num_bits)
    scan.build(ids, codes)
    return table, mih, scan


class TestHashTable:
    def test_exact_bucket(self, small_setup):
        ids, codes = small_setup
        index = HashTableIndex(32)
        index.add_many(ids, codes)
        assert "p3" in index.bucket_of(codes[3])

    def test_radius_zero_is_bucket_lookup(self, small_setup):
        ids, codes = small_setup
        index = HashTableIndex(32)
        index.add_many(ids, codes)
        results = index.search_radius(codes[0], 0)
        assert any(r.item_id == "p0" and r.distance == 0 for r in results)

    def test_results_sorted_by_distance(self, small_setup):
        ids, codes = small_setup
        index = HashTableIndex(32)
        index.add_many(ids, codes)
        results = index.search_radius(codes[0], 3)
        distances = [r.distance for r in results]
        assert distances == sorted(distances)

    def test_with_stats(self, small_setup):
        ids, codes = small_setup
        index = HashTableIndex(32)
        index.add_many(ids, codes)
        results, stats = index.search_radius(codes[0], 2, with_stats=True)
        assert stats.radius == 2
        # 1 + C(32,1) + C(32,2) buckets probed
        assert stats.buckets_probed == 1 + 32 + 32 * 31 // 2
        assert stats.results == len(results)

    def test_large_radius_on_long_codes_rejected(self, rng):
        index = HashTableIndex(128)
        index.add_many(["a"], random_codes(rng, 1, 128))
        with pytest.raises(SearchError):
            index.search_radius(random_codes(rng, 1, 128)[0], 4)

    def test_empty_index_raises(self, rng):
        index = HashTableIndex(32)
        with pytest.raises(EmptyIndexError):
            index.search_radius(random_codes(rng, 1, 32)[0], 1)

    def test_knn_grows_radius(self, rng):
        # Clustered codes: 20 copies of one base code with <=1 bit flipped,
        # so kNN terminates within radius 1.
        bits = np.tile((rng.random(32) < 0.5).astype(np.uint8), (20, 1))
        for row in range(1, 20):
            bits[row, row % 32] ^= 1
        codes = pack_bits(bits)
        index = HashTableIndex(32)
        index.add_many([f"p{i}" for i in range(20)], codes)
        results = index.search_knn(codes[0], 5)
        assert len(results) == 5
        assert results[0].item_id == "p0" and results[0].distance == 0
        assert all(r.distance <= 1 for r in results)

    def test_knn_probe_budget_enforced(self, small_setup):
        # Uniform random 32-bit codes: neighbors are far, enumeration cost
        # explodes, and the budget must abort instead of stalling.
        ids, codes = small_setup
        index = HashTableIndex(32)
        index.add_many(ids, codes)
        with pytest.raises(SearchError):
            index.search_knn(codes[0], 5, max_probes=10_000)

    def test_num_buckets(self, rng):
        index = HashTableIndex(16)
        bits = np.zeros((5, 16), dtype=np.uint8)
        bits[2:, 0] = 1  # two distinct codes
        index.add_many(list("abcde"), pack_bits(bits))
        assert index.num_buckets == 2
        assert len(index) == 5

    def test_misaligned_inputs_rejected(self, rng):
        index = HashTableIndex(32)
        with pytest.raises(ValidationError):
            index.add_many(["a", "b"], random_codes(rng, 3, 32))


class TestMultiIndexHashing:
    def test_substring_spans_partition_bits(self):
        mih = MultiIndexHashing(128, 4)
        spans = mih.substring_spans
        assert spans[0][0] == 0 and spans[-1][1] == 128
        total = sum(stop - start for start, stop in spans)
        assert total == 128

    def test_uneven_split(self):
        mih = MultiIndexHashing(40, 3)
        sizes = [stop - start for start, stop in mih.substring_spans]
        assert sorted(sizes) == [13, 13, 14]

    def test_agrees_with_linear_scan_radius(self, small_setup):
        ids, codes = small_setup
        _, mih, scan = build_all(ids, codes, 32)
        for radius in (0, 2, 5, 8):
            expected = {(r.item_id, r.distance) for r in scan.search_radius(codes[5], radius)}
            actual = {(r.item_id, r.distance) for r in mih.search_radius(codes[5], radius)}
            assert actual == expected, f"radius {radius}"

    def test_knn_matches_scan(self, small_setup):
        ids, codes = small_setup
        _, mih, scan = build_all(ids, codes, 32)
        expected = [(r.item_id, r.distance) for r in scan.search_knn(codes[9], 10)]
        actual = [(r.item_id, r.distance) for r in mih.search_knn(codes[9], 10)]
        assert actual == expected

    def test_stats_candidates_bounded_by_items(self, small_setup):
        ids, codes = small_setup
        mih = MultiIndexHashing(32, 4)
        mih.build(ids, codes)
        _, stats = mih.search_radius(codes[0], 6, with_stats=True)
        assert 0 < stats.candidates <= len(ids)

    def test_empty_raises(self, rng):
        mih = MultiIndexHashing(32, 4)
        with pytest.raises(EmptyIndexError):
            mih.search_radius(random_codes(rng, 1, 32)[0], 1)

    def test_invalid_table_count(self):
        with pytest.raises(ValidationError):
            MultiIndexHashing(32, 0)
        with pytest.raises(ValidationError):
            MultiIndexHashing(32, 64)


class TestLinearScan:
    def test_radius_search(self, small_setup):
        ids, codes = small_setup
        scan = LinearScanIndex(32)
        scan.build(ids, codes)
        results = scan.search_radius(codes[0], 0)
        assert any(r.item_id == "p0" for r in results)

    def test_knn_exact_and_sorted(self, small_setup):
        ids, codes = small_setup
        scan = LinearScanIndex(32)
        scan.build(ids, codes)
        results = scan.search_knn(codes[0], 7)
        assert len(results) == 7
        distances = [r.distance for r in results]
        assert distances == sorted(distances)
        assert results[0].item_id == "p0"

    def test_validation(self, rng):
        scan = LinearScanIndex(32)
        with pytest.raises(EmptyIndexError):
            scan.search_knn(random_codes(rng, 1, 32)[0], 3)
        scan.build(["a"], random_codes(rng, 1, 32))
        with pytest.raises(ValidationError):
            scan.search_knn(random_codes(rng, 1, 32)[0], 0)
        with pytest.raises(ValidationError):
            scan.search_radius(random_codes(rng, 1, 32)[0], -1)


class TestCrossIndexAgreement:
    """The load-bearing invariant: all three structures are exact."""

    def test_all_agree_radius_2_on_128_bits(self, rng):
        codes = random_codes(rng, 300, 128)
        ids = list(range(300))
        table, mih, scan = build_all(ids, codes, 128)
        query = codes[17]
        expected = {(r.item_id, r.distance) for r in scan.search_radius(query, 2)}
        assert {(r.item_id, r.distance) for r in table.search_radius(query, 2)} == expected
        assert {(r.item_id, r.distance) for r in mih.search_radius(query, 2)} == expected

    def test_all_agree_on_clustered_codes(self, rng):
        # Clustered data: many near-duplicate codes stress bucket logic.
        base = (rng.random((10, 64)) < 0.5).astype(np.uint8)
        noisy = np.repeat(base, 30, axis=0)
        flips = rng.integers(0, 64, size=noisy.shape[0])
        for row, flip in enumerate(flips):
            if row % 3:
                noisy[row, flip] ^= 1
        codes = pack_bits(noisy)
        ids = list(range(len(noisy)))
        table, mih, scan = build_all(ids, codes, 64)
        query = codes[0]
        expected = {(r.item_id, r.distance) for r in scan.search_radius(query, 2)}
        assert {(r.item_id, r.distance) for r in table.search_radius(query, 2)} == expected
        assert {(r.item_id, r.distance) for r in mih.search_radius(query, 2)} == expected


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000),
       radius=st.integers(min_value=0, max_value=10))
def test_property_mih_equals_scan(seed, radius):
    rng = np.random.default_rng(seed)
    codes = random_codes(rng, 80, 48)
    ids = list(range(80))
    mih = MultiIndexHashing(48, 4)
    mih.build(ids, codes)
    scan = LinearScanIndex(48)
    scan.build(ids, codes)
    query = codes[int(rng.integers(80))]
    expected = {(r.item_id, r.distance) for r in scan.search_radius(query, radius)}
    actual = {(r.item_id, r.distance) for r in mih.search_radius(query, radius)}
    assert actual == expected


class TestChunkedPairwise:
    """pairwise_hamming(chunk_rows=...) must equal the unchunked matrix."""

    def test_chunked_equals_unchunked(self, rng):
        from repro.index import pairwise_hamming
        a = random_codes(rng, 37, 64)
        b = random_codes(rng, 53, 64)
        full = pairwise_hamming(a, b)
        for chunk in (1, 5, 36, 37, 1000):
            assert (pairwise_hamming(a, b, chunk_rows=chunk) == full).all()

    def test_chunked_self_distance(self, rng):
        from repro.index import pairwise_hamming
        a = random_codes(rng, 21, 32)
        assert (pairwise_hamming(a, chunk_rows=4) == pairwise_hamming(a)).all()

    def test_chunk_rows_must_be_positive(self, rng):
        from repro.errors import ShapeError
        from repro.index import pairwise_hamming
        a = random_codes(rng, 4, 32)
        with pytest.raises(ShapeError):
            pairwise_hamming(a, chunk_rows=0)
