"""Mutable-corpus lifecycle at the index tier: tombstones + compaction.

The oracle discipline for deletion: after ANY interleaving of build / add /
remove / compact, every search path must be byte-identical to an index
rebuilt from scratch on the surviving corpus.  Tombstoning preserves the
relative order of surviving rows, so the canonical (distance, insertion
row) tie-break is unchanged — these tests enforce exactly that, across
backends, query kinds, and filters.
"""

import numpy as np
import pytest

from repro.errors import EmptyIndexError, ValidationError
from repro.index import LinearScanIndex, MultiIndexHashing
from repro.index.hamming import combine_allowed_masks
from repro.serving.sharding import CodeQuery, ShardedHammingIndex

NUM_BITS = 64
WORDS = 1
N = 160


def make_codes(rng, n=N):
    return rng.integers(0, np.iinfo(np.uint64).max, size=(n, WORDS),
                        dtype=np.uint64)


def build(backend: str, ids, codes):
    if backend == "linear":
        index = LinearScanIndex(NUM_BITS)
    elif backend == "mih":
        index = MultiIndexHashing(NUM_BITS, 4)
    else:
        index = ShardedHammingIndex(NUM_BITS, 3, backend="linear")
    index.build(ids, codes)
    return index


def knn(backend, index, code, k):
    if backend == "sharded":
        results = index.search_batch([CodeQuery(code=code, k=k)])[0]
    else:
        results = index.search_knn(code, k)
    return [(r.item_id, r.distance) for r in results]


def radius(backend, index, code, r):
    if backend == "sharded":
        results = index.search_batch([CodeQuery(code=code, radius=r)])[0]
    else:
        results = index.search_radius(code, r)
    return [(r_.item_id, r_.distance) for r_ in results]


BACKENDS = ["linear", "mih", "sharded"]


class TestCombineAllowedMasks:
    def test_none_passthrough(self):
        mask = np.array([True, False, True])
        assert combine_allowed_masks(None, None) is None
        assert combine_allowed_masks(mask, None) is mask
        assert combine_allowed_masks(None, mask) is mask

    def test_and_of_overlap_truncates_to_shorter(self):
        first = np.array([True, True, False, True])
        second = np.array([True, False, True])
        combined = combine_allowed_masks(first, second)
        assert combined.tolist() == [True, False, False]


@pytest.mark.parametrize("backend", BACKENDS)
class TestTombstoneOracle:
    def test_removed_items_never_surface(self, backend, rng):
        codes = make_codes(rng)
        ids = [f"p{i}" for i in range(N)]
        index = build(backend, ids, codes)
        dead = {f"p{i}" for i in rng.choice(N, size=40, replace=False)}
        for name in dead:
            index.remove(name)
        for q in range(0, N, 17):
            for name, _ in knn(backend, index, codes[q], 25):
                assert name not in dead
            for name, _ in radius(backend, index, codes[q], NUM_BITS):
                assert name not in dead

    def test_knn_and_radius_match_rebuilt_index(self, backend, rng):
        codes = make_codes(rng)
        ids = [f"p{i}" for i in range(N)]
        index = build(backend, ids, codes)
        dead_rows = set(rng.choice(N, size=70, replace=False).tolist())
        for row in dead_rows:
            index.remove(ids[row])
        alive = [row for row in range(N) if row not in dead_rows]
        oracle = build(backend, [ids[row] for row in alive], codes[alive])
        for q in range(0, N, 13):
            assert knn(backend, index, codes[q], 11) == \
                knn(backend, oracle, codes[q], 11)
            assert radius(backend, index, codes[q], 12) == \
                radius(backend, oracle, codes[q], 12)

    def test_compaction_is_result_neutral(self, backend, rng):
        codes = make_codes(rng)
        ids = [f"p{i}" for i in range(N)]
        index = build(backend, ids, codes)
        for row in rng.choice(N, size=55, replace=False):
            index.remove(ids[int(row)])
        before = [knn(backend, index, codes[q], 9) for q in range(0, N, 19)]
        assert index.dead_count == 55
        index.compact()
        assert index.dead_count == 0
        assert len(index) == N - 55
        after = [knn(backend, index, codes[q], 9) for q in range(0, N, 19)]
        assert before == after

    def test_interleaved_add_remove_matches_rebuild(self, backend, rng):
        codes = make_codes(rng, 80)
        extra = make_codes(rng, 60)
        index = build(backend, [f"p{i}" for i in range(80)], codes[:80])
        surviving: dict = {f"p{i}": codes[i] for i in range(80)}
        order: list = [f"p{i}" for i in range(80)]
        for step in range(60):
            if step % 3 == 0 and len(surviving) > 5:
                victim = order[int(rng.integers(len(order)))]
                while victim not in surviving:
                    victim = order[int(rng.integers(len(order)))]
                index.remove(victim)
                del surviving[victim]
            else:
                name = f"new{step}"
                index.add(name, extra[step])
                surviving[name] = extra[step]
                order.append(name)
            if step % 20 == 10:
                index.compact()
        alive_ids = [name for name in order if name in surviving]
        oracle = build(backend, alive_ids,
                       np.stack([surviving[name] for name in alive_ids]))
        for q in range(0, 60, 7):
            assert knn(backend, index, extra[q], 13) == \
                knn(backend, oracle, extra[q], 13)

    def test_filter_masks_and_with_tombstones(self, backend, rng):
        codes = make_codes(rng)
        ids = [f"p{i}" for i in range(N)]
        index = build(backend, ids, codes)
        dead_rows = set(rng.choice(N, size=30, replace=False).tolist())
        for row in dead_rows:
            index.remove(ids[row])
        mask = np.zeros(N, dtype=bool)
        mask[rng.choice(N, size=90, replace=False)] = True
        # The filter deliberately allows some dead rows: they must still
        # never surface.
        allowed_alive = [row for row in range(N)
                         if mask[row] and row not in dead_rows]
        oracle = build(backend, [ids[row] for row in allowed_alive],
                       codes[allowed_alive])
        for q in range(0, N, 23):
            if backend == "sharded":
                got = [(r.item_id, r.distance) for r in index.search_batch(
                    [CodeQuery(code=codes[q], k=15, allowed=mask)])[0]]
            else:
                got = [(r.item_id, r.distance)
                       for r in index.search_knn(codes[q], 15, allowed=mask)]
            assert got == knn(backend, oracle, codes[q], 15)


@pytest.mark.parametrize("backend", BACKENDS)
class TestLifecycleEdges:
    def test_remove_unknown_raises(self, backend, rng):
        index = build(backend, ["a", "b"], make_codes(rng, 2))
        with pytest.raises(ValidationError):
            index.remove("zzz")

    def test_double_remove_raises(self, backend, rng):
        index = build(backend, ["a", "b", "c"], make_codes(rng, 3))
        index.remove("b")
        with pytest.raises(ValidationError):
            index.remove("b")

    def test_all_dead_searches_like_empty(self, backend, rng):
        codes = make_codes(rng, 4)
        index = build(backend, list("abcd"), codes)
        for name in "abcd":
            index.remove(name)
        assert len(index) == 0
        with pytest.raises(EmptyIndexError):
            knn(backend, index, codes[0], 3)

    def test_dead_accounting_and_default_policy(self, backend, rng):
        index = build(backend, [f"p{i}" for i in range(100)],
                      make_codes(rng, 100))
        assert index.dead_count == 0 and index.dead_fraction == 0.0
        assert not index.compact_due()
        for i in range(30):
            index.remove(f"p{i}")
        assert index.dead_count == 30
        assert index.dead_fraction == pytest.approx(0.3)
        # Standalone threshold is max(64, 25% of rows) = 64: not due yet.
        assert not index.compact_due()

    def test_build_clears_tombstones(self, backend, rng):
        codes = make_codes(rng, 6)
        index = build(backend, list("abcdef"), codes)
        index.remove("c")
        index.build(list("abcdef"), codes)
        assert index.dead_count == 0
        assert len(index) == 6
        assert ("c", 0) in knn(backend, index, codes[2], 1)


class TestMIHTombstonesWithOverflow:
    def test_remove_of_pending_added_item(self, rng):
        codes = make_codes(rng, 40)
        extra = make_codes(rng, 10)
        index = MultiIndexHashing(NUM_BITS, 4)
        index.build([f"p{i}" for i in range(40)], codes)
        for i in range(10):
            index.add(f"new{i}", extra[i])
        index.remove("new3")
        index.remove("p7")
        alive_ids = [f"p{i}" for i in range(40) if i != 7] + \
            [f"new{i}" for i in range(10) if i != 3]
        alive_codes = np.vstack([codes[[i for i in range(40) if i != 7]],
                                 extra[[i for i in range(10) if i != 3]]])
        oracle = MultiIndexHashing(NUM_BITS, 4)
        oracle.build(alive_ids, alive_codes)
        for q in range(10):
            got = [(r.item_id, r.distance)
                   for r in index.search_knn(extra[q], 12)]
            want = [(r.item_id, r.distance)
                    for r in oracle.search_knn(extra[q], 12)]
            assert got == want

    def test_batch_queries_respect_tombstones(self, rng):
        codes = make_codes(rng, 60)
        index = MultiIndexHashing(NUM_BITS, 4)
        index.build([f"p{i}" for i in range(60)], codes)
        for i in range(0, 60, 5):
            index.remove(f"p{i}")
        batch = index.search_knn_batch(codes[:8], 10)
        single = [index.search_knn(codes[q], 10) for q in range(8)]
        assert [[(r.item_id, r.distance) for r in results]
                for results in batch] == \
            [[(r.item_id, r.distance) for r in results] for results in single]
        dead = {f"p{i}" for i in range(0, 60, 5)}
        for results in batch:
            assert all(r.item_id not in dead for r in results)
