"""Tests for the query workload generator."""

import pytest

from repro.earthqube import LabelOperator
from repro.errors import ValidationError
from repro.geo import Circle, Rectangle
from repro.workloads import QueryWorkloadGenerator


class TestWorkloadGenerator:
    def test_deterministic_given_seed(self):
        a = QueryWorkloadGenerator(seed=4).batch(5, "label")
        b = QueryWorkloadGenerator(seed=4).batch(5, "label")
        assert [q.labels for q in a] == [q.labels for q in b]

    def test_spatial_queries_have_shapes(self):
        gen = QueryWorkloadGenerator(seed=0)
        for query in gen.batch(10, "spatial"):
            assert isinstance(query.shape, (Rectangle, Circle))
            assert query.labels is None

    def test_label_queries_valid(self):
        gen = QueryWorkloadGenerator(seed=1)
        for query in gen.batch(10, "label"):
            assert query.labels is not None
            assert 1 <= len(query.labels) <= 3
            assert isinstance(query.label_operator, LabelOperator)

    def test_mixed_queries_cover_panel(self):
        gen = QueryWorkloadGenerator(seed=2)
        queries = gen.batch(20, "mixed")
        assert all(q.shape is not None for q in queries)
        assert any(q.labels is not None for q in queries)
        assert all(q.date_from == "2017-06-01" for q in queries)

    def test_random_rectangle_within_bounds(self):
        gen = QueryWorkloadGenerator(seed=3)
        for _ in range(10):
            rect = gen.random_rectangle(max_extent_deg=2.0)
            assert rect.box.width <= 2.0 + 1e-9

    def test_random_labels_count(self):
        gen = QueryWorkloadGenerator(seed=5)
        labels = gen.random_labels(count=2)
        assert len(labels) == 2

    def test_validation(self):
        gen = QueryWorkloadGenerator(seed=0)
        with pytest.raises(ValidationError):
            gen.batch(0)
        with pytest.raises(ValidationError):
            gen.batch(3, "weird")
        with pytest.raises(ValidationError):
            gen.random_rectangle(max_extent_deg=0)

    def test_generated_queries_run_against_system(self, system):
        gen = QueryWorkloadGenerator(seed=9)
        for query in gen.batch(6, "mixed"):
            response = system.search(query)
            assert response.total_matches >= 0
