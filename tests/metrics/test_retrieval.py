"""Tests for the retrieval metrics."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ShapeError, ValidationError
from repro.metrics import (
    average_cumulative_gain,
    mean_average_precision,
    ndcg_at_k,
    precision_at_k,
    recall_at_k,
    weighted_average_precision,
)


class TestPrecisionRecall:
    def test_precision_values(self):
        rel = np.array([1, 1, 0, 1, 0])
        assert precision_at_k(rel, 1) == 1.0
        assert precision_at_k(rel, 3) == pytest.approx(2 / 3)
        assert precision_at_k(rel, 5) == pytest.approx(3 / 5)

    def test_precision_k_beyond_length(self):
        assert precision_at_k(np.array([1, 0]), 10) == 0.5

    def test_precision_k_validation(self):
        with pytest.raises(ValidationError):
            precision_at_k(np.array([1.0]), 0)
        with pytest.raises(ShapeError):
            precision_at_k(np.ones((2, 2)), 1)

    def test_recall_values(self):
        rel = np.array([1, 0, 1, 0, 0])
        assert recall_at_k(rel, 1, total_relevant=4) == pytest.approx(0.25)
        assert recall_at_k(rel, 5, total_relevant=4) == pytest.approx(0.5)

    def test_recall_zero_relevant(self):
        assert recall_at_k(np.array([0, 0]), 2, total_relevant=0) == 0.0

    def test_recall_validation(self):
        with pytest.raises(ValidationError):
            recall_at_k(np.array([1.0]), 1, total_relevant=-1)


class TestMAP:
    def test_perfect_ranking(self):
        assert mean_average_precision([np.array([1, 1, 0, 0])]) == 1.0

    def test_worst_ranking(self):
        score = mean_average_precision([np.array([0, 0, 1])])
        assert score == pytest.approx(1 / 3)

    def test_known_value(self):
        # hits at ranks 1 and 3: AP = (1/1 + 2/3) / 2
        score = mean_average_precision([np.array([1, 0, 1, 0])])
        assert score == pytest.approx((1.0 + 2 / 3) / 2)

    def test_multiple_queries_averaged(self):
        q1 = np.array([1, 0])   # AP = 1.0
        q2 = np.array([0, 1])   # AP = 0.5
        assert mean_average_precision([q1, q2]) == pytest.approx(0.75)

    def test_no_relevant_contributes_zero(self):
        assert mean_average_precision([np.array([0, 0, 0])]) == 0.0

    def test_at_k_cutoff(self):
        rel = np.array([0, 0, 0, 1])
        assert mean_average_precision([rel], k=3) == 0.0
        assert mean_average_precision([rel], k=4) == pytest.approx(0.25)

    def test_empty_queries_rejected(self):
        with pytest.raises(ValidationError):
            mean_average_precision([])


class TestGradedMetrics:
    def test_acg(self):
        rel = np.array([1.0, 0.5, 0.0, 0.0])
        assert average_cumulative_gain(rel, 2) == pytest.approx(0.75)

    def test_ndcg_perfect_order_is_one(self):
        rel = np.array([1.0, 0.8, 0.3, 0.0])
        assert ndcg_at_k(rel, 4) == pytest.approx(1.0)

    def test_ndcg_penalizes_bad_order(self):
        good = np.array([1.0, 0.5, 0.0])
        bad = np.array([0.0, 0.5, 1.0])
        assert ndcg_at_k(bad, 3) < ndcg_at_k(good, 3)

    def test_ndcg_no_relevance_zero(self):
        assert ndcg_at_k(np.zeros(5), 5) == 0.0

    def test_wap_rewards_graded_prefix(self):
        high = weighted_average_precision(np.array([1.0, 1.0, 0.0]))
        low = weighted_average_precision(np.array([0.2, 0.2, 0.0]))
        assert high > low

    def test_wap_no_hits_zero(self):
        assert weighted_average_precision(np.zeros(4)) == 0.0


@given(st.lists(st.sampled_from([0.0, 0.5, 1.0]), min_size=1, max_size=20))
def test_property_metrics_bounded(rel):
    rel = np.array(rel)
    k = len(rel)
    assert 0.0 <= precision_at_k(rel, k) <= 1.0
    assert 0.0 <= ndcg_at_k(rel, k) <= 1.0 + 1e-9
    assert 0.0 <= mean_average_precision([rel]) <= 1.0


@given(st.lists(st.sampled_from([0.0, 1.0]), min_size=2, max_size=15))
def test_property_sorting_relevances_maximizes_map(rel):
    rel = np.array(rel)
    sorted_rel = np.sort(rel)[::-1]
    assert mean_average_precision([sorted_rel]) >= mean_average_precision([rel]) - 1e-12
