"""Acceptance: a 1-node federation is byte-identical to the direct path.

Checked against both node flavours — one with its serving tier (cache,
micro-batcher, shards) enabled and one on the direct CBIR path — for
``search``, ``similar_images``, ``similar_images_batch``, and
``statistics_for``.
"""

from __future__ import annotations

import pytest

from repro.earthqube import QuerySpec
from repro.federation import FederatedEarthQube


@pytest.fixture(params=["gateway", "direct"])
def single(request, node_a, node_b):
    """(federation-of-one, the node it wraps) for both node flavours."""
    system = node_a if request.param == "gateway" else node_b
    federation = FederatedEarthQube({"solo": system})
    yield federation, system
    federation.close()


def test_search_match_all(single):
    federation, system = single
    spec = QuerySpec()
    assert federation.search(spec).value == system.search(spec)


def test_search_filtered_and_paginated(single):
    federation, system = single
    for spec in (QuerySpec(seasons=("Summer",)),
                 QuerySpec(limit=7),
                 QuerySpec(limit=5, skip=3),
                 QuerySpec(satellites=("S2",), limit=4, skip=1)):
        federated = federation.search(spec)
        assert federated.value == system.search(spec)
        assert federated.meta.complete


def test_similar_images_knn(single):
    federation, system = single
    for name in system.archive.names[:5]:
        assert (federation.similar_images(name, k=7).value
                == system.similar_images(name, k=7))


def test_similar_images_radius(single):
    federation, system = single
    name = system.archive.names[0]
    for radius in (0, 2, 5):
        assert (federation.similar_images(name, k=None, radius=radius).value
                == system.similar_images(name, k=None, radius=radius))


def test_similar_images_default_radius(single):
    federation, system = single
    name = system.archive.names[1]
    assert (federation.similar_images(name, k=None).value
            == system.similar_images(name, k=None))


def test_similar_images_batch(single):
    federation, system = single
    names = system.archive.names[:8]
    assert (federation.similar_images_batch(names, k=5).value
            == system.similar_images_batch(names, k=5))
    assert (federation.similar_images_batch(names, k=None, radius=2).value
            == system.similar_images_batch(names, k=None, radius=2))


def test_similar_images_batch_with_duplicates(single):
    federation, system = single
    names = [system.archive.names[0]] * 3 + system.archive.names[:2]
    assert (federation.similar_images_batch(names, k=4).value
            == system.similar_images_batch(names, k=4))


def test_k_larger_than_corpus(single):
    federation, system = single
    name = system.archive.names[0]
    k = len(system.archive) + 10
    assert (federation.similar_images(name, k=k).value
            == system.similar_images(name, k=k))


def test_statistics_for(single):
    federation, system = single
    names = system.archive.names[:10]
    assert federation.statistics_for(names).value == system.statistics_for(names)


def test_namespaced_name_also_resolves(single):
    """``solo/name`` routes to the node; with one node the response still
    uses the bare id (auto namespacing is off), so it stays identical."""
    federation, system = single
    name = system.archive.names[2]
    assert (federation.similar_images(f"solo/{name}", k=5).value
            == system.similar_images(name, k=5))
