"""Unit tests for deterministic cross-node merging (no bootstrap needed)."""

from __future__ import annotations

from repro.earthqube.search import SearchResponse
from repro.earthqube.statistics import LabelBar, LabelStatistics
from repro.federation.merge import (
    merge_search,
    merge_similarity,
    merge_statistics,
    namespaced_id,
    split_namespaced,
)
from repro.index.results import SearchResult


def results(*pairs):
    return [SearchResult(item_id, distance) for item_id, distance in pairs]


class TestNamespacing:
    def test_round_trip(self):
        assert namespaced_id("north", "patch_1") == "north/patch_1"
        assert split_namespaced("north/patch_1") == ("north", "patch_1")

    def test_bare_name(self):
        assert split_namespaced("patch_1") == (None, "patch_1")

    def test_only_first_separator_splits(self):
        assert split_namespaced("a/b/c") == ("a", "b/c")


class TestMergeSimilarity:
    def test_single_node_is_identity(self):
        ranked = results(("x", 0), ("y", 1), ("z", 3))
        merged, used = merge_similarity([("a", ranked, 3)], k=3)
        assert merged == ranked
        assert merged[0] is ranked[0]  # not even copied
        assert used == 3

    def test_equal_distances_keep_node_order(self):
        a = results(("a1", 1), ("a2", 2))
        b = results(("b1", 1), ("b2", 2))
        merged, _ = merge_similarity([("a", a, 2), ("b", b, 2)], k=4)
        assert [r.item_id for r in merged] == ["a1", "b1", "a2", "b2"]

    def test_knn_truncation_and_used_radius(self):
        a = results(("a1", 0), ("a2", 5))
        b = results(("b1", 1), ("b2", 2))
        merged, used = merge_similarity([("a", a, 5), ("b", b, 2)], k=3)
        assert [r.item_id for r in merged] == ["a1", "b1", "b2"]
        assert used == 2  # distance of the last kept result

    def test_radius_keeps_everything(self):
        a = results(("a1", 0), ("a2", 2))
        b = results(("b1", 1))
        merged, used = merge_similarity([("a", a, 2), ("b", b, 2)],
                                        k=1, radius=2)
        assert len(merged) == 3
        assert used == 2

    def test_namespace_disambiguates_duplicates(self):
        a = results(("same_name", 1))
        b = results(("same_name", 1))
        merged, _ = merge_similarity([("a", a, 1), ("b", b, 1)],
                                     k=2, namespace=True)
        assert [r.item_id for r in merged] == ["a/same_name", "b/same_name"]

    def test_empty_inputs(self):
        merged, used = merge_similarity([], k=5)
        assert merged == [] and used == 0


class TestMergeSimilarityDedupe:
    """Replica answers repeat the same patches; dedupe collapses them."""

    def test_duplicate_ids_collapse_to_one(self):
        a = results(("p", 1), ("q", 2))
        b = results(("p", 1), ("q", 2))
        merged, used = merge_similarity([("a", a, 2), ("b", b, 2)],
                                        k=4, dedupe=True)
        assert [r.item_id for r in merged] == ["p", "q"]
        assert used == 2

    def test_first_occurrence_wins(self):
        # A stale replica reports a different distance for the same patch;
        # dedupe keeps the first occurrence in merge order.
        a = results(("p", 1))
        b = results(("p", 3))
        merged, _ = merge_similarity([("a", a, 1), ("b", b, 3)],
                                     k=2, dedupe=True)
        assert len(merged) == 1
        assert merged[0].distance == 1

    def test_order_of_breaks_distance_ties(self):
        # Global insertion sequence, not node order, decides ties: "new"
        # was inserted federation-wide before "old" despite node order.
        seq = {"old": 7, "new": 3}
        a = results(("old", 2))
        b = results(("new", 2))
        merged, _ = merge_similarity(
            [("a", a, 2), ("b", b, 2)], k=2, dedupe=True,
            order_of=lambda item: (0, seq[item]))
        assert [r.item_id for r in merged] == ["new", "old"]

    def test_truncation_happens_after_dedupe(self):
        # k=2 must yield 2 *distinct* patches, not 2 slots eaten by copies.
        a = results(("p", 0), ("q", 1))
        b = results(("p", 0), ("r", 1))
        merged, _ = merge_similarity([("a", a, 1), ("b", b, 1)],
                                     k=2, dedupe=True)
        assert [r.item_id for r in merged] == ["p", "q"]


class TestMergeSearch:
    @staticmethod
    def page(names, total, plan="scan"):
        return SearchResponse(documents=[{"name": n} for n in names],
                              total_matches=total, plan=plan,
                              candidates_examined=total)

    def test_single_node_passthrough(self):
        response = self.page(["p1", "p2"], 2)
        merged = merge_search([("a", response)])
        assert merged.documents == response.documents
        assert merged.total_matches == 2
        assert merged.plan == "scan"

    def test_global_pagination(self):
        merged = merge_search(
            [("a", self.page(["a1", "a2", "a3"], 3)),
             ("b", self.page(["b1", "b2"], 2))],
            skip=2, limit=2)
        assert merged.names == ["a3", "b1"]
        assert merged.total_matches == 5
        assert merged.plan == "federated(scan;scan)"
        assert merged.candidates_examined == 5

    def test_namespaced_document_names(self):
        merged = merge_search(
            [("a", self.page(["p", "q"], 2)), ("b", self.page(["p"], 1))],
            namespace=True)
        assert merged.names == ["a/p", "a/q", "b/p"]

    def test_dedupe_counts_each_patch_once(self):
        # Two replicas answer with overlapping copies: total_matches is
        # the number of distinct patches, not the sum of page sizes.
        merged = merge_search(
            [("a", self.page(["p", "q"], 2)), ("b", self.page(["q", "r"], 2))],
            dedupe=True)
        assert merged.names == ["p", "q", "r"]
        assert merged.total_matches == 3

    def test_dedupe_orders_by_global_sequence(self):
        seq = {"p": 2, "q": 0, "r": 1}
        merged = merge_search(
            [("a", self.page(["p", "q"], 2)), ("b", self.page(["r"], 1))],
            dedupe=True, order_of=lambda name: (0, seq[name]))
        assert merged.names == ["q", "r", "p"]

    def test_dedupe_paginates_the_distinct_set(self):
        merged = merge_search(
            [("a", self.page(["p", "q"], 2)), ("b", self.page(["p", "r"], 2))],
            skip=1, limit=1, dedupe=True)
        assert merged.names == ["q"]
        assert merged.total_matches == 3


class TestMergeStatistics:
    @staticmethod
    def stats(bars, total):
        return LabelStatistics(
            bars=[LabelBar(label, count, color) for label, count, color in bars],
            total_images=total)

    def test_single_node_is_identity(self):
        original = self.stats([("Beaches", 3, "#111111"),
                               ("Airports", 1, "#222222")], 4)
        merged = merge_statistics([original])
        assert merged == original

    def test_counts_sum_and_resort(self):
        merged = merge_statistics([
            self.stats([("Beaches", 2, "#111111"), ("Airports", 2, "#222222")], 3),
            self.stats([("Airports", 3, "#222222")], 3),
        ])
        assert merged.total_images == 6
        assert merged.as_rows() == [("Airports", 5, "#222222"),
                                    ("Beaches", 2, "#111111")]

    def test_tied_counts_sort_by_label(self):
        merged = merge_statistics([
            self.stats([("Beaches", 1, "#1"), ("Airports", 1, "#2")], 1),
        ])
        assert merged.labels == ["Airports", "Beaches"]
