"""Circuit-breaker state machine tests (fake clock, no threads)."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.federation.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock() -> FakeClock:
    return FakeClock()


def test_stays_closed_below_threshold(clock):
    breaker = CircuitBreaker(3, 10.0, clock=clock)
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == CLOSED
    assert breaker.allow()


def test_opens_at_threshold_and_blocks(clock):
    breaker = CircuitBreaker(3, 10.0, clock=clock)
    for _ in range(3):
        breaker.record_failure()
    assert breaker.state == OPEN
    assert not breaker.allow()


def test_success_resets_the_streak(clock):
    breaker = CircuitBreaker(2, 10.0, clock=clock)
    breaker.record_failure()
    breaker.record_success()
    breaker.record_failure()
    assert breaker.state == CLOSED


def test_half_open_admits_one_probe(clock):
    breaker = CircuitBreaker(1, 10.0, clock=clock)
    breaker.record_failure()
    assert not breaker.allow()
    clock.advance(10.0)
    assert breaker.state == HALF_OPEN
    assert breaker.allow()       # the probe
    assert not breaker.allow()   # no second concurrent probe


def test_probe_success_closes(clock):
    breaker = CircuitBreaker(1, 10.0, clock=clock)
    breaker.record_failure()
    clock.advance(10.0)
    assert breaker.allow()
    breaker.record_success()
    assert breaker.state == CLOSED
    assert breaker.allow()


def test_probe_failure_reopens_with_fresh_cooldown(clock):
    breaker = CircuitBreaker(1, 10.0, clock=clock)
    breaker.record_failure()
    clock.advance(10.0)
    assert breaker.allow()
    breaker.record_failure()
    assert breaker.state == OPEN
    assert not breaker.allow()
    clock.advance(9.0)
    assert not breaker.allow()
    clock.advance(1.0)
    assert breaker.allow()


def test_snapshot_accounting(clock):
    breaker = CircuitBreaker(2, 10.0, clock=clock)
    breaker.record_success()
    breaker.record_failure()
    breaker.record_failure()
    clock.advance(4.0)
    snap = breaker.snapshot()
    assert snap == {"state": OPEN, "consecutive_failures": 2,
                    "total_successes": 1, "total_failures": 2,
                    "times_opened": 1, "open_age_seconds": 4.0}


def test_open_age_tracks_the_outage(clock):
    breaker = CircuitBreaker(1, 10.0, clock=clock)
    assert breaker.open_age_s() is None
    breaker.record_failure()
    clock.advance(2.5)
    assert breaker.open_age_s() == 2.5
    clock.advance(7.5)
    assert breaker.allow()          # half-open probe: still an open outage
    assert breaker.open_age_s() == 10.0
    breaker.record_success()
    assert breaker.open_age_s() is None
    assert breaker.snapshot()["open_age_seconds"] is None


def test_transition_callback_fires_on_open_and_reclose(clock):
    events: list[str] = []
    breaker = CircuitBreaker(2, 10.0, clock=clock, on_transition=events.append)
    breaker.record_failure()
    assert events == []             # below threshold: no transition
    breaker.record_failure()
    assert events == ["opened"]
    breaker.record_failure()
    assert events == ["opened"]     # already open: not re-counted
    clock.advance(10.0)
    assert breaker.allow()
    breaker.record_success()
    assert events == ["opened", "reclosed"]
    breaker.record_success()
    assert events == ["opened", "reclosed"]  # closed stays closed


def test_validation():
    with pytest.raises(ValidationError):
        CircuitBreaker(0, 1.0)
    with pytest.raises(ValidationError):
        CircuitBreaker(1, -1.0)
