"""Federation fixtures: a few small independent EarthQube nodes.

Bootstrapping is the expensive part, so the member *systems* are
module-scoped and shared; every test builds its own (cheap)
:class:`FederatedEarthQube` on top so circuit-breaker state never leaks
between tests.
"""

from __future__ import annotations

import pytest

from repro.config import (
    ArchiveConfig,
    EarthQubeConfig,
    IndexConfig,
    MiLaNConfig,
    ServingConfig,
    TrainConfig,
)
from repro.earthqube import EarthQube


def _bootstrap(seed: int, *, num_bits: int = 32, patches: int = 48,
               serving: bool = False) -> EarthQube:
    config = EarthQubeConfig(
        archive=ArchiveConfig(num_patches=patches, seed=seed),
        milan=MiLaNConfig(num_bits=num_bits, hidden_sizes=(48,)),
        train=TrainConfig(epochs=2, triplets_per_epoch=128, batch_size=64,
                          seed=seed),
        index=IndexConfig(hamming_radius=2, mih_tables=4),
        serving=ServingConfig(enabled=serving, num_shards=2,
                              batch_max_delay_ms=0.5, cache_entries=128),
    )
    return EarthQube.bootstrap(config, store_images=False)


@pytest.fixture(scope="module")
def node_a() -> EarthQube:
    """Member archive with its serving tier ON (gateway path)."""
    system = _bootstrap(31, serving=True)
    yield system
    system.disable_serving()


@pytest.fixture(scope="module")
def node_b() -> EarthQube:
    """Member archive on the direct path (no gateway)."""
    return _bootstrap(32)


@pytest.fixture(scope="module")
def node_narrow() -> EarthQube:
    """Member archive with an incompatible (16-bit) code width."""
    return _bootstrap(33, num_bits=16, patches=32)
