"""Multi-node behaviour: merging, partial results, timeouts, the breaker.

Acceptance: with >= 2 nodes and one node forced to time out (or fail),
federated queries still return merged results from the surviving nodes,
``FederatedResultMeta`` reports the failure explicitly, and the circuit
breaker ejects and later readmits the flapping node.
"""

from __future__ import annotations

import time

import pytest

from repro.config import FederationConfig
from repro.errors import UnknownPatchError, ValidationError
from repro.federation import FederatedEarthQube
from repro.federation.breaker import CLOSED, OPEN
from repro.federation.executor import (
    SKIP_CIRCUIT_OPEN,
    SKIP_INCOMPATIBLE,
    SKIP_NO_DATA,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def pair(node_a, node_b):
    federation = FederatedEarthQube({"a": node_a, "b": node_b})
    yield federation
    federation.close()


def broken(*args, **kwargs):
    raise RuntimeError("node down")


# --------------------------------------------------------------------- #
# Merging across healthy nodes
# --------------------------------------------------------------------- #

def test_merged_results_are_namespaced_and_cover_both_nodes(pair, node_a):
    name = node_a.archive.names[0]
    federated = pair.similar_images(f"a/{name}", k=None, radius=16)
    assert federated.meta.answered == ["a", "b"]
    nodes_seen = {r.item_id.split("/", 1)[0] for r in federated.value.results}
    assert nodes_seen == {"a", "b"}
    # The query's own namespaced id was dropped as the self-match.
    assert f"a/{name}" not in [r.item_id for r in federated.value.results]


def test_merged_ranking_is_globally_sorted(pair, node_a):
    federated = pair.similar_images(node_a.archive.names[1], k=20)
    distances = [r.distance for r in federated.value.results]
    assert distances == sorted(distances)
    assert len(federated.value.results) == 20


def test_search_sums_totals(pair, node_a, node_b):
    from repro.earthqube import QuerySpec
    spec = QuerySpec()
    federated = pair.search(spec)
    expected = (node_a.search(spec).total_matches
                + node_b.search(spec).total_matches)
    assert federated.value.total_matches == expected


def test_statistics_across_nodes(pair, node_a, node_b):
    federated = pair.statistics_for(
        [f"a/{node_a.archive.names[0]}", f"b/{node_b.archive.names[0]}"])
    assert federated.value.total_images == 2
    assert federated.meta.answered == ["a", "b"]


def test_bare_name_resolves_in_registration_order(pair, node_a):
    name = node_a.archive.names[3]
    assert pair.resolve_image(name)[0].name == "a"
    with pytest.raises(UnknownPatchError):
        pair.resolve_image("no_such_patch_anywhere")


# --------------------------------------------------------------------- #
# Partial results on failure / timeout
# --------------------------------------------------------------------- #

def test_failed_node_yields_partial_results_with_meta(pair, node_a):
    pair.registry.get("b").query_code = broken
    federated = pair.similar_images(node_a.archive.names[0], k=8)
    assert federated.meta.answered == ["a"]
    assert "RuntimeError" in federated.meta.failed["b"]
    assert not federated.meta.complete
    assert all(r.item_id.startswith("a/") for r in federated.value.results)
    assert len(federated.value.results) == 8


def test_timed_out_node_yields_partial_results(node_a, node_b):
    federation = FederatedEarthQube(
        {"a": node_a, "b": node_b},
        FederationConfig(node_timeout_s=0.15, max_retries=0))
    try:
        def slow(code, *, k=None, radius=None):
            time.sleep(0.6)
            return [], 0

        federation.registry.get("b").query_code = slow
        federated = federation.similar_images(node_a.archive.names[0], k=5)
        assert federated.meta.answered == ["a"]
        assert "timeout" in federated.meta.failed["b"]
        assert len(federated.value.results) == 5
    finally:
        time.sleep(0.6)  # let the stuck worker drain before closing
        federation.close()


def test_search_failover(pair, node_a):
    from repro.earthqube import QuerySpec
    pair.registry.get("b").search = broken
    spec = QuerySpec(limit=5)
    federated = pair.search(spec)
    # Namespacing stays on (two nodes registered), so only the names differ.
    assert federated.value.names == [f"a/{name}"
                                     for name in node_a.search(spec).names]
    assert "b" in federated.meta.failed


def test_batch_failover(pair, node_a):
    pair.registry.get("b").query_codes_batch = broken
    names = node_a.archive.names[:4]
    federated = pair.similar_images_batch(names, k=3)
    assert federated.meta.failed.keys() == {"b"}
    assert [len(q.results) for q in federated.value] == [3, 3, 3, 3]


def test_hung_node_does_not_starve_healthy_nodes(node_a, node_b):
    """A node stuck past its timeout must not queue other nodes' calls
    behind it (each call gets its own thread): across repeated queries the
    healthy node keeps answering and only the hung node's breaker trips."""
    federation = FederatedEarthQube(
        {"a": node_a, "b": node_b},
        FederationConfig(node_timeout_s=0.15, max_retries=0,
                         breaker_failure_threshold=2))
    try:
        def hang(code, *, k=None, radius=None):
            time.sleep(1.2)
            return [], 0

        federation.registry.get("b").query_code = hang
        query = node_a.archive.names[0]
        for _ in range(4):
            federated = federation.similar_images(query, k=5)
            assert "a" in federated.meta.answered   # never starved
            assert len(federated.value.results) == 5
        assert federation.registry.breaker_of("b").state == OPEN
        assert federation.registry.breaker_of("a").state == CLOSED
    finally:
        time.sleep(1.2)  # let abandoned call threads drain
        federation.close()


def test_malformed_input_raises_and_never_trips_breakers(pair, node_a):
    """Client validation errors are HTTP-400 material, not node failures:
    they must raise before the scatter, leaving every breaker closed."""
    name = node_a.archive.names[0]
    for _ in range(4):  # more than the default failure threshold
        with pytest.raises(ValidationError):
            pair.similar_images(name, k=None, radius=-1)
        with pytest.raises(ValidationError):
            pair.similar_images(name, k=0)
        with pytest.raises(ValidationError):
            pair.similar_images_batch([name], k=-3)
    for node in ("a", "b"):
        assert pair.registry.breaker_of(node).state == CLOSED
        assert pair.registry.breaker_of(node).total_failures == 0
    # A valid query afterwards still gets full coverage.
    assert pair.similar_images(name, k=5).meta.complete


def test_retry_recovers_a_flaky_node(node_a, node_b):
    federation = FederatedEarthQube(
        {"a": node_a, "b": node_b}, FederationConfig(max_retries=1))
    try:
        node = federation.registry.get("b")
        real = node.query_code
        calls = {"n": 0}

        def flaky(code, *, k=None, radius=None):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("transient")
            return real(code, k=k, radius=radius)

        node.query_code = flaky
        federated = federation.similar_images(node_a.archive.names[0], k=5)
        assert federated.meta.answered == ["a", "b"]
        assert calls["n"] == 2
    finally:
        federation.close()


# --------------------------------------------------------------------- #
# Circuit breaker: ejection and readmission across repeated calls
# --------------------------------------------------------------------- #

def test_breaker_ejects_then_readmits(node_a, node_b):
    clock = FakeClock()
    federation = FederatedEarthQube(
        {"a": node_a, "b": node_b},
        FederationConfig(breaker_failure_threshold=2, breaker_cooldown_s=30.0,
                         max_retries=0),
        clock=clock)
    try:
        node = federation.registry.get("b")
        real = node.query_code
        node.query_code = broken
        query = node_a.archive.names[0]

        # Two failing calls trip the breaker ...
        for _ in range(2):
            federated = federation.similar_images(query, k=5)
            assert "b" in federated.meta.failed
        assert federation.registry.breaker_of("b").state == OPEN

        # ... so the next call skips b outright (ejected, not queried).
        federated = federation.similar_images(query, k=5)
        assert federated.meta.skipped["b"] == SKIP_CIRCUIT_OPEN
        assert federated.meta.queried == ["a"]
        assert len(federated.value.results) == 5

        # After the cooldown the half-open probe readmits a healed node.
        node.query_code = real
        clock.advance(30.0)
        federated = federation.similar_images(query, k=5)
        assert federated.meta.answered == ["a", "b"]
        assert federation.registry.breaker_of("b").state == CLOSED

        # And it stays readmitted on subsequent calls.
        federated = federation.similar_images(query, k=5)
        assert federated.meta.answered == ["a", "b"]
    finally:
        federation.close()


def test_breaker_stays_open_if_probe_fails(node_a, node_b):
    clock = FakeClock()
    federation = FederatedEarthQube(
        {"a": node_a, "b": node_b},
        FederationConfig(breaker_failure_threshold=1, breaker_cooldown_s=10.0,
                         max_retries=0),
        clock=clock)
    try:
        federation.registry.get("b").query_code = broken
        query = node_a.archive.names[0]
        assert "b" in federation.similar_images(query, k=3).meta.failed
        clock.advance(10.0)  # half-open: probe runs, fails, re-opens
        assert "b" in federation.similar_images(query, k=3).meta.failed
        assert "b" in federation.similar_images(query, k=3).meta.skipped
    finally:
        federation.close()


# --------------------------------------------------------------------- #
# Capability routing
# --------------------------------------------------------------------- #

def test_incompatible_bit_width_is_skipped(node_a, node_b, node_narrow):
    federation = FederatedEarthQube(
        {"a": node_a, "b": node_b, "narrow": node_narrow})
    try:
        federated = federation.similar_images(node_a.archive.names[0], k=5)
        assert federated.meta.skipped["narrow"] == SKIP_INCOMPATIBLE
        assert federated.meta.answered == ["a", "b"]
        # Querying from the narrow node flips the roles.
        federated = federation.similar_images(
            f"narrow/{node_narrow.archive.names[0]}", k=5)
        assert federated.meta.answered == ["narrow"]
        assert set(federated.meta.skipped) == {"a", "b"}
    finally:
        federation.close()


def test_mixed_width_batch_is_rejected(node_a, node_narrow):
    federation = FederatedEarthQube({"a": node_a, "narrow": node_narrow})
    try:
        with pytest.raises(ValidationError):
            federation.similar_images_batch(
                [f"a/{node_a.archive.names[0]}",
                 f"narrow/{node_narrow.archive.names[0]}"], k=3)
    finally:
        federation.close()


def test_statistics_skips_nodes_without_data(pair, node_a):
    federated = pair.statistics_for([f"a/{node_a.archive.names[0]}"])
    assert federated.meta.skipped["b"] == SKIP_NO_DATA
    assert federated.meta.answered == ["a"]


# --------------------------------------------------------------------- #
# Registry / membership
# --------------------------------------------------------------------- #

def test_registry_snapshot_capabilities(pair, node_a):
    nodes = pair.nodes()
    assert [entry["name"] for entry in nodes] == ["a", "b"]
    capabilities = nodes[0]["capabilities"]
    assert capabilities["num_bits"] == node_a.hasher.num_bits
    assert capabilities["corpus_size"] == len(node_a.cbir)
    assert capabilities["serving_enabled"] is True
    assert nodes[1]["capabilities"]["serving_enabled"] is False
    assert nodes[0]["health"]["state"] == CLOSED


def test_duplicate_and_invalid_node_names(pair, node_a):
    with pytest.raises(ValidationError):
        pair.add_node("a", node_a)
    with pytest.raises(ValidationError):
        pair.add_node("bad/name", node_a)


def test_remove_node(node_a, node_b):
    federation = FederatedEarthQube({"a": node_a, "b": node_b})
    try:
        federation.remove_node("b")
        assert federation.num_nodes == 1
        federated = federation.similar_images(node_a.archive.names[0], k=4)
        # Back to 1 node: auto namespacing turns off again.
        assert federated.value == node_a.similar_images(
            node_a.archive.names[0], k=4)
    finally:
        federation.close()


def test_per_node_latency_series(pair, node_a):
    pair.similar_images(node_a.archive.names[0], k=3)
    series = pair.metrics_snapshot()["per_node_latency"]
    assert set(series) == {"a", "b"}
    assert series["a"]["count"] >= 1
