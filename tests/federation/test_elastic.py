"""Elastic federation: replication, membership churn, and read-repair.

The central claim under test is **byte-identity under churn**: an R=2
elastic federation answers every query byte-identically to a single
full-corpus oracle system — through node deaths, joins, graceful leaves,
broken-but-registered members, and interleaved writes.  Every comparison
here is full ``==`` on the response objects (results, distances, radius
used, documents, counts), never "approximately the same set".
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.bigearthnet.patch import Patch
from repro.config import (
    ArchiveConfig,
    EarthQubeConfig,
    FederationConfig,
    IndexConfig,
    MiLaNConfig,
    TrainConfig,
)
from repro.earthqube import EarthQube, QuerySpec
from repro.earthqube.api import EarthQubeAPI
from repro.errors import UnknownPatchError, ValidationError
from repro.federation import FederatedEarthQube, PlacementRing, stable_hash
from repro.store.faults import CrashPoint, FaultInjector

NODES = ["alpha", "beta", "gamma"]

#: FederatedNode methods stubbed out to model a live-but-erroring member.
BROKEN_METHODS = (
    "query_code", "query_codes_batch", "search", "statistics_for",
    "ingest_new_patch", "update_image", "delete_image",
    "export_shard", "import_shard", "shard_digest",
)


def _config(*, patches: int, seed: int) -> EarthQubeConfig:
    return EarthQubeConfig(
        archive=ArchiveConfig(num_patches=patches, seed=seed),
        milan=MiLaNConfig(num_bits=32, hidden_sizes=(48,)),
        train=TrainConfig(epochs=2, triplets_per_epoch=128, batch_size=64,
                          seed=seed),
        index=IndexConfig(hamming_radius=2, mih_tables=4),
    )


@pytest.fixture(scope="module")
def oracle() -> EarthQube:
    """The full-corpus oracle every federated answer is compared against.

    Module-scoped and treated as read-only by identity tests; tests that
    mutate state build their own copy via :func:`fresh_oracle`.
    """
    return EarthQube.bootstrap(_config(patches=36, seed=7),
                               store_images=False)


def fresh_oracle() -> EarthQube:
    """A private, mutable oracle (bootstrap is deterministic per config)."""
    return EarthQube.bootstrap(_config(patches=36, seed=7),
                               store_images=False)


@pytest.fixture(scope="module")
def extra_patches() -> list[Patch]:
    """Disjoint patches (renamed) for ingest during chaos runs."""
    donor = EarthQube.bootstrap(_config(patches=10, seed=991),
                                store_images=False)
    renamed = []
    for i, patch in enumerate(donor.archive.patches):
        renamed.append(Patch(
            name=f"chaos_patch_{i:02d}", labels=patch.labels,
            country=patch.country, bbox=patch.bbox,
            acquisition_date=patch.acquisition_date, season=patch.season,
            s2_bands=patch.s2_bands, s1_bands=patch.s1_bands))
    return renamed


def make_federation(template: EarthQube, *, replication: int = 2,
                    **config_kwargs) -> FederatedEarthQube:
    config = FederationConfig(elastic=True, replication_factor=replication,
                              **config_kwargs)
    return FederatedEarthQube.replicate(template, list(NODES), config)


def break_node(node) -> dict:
    saved = {m: getattr(node, m) for m in BROKEN_METHODS}

    def boom(*args, **kwargs):
        raise RuntimeError("node down")

    for m in BROKEN_METHODS:
        setattr(node, m, boom)
    return saved


def heal_node(node, saved: dict) -> None:
    for m, fn in saved.items():
        setattr(node, m, fn)


def assert_identical(oracle: EarthQube, fed: FederatedEarthQube,
                     names: list[str], *, k: int = 5) -> None:
    """The full byte-identity oracle comparison across every query type."""
    for name in names:
        direct = oracle.similar_images(name, k=k)
        response = fed.similar_images(name, k=k)
        assert response.value == direct, name
        assert response.meta.coverage_complete, response.meta.as_dict()
    if names:
        batch_names = names[:3]
        direct_batch = oracle.similar_images_batch(batch_names, k=k)
        assert fed.similar_images_batch(batch_names, k=k).value == direct_batch
        direct_stats = oracle.statistics_for(names)
        assert fed.statistics_for(names).value == direct_stats
    spec = QuerySpec(seasons=("summer",), limit=5, skip=1)
    direct_search = oracle.search(spec)
    merged = fed.search(spec).value
    assert merged.documents == direct_search.documents
    assert merged.total_matches == direct_search.total_matches


class TestPlacementRing:
    def test_stable_hash_is_deterministic(self):
        assert stable_hash("patch_1") == stable_hash("patch_1")
        assert stable_hash("patch_1") != stable_hash("patch_2")

    def test_replicas_are_distinct_and_deterministic(self):
        ring = PlacementRing(replication_factor=2)
        for name in NODES:
            ring.add_node(name)
        for key in [f"p{i}" for i in range(50)]:
            replicas = ring.replicas_for(key)
            assert len(replicas) == 2
            assert len(set(replicas)) == 2
            assert replicas == ring.replicas_for(key)

    def test_degrades_when_fewer_members_than_r(self):
        ring = PlacementRing(replication_factor=3)
        ring.add_node("solo")
        assert ring.replicas_for("x") == ("solo",)
        assert PlacementRing(replication_factor=2).replicas_for("x") == ()

    def test_with_without_are_copies(self):
        ring = PlacementRing(replication_factor=2)
        ring.add_node("a")
        grown = ring.with_node("b")
        assert "b" in grown and "b" not in ring
        shrunk = grown.without_node("a")
        assert "a" in grown and "a" not in shrunk

    def test_chains_cover_every_key(self):
        ring = PlacementRing(replication_factor=2)
        for name in NODES:
            ring.add_node(name)
        chains = set(ring.replica_chains())
        for key in [f"p{i}" for i in range(100)]:
            assert ring.replicas_for(key) in chains

    def test_rebalance_moves_a_minority_of_keys(self):
        ring = PlacementRing(replication_factor=2)
        for name in NODES:
            ring.add_node(name)
        keys = [f"p{i}" for i in range(200)]
        before = {key: ring.replicas_for(key) for key in keys}
        grown = ring.with_node("delta")
        moved = sum(1 for key in keys
                    if set(grown.replicas_for(key)) != set(before[key]))
        # Consistent hashing: adding 1 of 4 nodes relocates roughly
        # R/(N+1) of the replica slots, nowhere near a full reshuffle.
        assert moved < len(keys) * 0.8


class TestElasticConfig:
    def test_replication_requires_elastic(self):
        with pytest.raises(ValidationError):
            FederationConfig(replication_factor=2)

    def test_elastic_forbids_forced_namespacing(self):
        with pytest.raises(ValidationError):
            FederationConfig(elastic=True, namespace_results="always")


class TestElasticIdentity:
    def test_single_node_r1_matches_direct(self, oracle):
        fed = FederatedEarthQube(None, FederationConfig(elastic=True))
        fed.add_node("solo", oracle)
        try:
            assert_identical(oracle, fed, oracle.archive.names[:5])
        finally:
            fed.close()

    def test_r2_federation_matches_full_corpus_oracle(self, oracle):
        with make_federation(oracle) as fed:
            assert_identical(oracle, fed, list(oracle.archive.names))

    def test_replicas_hold_r_copies(self, oracle):
        with make_federation(oracle) as fed:
            total = sum(len(node.system.cbir) for node in fed.registry)
            assert total == 2 * len(oracle.archive.names)
            for name in oracle.archive.names:
                holders = [node.name for node in fed.registry
                           if node.has_image(name)]
                assert sorted(holders) == sorted(fed.ring.replicas_for(name))

    def test_kill_any_node_preserves_identity(self, oracle):
        names = list(oracle.archive.names)
        for victim in NODES:
            with make_federation(oracle) as fed:
                summary = fed.node_died(victim)
                assert summary["lost"] == []
                assert victim not in fed.registry
                assert_identical(oracle, fed, names)
                # Survivors re-replicated the dead node's shard: still R=2.
                total = sum(len(node.system.cbir) for node in fed.registry)
                assert total == 2 * len(names)

    def test_join_after_death_restores_membership(self, oracle):
        with make_federation(oracle) as fed:
            fed.node_died("beta")
            summary = fed.join_node("beta")
            assert summary["patches"] > 0
            assert "beta" in fed.registry and "beta" in fed.ring
            assert_identical(oracle, fed, list(oracle.archive.names))

    def test_graceful_leave_hands_off_and_preserves_identity(self, oracle):
        with make_federation(oracle) as fed:
            summary = fed.leave_node("gamma")
            assert summary["patches"] > 0
            assert "gamma" not in fed.registry
            assert_identical(oracle, fed, list(oracle.archive.names))

    def test_broken_node_falls_back_to_replicas(self, oracle):
        with make_federation(oracle, max_retries=0,
                             breaker_failure_threshold=2,
                             breaker_cooldown_s=1e9) as fed:
            saved = break_node(fed.registry.get("beta"))
            try:
                names = list(oracle.archive.names)
                assert_identical(oracle, fed, names)
                response = fed.similar_images(names[0], k=5)
                assert response.meta.coverage_complete
            finally:
                heal_node(fed.registry.get("beta"), saved)

    def test_search_pagination_matches_oracle(self, oracle):
        with make_federation(oracle) as fed:
            for skip, limit in [(0, None), (0, 3), (2, 4), (5, 100)]:
                spec = QuerySpec(limit=limit, skip=skip)
                direct = oracle.search(spec)
                merged = fed.search(spec).value
                assert merged.documents == direct.documents
                assert merged.total_matches == direct.total_matches


class TestWriteFanOut:
    def test_ingest_lands_on_every_replica(self, oracle, extra_patches):
        local = fresh_oracle()
        with make_federation(local) as fed:
            patch = extra_patches[0]
            summary = fed.ingest_new_patch(patch)
            assert sorted(summary["replicas"]) == \
                sorted(fed.ring.replicas_for(patch.name))
            local.ingest_new_patch(patch, auto_label_if_missing=False)
            assert_identical(local, fed, [patch.name] + local.archive.names[:3])
            with pytest.raises(ValidationError):
                fed.ingest_new_patch(patch)  # duplicate name

    def test_delete_removes_every_copy(self, oracle):
        local = fresh_oracle()
        with make_federation(local) as fed:
            victim = local.archive.names[4]
            replicas = fed.ring.replicas_for(victim)
            summary = fed.delete_image(victim)
            assert sorted(summary["nodes"]) == sorted(replicas)
            assert all(not node.has_image(victim) for node in fed.registry)
            local.delete_image(victim)
            assert_identical(local, fed, local.archive.names[:5])
            with pytest.raises(UnknownPatchError):
                fed.delete_image(victim)

    def test_update_rebumps_global_order(self, oracle):
        local = fresh_oracle()
        with make_federation(local) as fed:
            target = local.archive.names[2]
            features = np.zeros(local.extractor.dimension)
            fed.update_image(target, features)
            local.update_image(target, features)
            assert_identical(local, fed, local.archive.names[:6])


class TestHintedHandoff:
    def test_writes_to_a_down_replica_are_hinted_and_replayed(
            self, extra_patches):
        local = fresh_oracle()
        with make_federation(local, max_retries=0,
                             breaker_failure_threshold=1,
                             breaker_cooldown_s=1e9) as fed:
            beta = fed.registry.get("beta")
            saved = break_node(beta)
            hinted_writes = 0
            for patch in extra_patches[:4]:
                summary = fed.ingest_new_patch(patch)
                local.ingest_new_patch(patch, auto_label_if_missing=False)
                hinted_writes += "beta" in summary["hinted"]
            victim = local.archive.names[0]
            fed.delete_image(victim)
            local.delete_image(victim)
            assert hinted_writes > 0
            assert fed.hints.depth("beta") > 0
            # Reads stay identical while beta is down and behind.
            check = [p.name for p in extra_patches[:4]] + local.archive.names[1:4]
            assert_identical(local, fed, check)

            heal_node(beta, saved)
            assert fed.flush_hints("beta") > 0
            assert fed.hints.depth("beta") == 0
            fed.registry.breaker_of("beta").record_success()
            assert_identical(local, fed, check)
            # Beta converged bit-for-bit: every replica group digests equal.
            assert fed.repairer.scan()["divergent_groups"] == 0

    def test_replication_lag_gauge_tracks_hint_depth(self, extra_patches):
        local = fresh_oracle()
        with make_federation(local, max_retries=0,
                             breaker_failure_threshold=1,
                             breaker_cooldown_s=1e9) as fed:
            beta = fed.registry.get("beta")
            saved = break_node(beta)
            try:
                for patch in extra_patches[:4]:
                    fed.ingest_new_patch(patch)
                depth = fed.hints.depth("beta")
                gauges = fed.metrics.snapshot()["families"]["gauges"]
                lag = {entry["labels"]["node"]: entry["value"]
                       for entry in gauges.get("replication.lag", [])}
                assert lag.get("beta") == depth
            finally:
                heal_node(beta, saved)


class TestReadRepair:
    def test_scan_heals_a_replica_that_lost_a_patch(self, oracle):
        local = fresh_oracle()
        with make_federation(local) as fed:
            victim = local.archive.names[0]
            holders = fed.ring.replicas_for(victim)
            # Lose one copy behind the facade's back (torn local state).
            fed.registry.get(holders[1]).system.delete_image(victim)
            assert not fed.registry.get(holders[1]).has_image(victim)
            summary = fed.repairer.scan()
            assert summary["divergent_groups"] >= 1
            assert summary["synced"] >= 1
            assert fed.registry.get(holders[1]).has_image(victim)
            assert fed.repairer.scan()["divergent_groups"] == 0
            assert_identical(local, fed, local.archive.names[:5])

    def test_clean_federation_scans_clean(self, oracle):
        with make_federation(oracle) as fed:
            summary = fed.repairer.scan()
            assert summary["divergent_groups"] == 0
            assert summary["synced"] == 0


class TestHandoffCrash:
    def test_crash_before_manifest_replace_rolls_back_the_join(self, oracle):
        faults = FaultInjector()
        config = FederationConfig(elastic=True, replication_factor=2)
        fed = FederatedEarthQube.replicate(oracle, list(NODES), config,
                                           faults=faults)
        try:
            faults.arm("snapshot.before_manifest_replace", hits=1)
            with pytest.raises(CrashPoint):
                fed.join_node("delta")
            # The ring never flipped: membership and placement unchanged,
            # every query still byte-identical.
            assert "delta" not in fed.registry
            assert "delta" not in fed.ring
            assert_identical(oracle, fed, oracle.archive.names[:6])
            # Retry after the "crash" succeeds (snapshot staging is
            # atomic-by-manifest, so the torn attempt left no damage).
            summary = fed.join_node("delta")
            assert summary["patches"] > 0
            assert_identical(oracle, fed, list(oracle.archive.names))
        finally:
            fed.close()


class TestLegacyFanOut:
    """Satellite regression: bare-name delete/update fan out to ALL owners."""

    @pytest.fixture()
    def duplicated_federation(self):
        """Two legacy (non-elastic) nodes holding identical corpora."""
        left = fresh_oracle()
        right = left.empty_clone()
        right.import_shard(left.export_shard(list(left.archive.names)))
        fed = FederatedEarthQube({"left": left, "right": right},
                                 FederationConfig(namespace_results="never"))
        yield fed, left
        fed.close()

    def test_bare_delete_removes_every_owner_copy(self, duplicated_federation):
        fed, left = duplicated_federation
        name = left.archive.names[0]
        summary = fed.delete_image(name)
        assert summary["node"] == "left"           # historical key kept
        assert summary["nodes"] == ["left", "right"]
        assert all(not node.has_image(name) for node in fed.registry)

    def test_namespaced_delete_stays_point_delete(self, duplicated_federation):
        fed, left = duplicated_federation
        name = left.archive.names[1]
        summary = fed.delete_image(f"right/{name}")
        assert summary["node"] == "right"
        assert "nodes" not in summary
        assert fed.registry.get("left").has_image(name)
        assert not fed.registry.get("right").has_image(name)

    def test_bare_update_reaches_every_owner(self, duplicated_federation):
        fed, left = duplicated_federation
        name = left.archive.names[2]
        before = {node.name: node.code_of(name).copy()
                  for node in fed.registry}
        features = np.zeros(left.extractor.dimension)
        summary = fed.update_image(name, features)
        assert summary["nodes"] == ["left", "right"]
        for node in fed.registry:
            assert not np.array_equal(node.code_of(name), before[node.name])
        codes = [node.code_of(name) for node in fed.registry]
        assert np.array_equal(codes[0], codes[1])


class TestChaosProperty:
    """Randomized kill/rejoin + write interleaving, oracle-checked.

    A seeded random schedule interleaves ingests, deletes, updates, and
    queries with abrupt node deaths and handoff rejoins.  After *every*
    query step the federated answer must equal the never-failed oracle's,
    byte for byte.
    """

    @pytest.mark.parametrize("chaos_seed", [11, 23])
    def test_interleaved_churn_stays_byte_identical(self, chaos_seed,
                                                    extra_patches):
        rng = random.Random(chaos_seed)
        local = fresh_oracle()
        fed = make_federation(local)
        try:
            pool = list(extra_patches)
            live = list(local.archive.names)
            dead_node: "str | None" = None
            for step in range(30):
                op = rng.choice(["ingest", "delete", "update", "query",
                                 "query", "kill", "rejoin"])
                if op == "ingest" and pool:
                    patch = pool.pop()
                    fed.ingest_new_patch(patch)
                    local.ingest_new_patch(patch, auto_label_if_missing=False)
                    live.append(patch.name)
                elif op == "delete" and len(live) > 8:
                    victim = live.pop(rng.randrange(len(live)))
                    fed.delete_image(victim)
                    local.delete_image(victim)
                elif op == "update" and live:
                    target = rng.choice(live)
                    features = np.full(local.extractor.dimension,
                                       rng.random())
                    fed.update_image(target, features)
                    local.update_image(target, features)
                elif op == "kill" and dead_node is None:
                    dead_node = rng.choice(fed.registry.names)
                    summary = fed.node_died(dead_node)
                    assert summary["lost"] == []
                elif op == "rejoin" and dead_node is not None:
                    fed.join_node(dead_node)
                    dead_node = None
                else:  # query
                    sample = rng.sample(live, k=min(3, len(live)))
                    assert_identical(local, fed, sample)
            # Final full sweep over everything still alive.
            assert_identical(local, fed, sorted(live))
        finally:
            fed.close()


class TestElasticAPI:
    def test_partial_flag_and_failed_nodes(self, oracle):
        with make_federation(oracle, max_retries=0,
                             breaker_failure_threshold=3,
                             breaker_cooldown_s=1e9) as fed:
            api = EarthQubeAPI(federation=fed)
            name = oracle.archive.names[0]
            clean = api.similar({"name": name, "k": 3})
            assert clean["ok"] is True
            assert "partial" not in clean
            saved = break_node(fed.registry.get("beta"))
            try:
                payload = api.similar({"name": name, "k": 3})
                assert payload["ok"] is True
                if "beta" in payload["federation"]["failed"]:
                    # Fallback replicas answered: complete data, flagged
                    # partial=False, failed node named at top level.
                    assert payload["partial"] is False
                    assert payload["failed_nodes"] == ["beta"]
            finally:
                heal_node(fed.registry.get("beta"), saved)

    def test_partial_counter_increments_on_lost_coverage(self, oracle):
        system = oracle
        fed = FederatedEarthQube({"solo": system},
                                 FederationConfig(max_retries=0))
        api = EarthQubeAPI(federation=fed)
        saved = break_node(fed.registry.get("solo"))
        try:
            payload = api.search({"limit": 3})
            assert payload["ok"] is True
            assert payload["partial"] is True
            assert payload["failed_nodes"] == ["solo"]
            counters = fed.metrics.snapshot()["counters"]
            assert counters.get("federation.partial_responses", 0) >= 1
        finally:
            heal_node(fed.registry.get("solo"), saved)
            fed.close()

    def test_join_and_leave_routes(self, oracle):
        with make_federation(oracle) as fed:
            api = EarthQubeAPI(federation=fed)
            joined = api.federation_join({"name": "delta"})
            assert joined["ok"] is True and joined["joined"] is True
            assert joined["patches"] > 0
            nodes = api.federation_nodes()
            assert nodes["count"] == 4
            assert nodes["replication"]["replication_factor"] == 2
            assert all("placement" in entry for entry in nodes["nodes"])
            left = api.federation_leave({"name": "delta"})
            assert left["ok"] is True and left["left"] is True
            assert api.federation_nodes()["count"] == 3
            assert_identical(oracle, fed, oracle.archive.names[:5])

    def test_leave_route_rejects_without_federation(self, oracle):
        api = EarthQubeAPI(oracle)
        assert api.federation_join({"name": "x"})["ok"] is False
        assert api.federation_leave({"name": "x"})["ok"] is False

    def test_ready_reports_open_breaker_age(self, oracle):
        with make_federation(oracle, max_retries=0,
                             breaker_failure_threshold=1,
                             breaker_cooldown_s=1e9) as fed:
            api = EarthQubeAPI(federation=fed)
            assert api.ready()["federation"][
                "open_breaker_ages_seconds"] == {}
            fed.registry.breaker_of("beta").record_failure()
            ages = api.ready()["federation"]["open_breaker_ages_seconds"]
            assert set(ages) == {"beta"}
            assert ages["beta"] >= 0.0

    def test_breaker_transition_counters(self, oracle):
        with make_federation(oracle, max_retries=0,
                             breaker_failure_threshold=1,
                             breaker_cooldown_s=0.0) as fed:
            breaker = fed.registry.breaker_of("gamma")
            breaker.record_failure()
            breaker.allow()            # half-open probe after 0s cooldown
            breaker.record_success()
            counters = fed.metrics.snapshot()["families"]["counters"]
            opened = {e["labels"]["node"]: e["value"]
                      for e in counters.get("breaker.opened", [])}
            reclosed = {e["labels"]["node"]: e["value"]
                        for e in counters.get("breaker.reclosed", [])}
            assert opened.get("gamma") == 1
            assert reclosed.get("gamma") == 1


class TestDurableHandoffJournal:
    def test_imported_shard_survives_recovery(self, oracle, tmp_path):
        from repro.config import DurabilityConfig
        from repro.earthqube.durability import DurableEarthQube

        target = oracle.empty_clone()
        DurableEarthQube(target, DurabilityConfig(directory=tmp_path / "n1"))
        names = list(oracle.archive.names[:4])
        shard = oracle.export_shard(names)
        target.import_shard(shard)
        assert all(target.cbir.has(name) for name in names)

        # Re-attach from disk onto a fresh clone: the journaled
        # shard.import replays and the shard is still there.
        recovered = oracle.empty_clone()
        DurableEarthQube(recovered,
                         DurabilityConfig(directory=tmp_path / "n1"))
        assert all(recovered.cbir.has(name) for name in names)
        for name in names:
            assert np.array_equal(recovered.cbir.code_of(name),
                                  oracle.cbir.code_of(name))
