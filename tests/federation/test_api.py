"""Federated routing through the JSON API (`EarthQubeAPI`)."""

from __future__ import annotations

import json

import pytest

from repro.earthqube.api import EarthQubeAPI
from repro.errors import ValidationError
from repro.federation import FederatedEarthQube


@pytest.fixture
def api(node_a, node_b):
    federation = FederatedEarthQube({"a": node_a, "b": node_b})
    yield EarthQubeAPI(node_a, federation=federation)
    federation.close()


def test_requires_system_or_federation():
    with pytest.raises(ValidationError):
        EarthQubeAPI()


def test_search_payload_carries_federation_meta(api):
    payload = api.search({"limit": 5})
    assert payload["ok"]
    assert payload["federation"]["answered"] == ["a", "b"]
    assert payload["federation"]["complete"] is True
    assert len(payload["names"]) == 5
    assert all(name.split("/", 1)[0] in ("a", "b") for name in payload["names"])


def test_similar_routes_through_federation(api, node_a):
    name = node_a.archive.names[0]
    payload = api.similar({"name": f"a/{name}", "k": 5})
    assert payload["ok"]
    assert payload["query"] == f"a/{name}"
    assert len(payload["results"]) == 5
    assert payload["federation"]["queried"] == ["a", "b"]


def test_similar_batch_routes_through_federation(api, node_a):
    names = [f"a/{name}" for name in node_a.archive.names[:3]]
    payload = api.similar_batch({"names": names, "k": 4})
    assert payload["ok"] and payload["count"] == 3
    assert [q["query"] for q in payload["queries"]] == names
    assert payload["federation"]["answered"] == ["a", "b"]


def test_statistics_routes_through_federation(api, node_a, node_b):
    payload = api.statistics({
        "names": [f"a/{node_a.archive.names[0]}",
                  f"b/{node_b.archive.names[0]}"]})
    assert payload["ok"] and payload["total_images"] == 2
    assert payload["federation"]["answered"] == ["a", "b"]


def test_federation_nodes_route(api):
    payload = api.federation_nodes()
    assert payload["ok"] and payload["federated"] and payload["count"] == 2
    assert [node["name"] for node in payload["nodes"]] == ["a", "b"]
    assert {"capabilities", "health"} <= set(payload["nodes"][0])


def test_federation_nodes_without_federation(node_a):
    payload = EarthQubeAPI(node_a).federation_nodes()
    assert payload == {"ok": True, "federated": False, "count": 0, "nodes": []}


def test_describe_includes_federation(api):
    payload = api.describe()
    assert payload["ok"]
    assert payload["federation"]["num_nodes"] == 2
    assert payload["archive_patches"] > 0  # local system summary still there


def test_metrics_includes_per_node_latency(api, node_a):
    api.similar({"name": node_a.archive.names[0], "k": 3})
    payload = api.metrics()
    assert set(payload["federation"]["per_node_latency"]) == {"a", "b"}
    # node_a runs its serving tier, so the serving section is live too.
    assert payload["serving"] is not None


def test_federated_error_reporting(api):
    payload = api.similar({"name": "nowhere/nothing"})
    assert not payload["ok"]
    assert payload["error"] == "UnknownPatchError"


def test_federation_only_api_rejects_local_routes(node_a, node_b):
    federation = FederatedEarthQube({"a": node_a, "b": node_b})
    try:
        api = EarthQubeAPI(federation=federation)
        assert api.search({"limit": 2})["ok"]
        payload = api.feedback({"text": "hi"})
        assert not payload["ok"] and payload["error"] == "ValidationError"
    finally:
        federation.close()


def test_payloads_are_json_serializable(api, node_a):
    for payload in (api.search({"limit": 3}),
                    api.similar({"name": node_a.archive.names[0], "k": 3}),
                    api.federation_nodes(),
                    api.metrics(),
                    api.describe()):
        json.dumps(payload)
