"""Gateway batch path: cache -> submit_many -> one coalesced shard scan.

``ServingGateway.similar_images_batch`` must be byte-identical to looping
``similar_images`` (which in turn matches the direct CBIR path), and cache
hits must short-circuit without re-submitting.
"""

import pytest


def pairs(results):
    return [(r.item_id, r.distance) for r in results]


@pytest.fixture(scope="module")
def batch_names(mini_system):
    return mini_system.archive.names[:6]


class TestGatewayBatch:
    def test_equals_single_gateway_queries(self, mini_system, batch_names):
        gateway = mini_system.gateway
        assert gateway is not None
        gateway.cache.invalidate()
        batch = mini_system.similar_images_batch(batch_names, k=5)
        for name, response in zip(batch_names, batch):
            single = mini_system.similar_images(name, k=5)
            assert response.query_name == single.query_name == name
            assert response.radius_used == single.radius_used
            assert pairs(response.results) == pairs(single.results)

    def test_equals_direct_cbir_path(self, mini_system, batch_names):
        batch = mini_system.similar_images_batch(batch_names, k=4)
        direct = mini_system.cbir.query_batch(list(batch_names), k=4)
        for via_gateway, via_cbir in zip(batch, direct):
            assert pairs(via_gateway.results) == pairs(via_cbir.results)
            assert via_gateway.radius_used == via_cbir.radius_used

    def test_radius_mode_equals_direct(self, mini_system, batch_names):
        batch = mini_system.similar_images_batch(batch_names, k=None, radius=3)
        direct = mini_system.cbir.query_batch(list(batch_names), k=None, radius=3)
        for via_gateway, via_cbir in zip(batch, direct):
            assert pairs(via_gateway.results) == pairs(via_cbir.results)

    def test_second_call_served_from_cache(self, mini_system, batch_names):
        gateway = mini_system.gateway
        gateway.cache.invalidate()
        first = mini_system.similar_images_batch(batch_names, k=5)
        hits_before = gateway.cache.stats.hits
        second = mini_system.similar_images_batch(batch_names, k=5)
        assert gateway.cache.stats.hits >= hits_before + len(batch_names)
        for a, b in zip(first, second):
            assert pairs(a.results) == pairs(b.results)

    def test_duplicate_names_share_one_scan(self, mini_system, batch_names):
        gateway = mini_system.gateway
        gateway.cache.invalidate()
        name = batch_names[0]
        batch = mini_system.similar_images_batch([name, name, name], k=5)
        assert pairs(batch[0].results) == pairs(batch[1].results) \
            == pairs(batch[2].results)
