"""Serving-tier fixtures: one small bootstrapped system with the gateway
enabled through the config flag (exactly how production would turn it on)."""

from __future__ import annotations

import pytest

from repro.config import (
    ArchiveConfig,
    EarthQubeConfig,
    IndexConfig,
    MiLaNConfig,
    ServingConfig,
    TrainConfig,
)
from repro.earthqube import EarthQube


@pytest.fixture(scope="module")
def serving_config() -> ServingConfig:
    return ServingConfig(enabled=True, num_shards=4, batch_max_size=8,
                         batch_max_delay_ms=1.0, cache_entries=256)


@pytest.fixture(scope="module")
def mini_system(serving_config) -> EarthQube:
    """A small but fully bootstrapped system, gateway on from bootstrap."""
    config = EarthQubeConfig(
        archive=ArchiveConfig(num_patches=72, seed=11),
        milan=MiLaNConfig(num_bits=32, hidden_sizes=(48,)),
        train=TrainConfig(epochs=4, triplets_per_epoch=256, batch_size=64, seed=5),
        index=IndexConfig(hamming_radius=2, mih_tables=4),
        serving=serving_config,
    )
    system = EarthQube.bootstrap(config, store_images=False)
    yield system
    system.disable_serving()
