"""End-to-end gateway tests: the serving tier must answer exactly like the
direct single-threaded path — same response types, byte-identical rankings —
while adding caching, invalidation, and observability."""

from __future__ import annotations

import json
from datetime import datetime

import pytest

from repro.bigearthnet.patch import Patch
from repro.bigearthnet.synthesis import PatchSynthesizer
from repro.config import ServingConfig
from repro.earthqube import EarthQubeAPI, QuerySpec
from repro.geo.bbox import BoundingBox
from repro.serving import ServingGateway


def _new_patch(config, name, labels=("Coniferous forest", "Water bodies")):
    synth = PatchSynthesizer(config)
    s2, s1 = synth.synthesize(labels, "Summer", 777)
    return Patch(
        name=name, labels=labels, country="Finland",
        bbox=BoundingBox(west=25.0, south=62.0, east=25.012, north=62.011),
        acquisition_date=datetime(2018, 7, 20, 10, 30), season="Summer",
        s2_bands=s2, s1_bands=s1)


class TestBootstrapFlag:
    def test_config_flag_enables_gateway(self, mini_system):
        assert mini_system.gateway is not None
        assert mini_system.describe()["serving"]["num_shards"] == 4

    def test_gateway_is_wired_into_query_path(self, mini_system):
        before = mini_system.gateway.metrics.histogram("similar.total").count
        mini_system.similar_images(mini_system.archive.names[0], k=3)
        after = mini_system.gateway.metrics.histogram("similar.total").count
        assert after == before + 1


class TestByteIdenticalResults:
    @pytest.mark.parametrize("num_shards", [1, 8])
    def test_knn_matches_direct_path_across_shard_counts(
            self, mini_system, serving_config, num_shards):
        """The acceptance criterion: K=8 == K=1 == unsharded direct path."""
        names = mini_system.archive.names[:12]
        direct = [mini_system.cbir.query_by_name(name, k=10) for name in names]
        with ServingGateway(
                mini_system,
                ServingConfig(enabled=True, num_shards=num_shards,
                              batch_max_size=8)) as gateway:
            for name, expected in zip(names, direct):
                got = gateway.similar_images(name, k=10)
                assert got.query_name == expected.query_name
                assert got.results == expected.results
                assert got.radius_used == expected.radius_used

    def test_radius_query_matches_direct_path(self, mini_system):
        name = mini_system.archive.names[5]
        direct = mini_system.cbir.query_by_name(name, radius=6, k=None)
        got = mini_system.gateway.similar_images(name, k=None, radius=6)
        assert got.results == direct.results
        assert got.radius_used == direct.radius_used == 6

    def test_new_image_query_matches_direct_path(self, mini_system):
        patch = _new_patch(mini_system.config.archive, "QUERY_ONLY_1")
        direct = mini_system.cbir.query_by_patch(patch, k=5)
        got = mini_system.gateway.similar_to_new_image(patch, k=5)
        assert got.results == direct.results

    def test_k_larger_than_corpus(self, mini_system):
        name = mini_system.archive.names[0]
        results = mini_system.similar_images(name, k=100_000)
        # Everything except the query itself comes back, nearest first.
        assert len(results.results) == len(mini_system.cbir) - 1
        assert name not in results.names

    def test_metadata_search_matches_direct_path(self, mini_system):
        spec = QuerySpec(seasons=("Summer",), limit=5)
        direct = mini_system.search_service.search(spec)
        got = mini_system.gateway.search(spec)
        assert got.names == direct.names
        assert got.total_matches == direct.total_matches


class TestCachingBehaviour:
    def test_repeat_query_hits_cache(self, mini_system):
        gateway = mini_system.gateway
        gateway.cache.invalidate()
        name = mini_system.archive.names[1]
        hits_before = gateway.cache.stats.hits
        first = mini_system.similar_images(name, k=5)
        second = mini_system.similar_images(name, k=5)
        assert second.results == first.results
        assert gateway.cache.stats.hits == hits_before + 1

    def test_cached_response_is_not_aliased(self, mini_system):
        name = mini_system.archive.names[2]
        first = mini_system.similar_images(name, k=5)
        first.results.clear()  # a rude caller mutates its response
        second = mini_system.similar_images(name, k=5)
        assert len(second.results) == 5

    def test_search_response_cached_and_copied(self, mini_system):
        gateway = mini_system.gateway
        spec = QuerySpec(satellites=("S2",), limit=3)
        first = mini_system.search(spec)
        misses = gateway.cache.stats.misses
        second = mini_system.search(spec)
        assert gateway.cache.stats.misses == misses  # second was a hit
        assert second.names == first.names
        assert second.documents is not first.documents

    def test_ingest_invalidates_cache(self, mini_system):
        """The ISSUE's edge case: results must reflect a fresh ingest."""
        gateway = mini_system.gateway
        name = mini_system.archive.names[3]
        mini_system.similar_images(name, k=len(mini_system.cbir) - 1)
        assert len(gateway.cache) > 0
        invalidations = gateway.cache.stats.invalidations

        patch = _new_patch(mini_system.config.archive, "NEW_SERVING_1")
        mini_system.ingest_new_patch(patch)
        assert len(gateway.cache) == 0
        assert gateway.cache.stats.invalidations == invalidations + 1

        # The new patch is retrievable through the gateway immediately and
        # appears in a full-corpus ranking computed after the ingest.
        response = mini_system.similar_images("NEW_SERVING_1", k=5)
        assert len(response.results) == 5
        full = mini_system.similar_images(name, k=len(mini_system.cbir) - 1)
        assert "NEW_SERVING_1" in full.names


class TestObservability:
    def test_metrics_snapshot_shape(self, mini_system):
        mini_system.similar_images(mini_system.archive.names[0], k=3)
        snapshot = mini_system.gateway.metrics_snapshot()
        assert snapshot["shards"]["count"] == 4
        assert sum(snapshot["shards"]["sizes"]) == len(mini_system.cbir)
        assert snapshot["cache"]["hits"] + snapshot["cache"]["misses"] > 0
        assert snapshot["batcher"]["requests"] >= 1
        latency = snapshot["latency"]["similar.total"]
        for key in ("count", "p50_ms", "p95_ms", "p99_ms", "qps"):
            assert key in latency
        json.dumps(snapshot)

    def test_api_metrics_endpoint(self, mini_system):
        api = EarthQubeAPI(mini_system)
        out = api.metrics()
        assert out["ok"] and out["serving"] is not None
        json.dumps(out)

    def test_api_metrics_without_serving(self, mini_system):
        gateway = mini_system.gateway
        try:
            mini_system.gateway = None
            out = EarthQubeAPI(mini_system).metrics()
            assert out["ok"] is True
            assert out["serving"] is None
            # The workload tier reports regardless of the serving gateway.
            assert "workload" in out
        finally:
            mini_system.gateway = gateway

    def test_describe_reports_serving(self, mini_system):
        info = mini_system.describe()
        assert info["serving"]["shard_backend"] == "linear"
        assert info["serving"]["indexed_items"] == len(mini_system.cbir)
