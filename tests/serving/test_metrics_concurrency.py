"""Concurrent metrics: hammered counters/histograms stay exact, snapshots
stay consistent, and labeled families keep their series apart.

Satellite of the observability PR: the registry is written from the
micro-batch worker, the shard pool, and the federation scatter threads at
once, so totals must be exact under contention and a scrape must never pair
a post-increment hit count with a pre-increment lookup count.
"""

from __future__ import annotations

import threading

from repro.serving.cache import QueryResultCache
from repro.serving.metrics import Counter, LatencyHistogram, MetricsRegistry


def _hammer(n_threads: int, per_thread: int, work) -> None:
    start = threading.Barrier(n_threads)

    def run(thread_index: int) -> None:
        start.wait()
        for i in range(per_thread):
            work(thread_index, i)

    threads = [threading.Thread(target=run, args=(t,))
               for t in range(n_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


class TestConcurrentPrimitives:
    def test_counter_total_is_exact_under_contention(self):
        counter = Counter()
        _hammer(8, 2000, lambda t, i: counter.increment())
        assert counter.value == 8 * 2000

    def test_histogram_count_total_and_quantiles(self):
        histogram = LatencyHistogram(window=4096)
        _hammer(8, 500, lambda t, i: histogram.record((i % 100 + 1) / 1000.0))
        assert histogram.count == 8 * 500
        assert histogram.total_seconds > 0.0
        summary = histogram.summary()
        assert summary["count"] == 4000
        assert (0.0 < summary["p50_ms"] <= summary["p95_ms"]
                <= summary["p99_ms"] <= summary["max_ms"])

    def test_window_eviction_keeps_lifetime_count(self):
        histogram = LatencyHistogram(window=16)
        _hammer(4, 100, lambda t, i: histogram.record(0.001))
        histogram.record(10.0)  # only windowed samples shape quantiles
        summary = histogram.summary()
        assert summary["count"] == 401
        assert summary["max_ms"] == 10000.0
        for _ in range(16):
            histogram.record(0.002)  # evict the 10 s outlier
        assert histogram.summary()["max_ms"] == 2.0
        assert histogram.count == 401 + 16

    def test_registry_access_is_safe_and_series_exact(self):
        registry = MetricsRegistry()

        def work(thread_index: int, i: int) -> None:
            registry.counter("events").increment()
            registry.counter("node.calls", node=f"n{thread_index % 2}").increment()
            registry.histogram("stage").record(0.001)

        _hammer(8, 300, work)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["events"] == 2400
        assert snapshot["latency"]["stage"]["count"] == 2400
        series = snapshot["families"]["counters"]["node.calls"]
        assert {entry["labels"]["node"]: entry["value"]
                for entry in series} == {"n0": 1200, "n1": 1200}


class TestSnapshotConsistency:
    def test_scrapes_never_see_hits_exceed_lookups(self):
        cache = QueryResultCache(max_entries=64, ttl_seconds=60.0)
        cache.put("key", "value")
        stop = threading.Event()
        violations: list[dict] = []

        def reader() -> None:
            while not stop.is_set():
                stats = cache.stats_snapshot()
                if stats["hits"] + stats["misses"] > 0:
                    ratio = stats["hits"] / (stats["hits"] + stats["misses"])
                    if abs(ratio - stats["hit_ratio"]) > 1e-9:
                        violations.append(stats)

        scraper = threading.Thread(target=reader)
        scraper.start()
        _hammer(4, 2000, lambda t, i: cache.get("key" if i % 2 else "miss"))
        stop.set()
        scraper.join()
        assert violations == []
        stats = cache.stats_snapshot()
        assert stats["hits"] == 4000
        assert stats["misses"] == 4000
        assert stats["entries"] == 1

    def test_registry_snapshot_is_consistent_per_metric(self):
        registry = MetricsRegistry()
        stop = threading.Event()
        bad: list[tuple] = []

        def writer() -> None:
            while not stop.is_set():
                # Lockstep pair: hits is incremented before lookups, so any
                # consistent read observes hits <= lookups... only if the
                # scrape reads each counter's committed value.  (A torn read
                # of a single counter would also break the exactness checks.)
                registry.counter("pair.lookups").increment()
                registry.counter("pair.hits").increment()

        def scraper() -> None:
            while not stop.is_set():
                snapshot = registry.snapshot()
                hits = snapshot["counters"].get("pair.hits", 0)
                lookups = snapshot["counters"].get("pair.lookups", 0)
                if hits > lookups:
                    bad.append((hits, lookups))

        threads = [threading.Thread(target=writer),
                   threading.Thread(target=scraper)]
        for thread in threads:
            thread.start()
        import time
        time.sleep(0.3)
        stop.set()
        for thread in threads:
            thread.join()
        assert bad == []


class TestLabeledFamilies:
    def test_labeled_and_unlabeled_series_are_distinct(self):
        registry = MetricsRegistry()
        registry.counter("node.failures").increment(5)
        registry.counter("node.failures", node="a").increment(2)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["node.failures"] == 5
        assert snapshot["families"]["counters"]["node.failures"] == [
            {"labels": {"node": "a"}, "value": 2}]

    def test_labeled_family_projection(self):
        registry = MetricsRegistry()
        registry.histogram("node.latency", node="b").record(0.002)
        registry.histogram("node.latency", node="a").record(0.001)
        registry.histogram("node.latency", node="a").record(0.003)
        family = registry.labeled_family("node.latency", "node")
        assert list(family) == ["a", "b"]  # sorted by label value
        assert family["a"]["count"] == 2
        assert family["b"]["count"] == 1

    def test_dotted_prefix_family_still_reads_unlabeled_series(self):
        registry = MetricsRegistry()
        registry.histogram("node.a").record(0.001)
        registry.histogram("node.latency", node="a").record(0.001)
        family = registry.family("node")
        assert list(family) == ["a"]  # labeled series stay out

    def test_snapshot_families_are_json_shaped(self):
        import json

        registry = MetricsRegistry()
        registry.counter("node.skipped", node="a").increment()
        registry.gauge("shard.depth", shard="0").set(3)
        registry.histogram("node.latency", node="a").record(0.001)
        json.dumps(registry.snapshot())
