"""Unit tests for the serving tier: sharding, batching, caching, metrics.

The central invariant mirrors the index suite's: a K-shard scatter-gather
index returns *identical* results to the monolithic indexes for every
query — sharding changes cost, never answers.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.errors import EmptyIndexError, ValidationError
from repro.index import LinearScanIndex, MultiIndexHashing, pack_bits
from repro.serving import (
    BatcherClosedError,
    CodeQuery,
    Counter,
    Gauge,
    LatencyHistogram,
    MetricsRegistry,
    MicroBatcher,
    QueryResultCache,
    ShardedHammingIndex,
    canonical_code_key,
)

NUM_BITS = 32


def random_codes(rng, n, k=NUM_BITS):
    bits = (rng.random((n, k)) < 0.5).astype(np.uint8)
    return pack_bits(bits)


@pytest.fixture()
def corpus(rng):
    codes = random_codes(rng, 300)
    ids = [f"p{i}" for i in range(300)]
    scan = LinearScanIndex(NUM_BITS)
    scan.build(ids, codes)
    return ids, codes, scan


class TestShardedIndex:
    @pytest.mark.parametrize("num_shards", [1, 2, 3, 8])
    @pytest.mark.parametrize("backend", ["linear", "mih"])
    def test_knn_identical_across_shard_counts(self, corpus, num_shards, backend):
        ids, codes, scan = corpus
        with ShardedHammingIndex(NUM_BITS, num_shards, backend=backend) as sharded:
            sharded.build(ids, codes)
            for qi in (0, 17, 150, 299):
                assert sharded.search_knn(codes[qi], 15) == scan.search_knn(codes[qi], 15)

    @pytest.mark.parametrize("num_shards", [1, 4])
    def test_radius_identical_to_linear_scan(self, corpus, num_shards):
        ids, codes, scan = corpus
        with ShardedHammingIndex(NUM_BITS, num_shards) as sharded:
            sharded.build(ids, codes)
            for radius in (0, 5, 12):
                assert (sharded.search_radius(codes[3], radius)
                        == scan.search_radius(codes[3], radius))

    def test_matches_mih_tie_break(self, corpus):
        """The merged (distance, insertion row) order is the MIH order too."""
        ids, codes, _ = corpus
        mih = MultiIndexHashing(NUM_BITS, 4)
        mih.build(ids, codes)
        with ShardedHammingIndex(NUM_BITS, 8) as sharded:
            sharded.build(ids, codes)
            assert sharded.search_knn(codes[42], 25) == mih.search_knn(codes[42], 25)

    def test_empty_shards_are_harmless(self, rng):
        """Fewer items than shards: some shards stay empty, results exact."""
        codes = random_codes(rng, 3)
        ids = ["a", "b", "c"]
        scan = LinearScanIndex(NUM_BITS)
        scan.build(ids, codes)
        with ShardedHammingIndex(NUM_BITS, 8) as sharded:
            sharded.build(ids, codes)
            assert sharded.shard_sizes.count(0) == 5
            assert sharded.search_knn(codes[0], 2) == scan.search_knn(codes[0], 2)
            assert sharded.search_radius(codes[0], NUM_BITS) \
                == scan.search_radius(codes[0], NUM_BITS)

    def test_k_larger_than_corpus_returns_everything(self, corpus):
        ids, codes, scan = corpus
        with ShardedHammingIndex(NUM_BITS, 4) as sharded:
            sharded.build(ids, codes)
            results = sharded.search_knn(codes[0], 10_000)
            assert len(results) == len(ids)
            assert results == scan.search_knn(codes[0], 10_000)

    def test_incremental_add_equals_rebuild(self, rng):
        codes = random_codes(rng, 60)
        ids = [f"p{i}" for i in range(60)]
        with ShardedHammingIndex(NUM_BITS, 4) as incremental, \
                ShardedHammingIndex(NUM_BITS, 4) as rebuilt:
            incremental.build(ids[:40], codes[:40])
            for i in range(40, 60):
                incremental.add(ids[i], codes[i])
            rebuilt.build(ids, codes)
            for qi in (0, 45, 59):
                assert (incremental.search_knn(codes[qi], 12)
                        == rebuilt.search_knn(codes[qi], 12))

    def test_batch_with_mixed_jobs(self, corpus):
        ids, codes, scan = corpus
        jobs = [CodeQuery(code=codes[0], k=5),
                CodeQuery(code=codes[1], radius=8),
                CodeQuery(code=codes[2], k=1)]
        with ShardedHammingIndex(NUM_BITS, 4) as sharded:
            sharded.build(ids, codes)
            batch = sharded.search_batch(jobs)
        assert batch[0] == scan.search_knn(codes[0], 5)
        assert batch[1] == scan.search_radius(codes[1], 8)
        assert batch[2] == scan.search_knn(codes[2], 1)

    def test_empty_index_raises(self):
        with ShardedHammingIndex(NUM_BITS, 4) as sharded:
            with pytest.raises(EmptyIndexError):
                sharded.search_knn(np.zeros(1, dtype=np.uint64), 1)

    def test_validation(self):
        with pytest.raises(ValidationError):
            ShardedHammingIndex(33, 4)
        with pytest.raises(ValidationError):
            ShardedHammingIndex(NUM_BITS, 0)
        with pytest.raises(ValidationError):
            ShardedHammingIndex(NUM_BITS, 4, backend="faiss")
        with pytest.raises(ValidationError):
            CodeQuery(code=np.zeros(1, dtype=np.uint64))  # neither k nor radius
        with pytest.raises(ValidationError):
            CodeQuery(code=np.zeros(1, dtype=np.uint64), k=3, radius=1)
        with pytest.raises(ValidationError):
            CodeQuery(code=np.zeros(1, dtype=np.uint64), k=0)
        with pytest.raises(ValidationError):
            CodeQuery(code=np.zeros(1, dtype=np.uint64), radius=-1)


class TestMicroBatcher:
    def test_coalesces_submit_many_into_batches(self, corpus):
        ids, codes, scan = corpus
        with ShardedHammingIndex(NUM_BITS, 4) as sharded:
            sharded.build(ids, codes)
            with MicroBatcher(sharded.search_batch, max_batch_size=8,
                              max_wait_s=0.01) as batcher:
                futures = batcher.submit_many(
                    [CodeQuery(code=codes[i], k=5) for i in range(40)])
                results = [f.result(timeout=10) for f in futures]
                stats = batcher.stats
        for i, result in enumerate(results):
            assert result == scan.search_knn(codes[i], 5)
        assert stats["requests"] == 40
        assert stats["batches"] < 40  # coalescing actually happened
        assert stats["largest_batch"] <= 8

    def test_concurrent_submission_from_many_threads(self, corpus):
        """The ISSUE's concurrency edge case: parallel submitters, all
        results exact, every request accounted for."""
        ids, codes, scan = corpus
        num_threads, per_thread = 8, 10
        errors: list[Exception] = []
        barrier = threading.Barrier(num_threads)

        with ShardedHammingIndex(NUM_BITS, 4) as sharded:
            sharded.build(ids, codes)
            with MicroBatcher(sharded.search_batch, max_batch_size=16,
                              max_wait_s=0.005) as batcher:
                def worker(offset: int) -> None:
                    try:
                        barrier.wait(timeout=10)
                        for i in range(offset, offset + per_thread):
                            got = batcher.submit(
                                CodeQuery(code=codes[i], k=7)).result(timeout=10)
                            if got != scan.search_knn(codes[i], 7):
                                raise AssertionError(f"wrong result for query {i}")
                    except Exception as exc:  # surfaced after join
                        errors.append(exc)

                threads = [threading.Thread(target=worker, args=(t * per_thread,))
                           for t in range(num_threads)]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join(timeout=30)
                stats = batcher.stats
        assert not errors
        assert stats["requests"] == num_threads * per_thread
        assert stats["queue_depth"] == 0

    def test_batch_failure_propagates_to_every_waiter(self):
        def explode(requests):
            raise RuntimeError("scan failed")

        with MicroBatcher(explode, max_batch_size=4, max_wait_s=0.01) as batcher:
            futures = batcher.submit_many([1, 2, 3])
            for future in futures:
                with pytest.raises(RuntimeError, match="scan failed"):
                    future.result(timeout=10)

    def test_result_count_mismatch_is_an_error(self):
        with MicroBatcher(lambda requests: [0], max_batch_size=4,
                          max_wait_s=0.0) as batcher:
            futures = batcher.submit_many([1, 2])
            with pytest.raises(RuntimeError, match="results"):
                for future in futures:
                    future.result(timeout=10)

    def test_submit_after_close_raises(self):
        batcher = MicroBatcher(lambda requests: requests, max_batch_size=2)
        batcher.close()
        with pytest.raises(BatcherClosedError):
            batcher.submit(1)

    def test_close_drains_queued_work(self):
        with MicroBatcher(lambda requests: [r * 2 for r in requests],
                          max_batch_size=4, max_wait_s=0.05) as batcher:
            futures = batcher.submit_many(list(range(10)))
        # context exit closes with drain=True: everything completed
        assert [f.result(timeout=10) for f in futures] == [r * 2 for r in range(10)]

    def test_validation(self):
        with pytest.raises(ValidationError):
            MicroBatcher(lambda r: r, max_batch_size=0)
        with pytest.raises(ValidationError):
            MicroBatcher(lambda r: r, max_wait_s=-1.0)


class TestQueryResultCache:
    def test_hit_miss_and_stats(self):
        cache = QueryResultCache(max_entries=8, ttl_seconds=60.0)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert cache.stats.hit_ratio == 0.5

    def test_lru_eviction_order(self):
        cache = QueryResultCache(max_entries=2, ttl_seconds=60.0)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a; b is now least recent
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert cache.stats.evictions == 1

    def test_ttl_expiry_with_fake_clock(self):
        now = [0.0]
        cache = QueryResultCache(max_entries=8, ttl_seconds=10.0,
                                 clock=lambda: now[0])
        cache.put("a", 1)
        now[0] = 9.9
        assert cache.get("a") == 1
        now[0] = 10.0
        assert cache.get("a") is None
        assert cache.stats.expirations == 1

    def test_purge_expired(self):
        now = [0.0]
        cache = QueryResultCache(max_entries=8, ttl_seconds=5.0,
                                 clock=lambda: now[0])
        cache.put("a", 1)
        cache.put("b", 2)
        now[0] = 6.0
        assert cache.purge_expired() == 2
        assert len(cache) == 0

    def test_invalidate_drops_everything(self):
        cache = QueryResultCache(max_entries=8, ttl_seconds=60.0)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.invalidate() == 2
        assert len(cache) == 0 and cache.get("a") is None
        assert cache.stats.invalidations == 1

    def test_zero_entries_disables_caching(self):
        cache = QueryResultCache(max_entries=0, ttl_seconds=60.0)
        cache.put("a", 1)
        assert cache.get("a") is None and len(cache) == 0

    def test_canonical_code_key_discriminates(self):
        code = np.array([7, 9], dtype=np.uint64)
        same = canonical_code_key(code, k=5, radius=None)
        assert canonical_code_key(code.copy(), k=5, radius=None) == same
        assert canonical_code_key(code, k=6, radius=None) != same
        assert canonical_code_key(code, k=None, radius=5) != same
        other = np.array([7, 10], dtype=np.uint64)
        assert canonical_code_key(other, k=5, radius=None) != same

    def test_validation(self):
        with pytest.raises(ValidationError):
            QueryResultCache(max_entries=-1)
        with pytest.raises(ValidationError):
            QueryResultCache(ttl_seconds=0.0)


class TestMetrics:
    def test_counter_and_gauge(self):
        counter, gauge = Counter(), Gauge()
        counter.increment()
        counter.increment(4)
        gauge.set(7.5)
        assert counter.value == 5 and gauge.value == 7.5

    def test_histogram_percentiles(self):
        histogram = LatencyHistogram(window=1000)
        for ms in range(1, 101):  # 1ms .. 100ms
            histogram.record(ms / 1e3)
        assert histogram.count == 100
        summary = histogram.summary()
        assert summary["p50_ms"] == pytest.approx(50.5, abs=1.0)
        assert summary["p95_ms"] == pytest.approx(95.0, abs=1.5)
        assert summary["p99_ms"] == pytest.approx(99.0, abs=1.5)
        assert summary["max_ms"] == pytest.approx(100.0)

    def test_histogram_window_slides(self):
        histogram = LatencyHistogram(window=10)
        for _ in range(50):
            histogram.record(1.0)
        for _ in range(10):
            histogram.record(2.0)
        assert histogram.count == 60  # lifetime count keeps growing
        assert histogram.percentile(50) == 2.0  # window holds recent only

    def test_registry_timer_and_snapshot(self):
        registry = MetricsRegistry()
        with registry.timer("stage"):
            pass
        registry.counter("events").increment(3)
        registry.gauge("depth").set(2)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["events"] == 3
        assert snapshot["gauges"]["depth"] == 2.0
        assert snapshot["latency"]["stage"]["count"] == 1
        assert "qps" in snapshot["latency"]["stage"]
        import json
        json.dumps(snapshot)  # JSON-compatible end to end
