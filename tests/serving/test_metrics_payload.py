"""The `GET /metrics` payload surfaces cache and micro-batcher stats.

Latency histograms/QPS were always exported; cache hit/miss accounting and
batch-coalescing stats must appear both as structured sections and
flattened into the standard counters/gauges maps (for flat-series
scrapers).
"""

from __future__ import annotations

import json

from repro.earthqube.api import EarthQubeAPI


def test_metrics_payload_has_cache_and_batcher_sections(mini_system):
    api = EarthQubeAPI(mini_system)
    name = mini_system.archive.names[0]
    api.similar({"name": name, "k": 5})   # miss
    api.similar({"name": name, "k": 5})   # hit

    serving = api.metrics()["serving"]
    assert serving["cache"]["hits"] >= 1
    assert serving["cache"]["misses"] >= 1
    assert serving["batcher"]["requests"] >= 1
    assert serving["batcher"]["batches"] >= 1


def test_cache_and_batch_stats_flattened_into_counters_and_gauges(mini_system):
    api = EarthQubeAPI(mini_system)
    name = mini_system.archive.names[1]
    api.similar({"name": name, "k": 5})
    api.similar({"name": name, "k": 5})

    serving = api.metrics()["serving"]
    counters, gauges = serving["counters"], serving["gauges"]
    for key in ("cache.hits", "cache.misses", "cache.evictions",
                "cache.expirations", "cache.invalidations",
                "batch.requests", "batch.batches"):
        assert key in counters, key
    for key in ("cache.hit_ratio", "batch.mean_size", "batch.largest",
                "batch.queue_depth"):
        assert key in gauges, key
    assert counters["cache.hits"] == serving["cache"]["hits"]
    assert counters["batch.requests"] == serving["batcher"]["requests"]
    assert gauges["batch.mean_size"] == serving["batcher"]["mean_batch_size"]


def test_flattened_stats_track_traffic(mini_system):
    api = EarthQubeAPI(mini_system)
    before = api.metrics()["serving"]["counters"]["cache.misses"]
    api.similar({"name": mini_system.archive.names[2], "k": 4})
    after = api.metrics()["serving"]["counters"]["cache.misses"]
    assert after >= before  # a fresh query can only add lookups


def test_metrics_payload_is_json_serializable(mini_system):
    json.dumps(EarthQubeAPI(mini_system).metrics())
