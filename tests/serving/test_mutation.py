"""Store-level mutation through the serving tier: on_delete / on_update.

Regression suite for the stale-cache bug: the gateway's generation used to
bump only in ``on_ingest``, so a deletion or re-embedding left cached
results — and the memoized ``RowFilter`` masks of metadata filters —
serving the pre-mutation corpus forever.
"""

import numpy as np

from repro.earthqube import QuerySpec


def shaped(response):
    return [(str(r.item_id), r.distance) for r in response.results]


def direct_ranked(system, name, k, spec=None):
    """The direct (gateway-less) path answering the same question."""
    return shaped(system.cbir.query_by_name(
        name, k=k, filter=system.row_filter_for(spec)))


class TestOnDelete:
    def test_cached_result_invalidated(self, mini_system):
        gateway = mini_system.gateway
        names = mini_system.archive.names
        query = names[0]
        first = gateway.similar_images(query, k=8)
        victim = first.names[0]
        # Warm the cache: the same query now answers from it.
        hits_before = gateway.cache.stats.hits
        gateway.similar_images(query, k=8)
        assert gateway.cache.stats.hits > hits_before

        mini_system.delete_image(victim)
        after = gateway.similar_images(query, k=8)
        assert victim not in after.names
        assert shaped(after) == direct_ranked(mini_system, query, 8)

    def test_generation_bumped_and_metrics_counted(self, mini_system):
        gateway = mini_system.gateway
        generation = gateway._generation
        victim = [n for n in mini_system.archive.names
                  if mini_system.cbir.has(n)][-1]
        mini_system.delete_image(victim)
        assert gateway._generation == generation + 1
        snapshot = gateway.metrics_snapshot()
        assert snapshot["counters"]["delete.items"] >= 1
        assert snapshot["gauges"]["index.dead_rows"] == \
            mini_system.cbir.dead_rows
        assert snapshot["gauges"]["index.alive"] == len(mini_system.cbir)

    def test_memoized_filter_mask_invalidated(self, mini_system):
        gateway = mini_system.gateway
        spec = QuerySpec(seasons=("Summer", "Autumn", "Winter", "Spring"))
        query = [n for n in mini_system.archive.names
                 if mini_system.cbir.has(n)][0]
        first = gateway.similar_images(query, k=6, filter=spec)
        assert len(first.results) > 0
        # The spec's RowFilter mask is now memoized in the result cache.
        victim = first.names[0]
        mini_system.delete_image(victim)
        again = gateway.similar_images(query, k=6, filter=spec)
        assert victim not in again.names
        assert shaped(again) == direct_ranked(mini_system, query, 6, spec)

    def test_filtered_batch_after_delete(self, mini_system):
        gateway = mini_system.gateway
        spec = QuerySpec(seasons=("Summer", "Autumn", "Winter", "Spring"))
        queries = [n for n in mini_system.archive.names
                   if mini_system.cbir.has(n)][:3]
        before = gateway.similar_images_batch(queries, k=5, filter=spec)
        victim = before[0].names[0]
        mini_system.delete_image(victim)
        after = gateway.similar_images_batch(queries, k=5, filter=spec)
        for query, response in zip(queries, after):
            assert victim not in response.names
            assert shaped(response) == direct_ranked(mini_system, query, 5, spec)


class TestOnUpdate:
    def test_update_changes_embedding_everywhere(self, mini_system):
        gateway = mini_system.gateway
        names = [n for n in mini_system.archive.names
                 if mini_system.cbir.has(n)]
        target, donor = names[0], names[-1]
        old_code = mini_system.cbir.code_of(target).copy()
        query = names[1]
        gateway.similar_images(query, k=8)  # warm the cache

        donor_features = mini_system.extractor.extract(
            mini_system.archive.get(donor))
        summary = mini_system.update_image(target, donor_features)
        assert summary["name"] == target
        new_code = mini_system.cbir.code_of(target)
        assert not np.array_equal(old_code, new_code)
        # The re-embedded image now hashes like the donor.
        assert np.array_equal(new_code, mini_system.cbir.code_of(donor))

        after = gateway.similar_images(query, k=8)
        assert shaped(after) == direct_ranked(mini_system, query, 8)
        snapshot = gateway.metrics_snapshot()
        assert snapshot["counters"]["update.items"] >= 1

    def test_updated_image_still_queryable_by_name(self, mini_system):
        gateway = mini_system.gateway
        names = [n for n in mini_system.archive.names
                 if mini_system.cbir.has(n)]
        target = names[2]
        features = mini_system.extractor.extract(mini_system.archive.get(target))
        mini_system.update_image(target, features)
        response = gateway.similar_images(target, k=4)
        assert target not in response.names  # self-match still dropped
        assert shaped(response) == direct_ranked(mini_system, target, 4)


class TestCoordinatedCompaction:
    def test_compact_index_is_result_neutral_through_gateway(self, mini_system):
        gateway = mini_system.gateway
        names = [n for n in mini_system.archive.names
                 if mini_system.cbir.has(n)]
        for victim in names[10:16]:
            mini_system.delete_image(victim)
        assert mini_system.cbir.dead_rows > 0
        query = names[0]
        spec = QuerySpec(seasons=("Summer", "Autumn", "Winter", "Spring"))
        before = gateway.similar_images(query, k=9)
        before_filtered = gateway.similar_images(query, k=9, filter=spec)

        mini_system.compact_index()
        assert mini_system.cbir.dead_rows == 0
        assert gateway.index.dead_count == 0
        after = gateway.similar_images(query, k=9)
        after_filtered = gateway.similar_images(query, k=9, filter=spec)
        assert shaped(before) == shaped(after)
        assert shaped(before_filtered) == shaped(after_filtered)
        assert gateway.metrics_snapshot()["counters"]["compact.runs"] >= 1
