"""Planner-equivalence suite: every emittable plan vs the linear oracle.

The planner's one hard invariant is that it never trades correctness —
any plan it can emit (linear vs MIH backend, pre vs post filtering, any
probe budget) must return rankings byte-identical to a forced linear
scan.  This suite pins that down on every execution path: direct,
batch, filtered, gateway (cache + batcher + shards), and federated.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import replace

import pytest

from repro.earthqube import QuerySpec
from repro.earthqube.api import EarthQubeAPI
from repro.index.hamming import hamming_distances_to_query

LINEAR_ORACLE = {"backend": "linear"}

FILTERS = [
    QuerySpec(seasons=("Summer",)),
    QuerySpec(seasons=("Winter", "Autumn")),
    QuerySpec(date_from="2017-03-01", date_to="2017-09-30"),
]


def linear_oracle_knn(system, name, k, allowed=None, *, drop_self=True):
    """Brute-force (filtered) ranking straight off the code matrix.

    ``drop_self=False`` keeps the query image in the ranking, matching
    the raw ``query_code`` protocol (name-level entry points drop it).
    """
    names, codes = system.cbir.indexed_items()
    distances = hamming_distances_to_query(codes, system.cbir.code_of(name))
    rows = [row for row, item in enumerate(names)
            if (allowed is None or item in allowed)
            and (not drop_self or item != name)]
    rows.sort(key=lambda row: (distances[row], row))
    return [(names[row], int(distances[row])) for row in rows[:k]]


def shaped(results):
    return [(str(r.item_id), r.distance) for r in results]


def allowed_names(system, spec):
    return set(system.search_service.matching_names(spec))


@contextmanager
def planner_disabled(*systems):
    """Flip the shared planners to the legacy heuristics and back."""
    originals = [system.planner.config for system in systems]
    for system in systems:
        system.planner.config = replace(system.planner.config, enabled=False)
    try:
        yield
    finally:
        for system, config in zip(systems, originals):
            system.planner.config = config


class TestDirectPathEquivalence:
    def test_unfiltered_backends_identical(self, direct_system):
        system = direct_system
        name = system.archive.names[0]
        code = system.cbir.code_of(name)
        expected = linear_oracle_knn(system, name, 10, drop_self=False)
        auto, _ = system.cbir.query_code(code, k=10)
        forced_linear, _ = system.cbir.query_code(code, k=10,
                                                  plan_hint=LINEAR_ORACLE)
        forced_mih, _ = system.cbir.query_code(code, k=10,
                                               plan_hint={"backend": "mih"})
        for results in (auto, forced_linear, forced_mih):
            assert shaped(results) == expected

    @pytest.mark.parametrize("spec", FILTERS, ids=lambda s: s.describe())
    @pytest.mark.parametrize("backend", ["mih", "linear"])
    @pytest.mark.parametrize("strategy", ["auto", "pre", "post"])
    def test_every_filtered_plan_matches_oracle(self, direct_system, spec,
                                                backend, strategy):
        system = direct_system
        name = system.archive.names[2]
        expected = linear_oracle_knn(system, name, 7,
                                     allowed_names(system, spec),
                                     drop_self=False)
        results, _ = system.cbir.query_code(
            system.cbir.code_of(name), k=7,
            filter=system.row_filter_for(spec), strategy=strategy,
            plan_hint={"backend": backend})
        assert shaped(results) == expected

    @pytest.mark.parametrize("spec", FILTERS[:2], ids=lambda s: s.describe())
    def test_radius_plans_match_oracle(self, direct_system, spec):
        system = direct_system
        name = system.archive.names[4]
        row_filter = system.row_filter_for(spec)
        baseline = None
        for strategy in ("pre", "post"):
            for backend in ("mih", "linear"):
                results, used = system.cbir.query_code(
                    system.cbir.code_of(name), radius=3, filter=row_filter,
                    strategy=strategy, plan_hint={"backend": backend})
                current = (shaped(results), used)
                if baseline is None:
                    baseline = current
                assert current == baseline, (strategy, backend)

    def test_legacy_disabled_planner_identical(self, direct_system):
        system = direct_system
        name = system.archive.names[1]
        spec = FILTERS[0]
        row_filter = system.row_filter_for(spec)
        planned = system.cbir.query_by_name(name, k=8, filter=row_filter)
        with planner_disabled(system):
            legacy = system.cbir.query_by_name(name, k=8, filter=row_filter)
        assert shaped(planned.results) == shaped(legacy.results)
        assert planned.radius_used == legacy.radius_used


class TestBatchPathEquivalence:
    def test_batch_matches_per_name_oracle(self, direct_system):
        system = direct_system
        names = list(system.archive.names[:5])
        spec = FILTERS[0]
        allowed = allowed_names(system, spec)
        responses = system.cbir.query_batch(names, k=6,
                                            filter=system.row_filter_for(spec))
        for name, response in zip(names, responses):
            assert shaped(response.results) == \
                linear_oracle_knn(system, name, 6, allowed)

    @pytest.mark.parametrize("backend", ["mih", "linear"])
    def test_forced_batch_backends_identical(self, direct_system, backend):
        import numpy as np
        system = direct_system
        names = list(system.archive.names[:4])
        codes = np.stack([system.cbir.code_of(name) for name in names])
        spec = FILTERS[1]
        row_filter = system.row_filter_for(spec)
        forced = system.cbir.query_codes_batch(
            codes, k=6, filter=row_filter, plan_hint={"backend": backend})
        baseline = system.cbir.query_codes_batch(codes, k=6,
                                                 filter=row_filter)
        assert [(shaped(r), used) for r, used in forced] == \
            [(shaped(r), used) for r, used in baseline]


class TestGatewayPathEquivalence:
    @pytest.mark.parametrize("spec", FILTERS, ids=lambda s: s.describe())
    def test_served_filtered_matches_oracle(self, served_system, spec):
        system = served_system
        name = system.archive.names[1]
        expected = linear_oracle_knn(system, name, 8,
                                     allowed_names(system, spec))
        response = system.similar_images(name, k=8, filter=spec)
        assert shaped(response.results) == expected

    def test_served_unfiltered_matches_oracle(self, served_system):
        system = served_system
        name = system.archive.names[3]
        response = system.similar_images(name, k=10)
        assert shaped(response.results) == linear_oracle_knn(system, name, 10)

    def test_served_batch_matches_oracle(self, served_system):
        system = served_system
        names = list(system.archive.names[:4])
        spec = FILTERS[2]
        allowed = allowed_names(system, spec)
        responses = system.similar_images_batch(names, k=5, filter=spec)
        for name, response in zip(names, responses):
            assert shaped(response.results) == \
                linear_oracle_knn(system, name, 5, allowed)

    @pytest.mark.parametrize("strategy", ["pre", "post"])
    def test_gateway_forced_strategies_identical(self, served_system,
                                                 strategy):
        system = served_system
        name = system.archive.names[2]
        spec = FILTERS[0]
        code = system.cbir.code_of(name)
        baseline = system.gateway.query_code(code, k=6, filter=spec)
        forced = system.gateway.query_code(code, k=6, filter=spec,
                                           strategy=strategy)
        assert (shaped(forced[0]), forced[1]) == \
            (shaped(baseline[0]), baseline[1])


class TestFederatedPathEquivalence:
    def test_federated_filtered_identical_to_legacy(self, federation,
                                                    served_system,
                                                    direct_system):
        name = served_system.archive.names[0]
        spec = FILTERS[0]
        planned = federation.similar_images(f"a/{name}", k=8, filter=spec)
        with planner_disabled(served_system, direct_system):
            legacy = federation.similar_images(f"a/{name}", k=8, filter=spec)
        assert shaped(planned.value.results) == shaped(legacy.value.results)
        assert planned.value.radius_used == legacy.value.radius_used

    def test_federated_batch_identical_to_legacy(self, federation,
                                                 served_system,
                                                 direct_system):
        names = [f"a/{served_system.archive.names[0]}",
                 f"b/{direct_system.archive.names[0]}"]
        spec = FILTERS[2]
        planned = federation.similar_images_batch(names, k=6, filter=spec)
        with planner_disabled(served_system, direct_system):
            legacy = federation.similar_images_batch(names, k=6, filter=spec)
        assert [shaped(r.results) for r in planned.value] == \
            [shaped(r.results) for r in legacy.value]


class TestExplainPlanPayload:
    """The acceptance-criterion payload: chosen plan, >=1 rejected
    alternative with predicted cost, and the measured cost."""

    def _assert_plan_section(self, plan):
        assert plan["chosen"]["plan"]
        assert plan["chosen"]["predicted_ns"] >= 0
        assert len(plan["rejected"]) >= 1
        assert all("predicted_ns" in alt for alt in plan["rejected"])
        assert plan["measured_ns"] >= 0
        assert plan["calibrated"] in (True, False)

    def test_direct_similar_explain_carries_plan(self, direct_system):
        api = EarthQubeAPI(direct_system)
        payload = api.similar({"name": direct_system.archive.names[0],
                               "k": 5, "explain": True,
                               "filter": {"seasons": ["Summer"]}})
        assert payload["ok"], payload
        self._assert_plan_section(payload["explain"]["plan"])

    def test_served_similar_explain_carries_plan(self, served_system):
        api = EarthQubeAPI(served_system)
        served_system.gateway.cache.invalidate()
        payload = api.similar({"name": served_system.archive.names[5],
                               "k": 5, "explain": True})
        assert payload["ok"], payload
        self._assert_plan_section(payload["explain"]["plan"])

    def test_served_cache_hit_reports_cache_plan(self, served_system):
        api = EarthQubeAPI(served_system)
        request = {"name": served_system.archive.names[6], "k": 4,
                   "explain": True}
        api.similar(request)
        payload = api.similar(request)
        assert payload["explain"]["plan"] == {"source": "cache"}

    def test_batch_explain_carries_plan(self, direct_system):
        api = EarthQubeAPI(direct_system)
        payload = api.similar_batch(
            {"names": list(direct_system.archive.names[:3]), "k": 4,
             "explain": True, "filter": {"seasons": ["Summer"]}})
        assert payload["ok"], payload
        self._assert_plan_section(payload["explain"]["plan"])

    def test_filtered_explain_carries_store_plan(self, direct_system):
        api = EarthQubeAPI(direct_system)
        payload = api.similar({"name": direct_system.archive.names[0],
                               "k": 5, "explain": True,
                               "filter": {"seasons": ["Summer"],
                                          "date_from": "2017-01-01",
                                          "date_to": "2017-12-31"}})
        assert payload["ok"], payload
        store_plan = payload["explain"]["store_plan"]
        assert store_plan["chosen"]["order"]
        assert store_plan["rejected"]

    def test_calibrated_gauge_exported(self, served_system):
        api = EarthQubeAPI(served_system)
        api.similar({"name": served_system.archive.names[0], "k": 3})
        snapshot = api.metrics()["serving"]
        assert snapshot["gauges"]["planner.calibrated"] == \
            int(served_system.planner.calibrated)

    def test_planner_summary_in_describe(self, direct_system):
        summary = direct_system.describe()["planner"]
        assert summary["enabled"] is True
        assert set(summary["units"]) == {
            "linear_scan_ns_per_row", "mih_probe_ns_per_bucket",
            "mih_verify_ns_per_candidate", "intersect_ns_per_id",
            "cache_lookup_ns"}
