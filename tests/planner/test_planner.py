"""Unit tests for the cost-based query planner.

Pins down the pricing properties the planner's choices rest on —
monotonicity in corpus size, calibrated-unit loading with default
fallback, forced strategies/backends, the workload estimator taking over
from the analytic model — plus the deprecated-knob override shims.
"""

from __future__ import annotations

import json
import warnings

import pytest

from repro.config import IndexConfig, PlannerConfig
from repro.obs.calibrate import CALIBRATION_VERSION, save_calibration
from repro.obs.workload import WorkloadStats
from repro.planner import (
    DEFAULT_UNITS,
    PhysicalPlan,
    QueryPlanner,
    deprecated_overrides,
    substring_probe_cost,
)

CORPUS_SIZES = (1_000, 10_000, 50_000, 250_000)


def plans_by_key(planner, **kwargs):
    return {plan.key: plan for plan in planner.enumerate_plans(**kwargs)}


class TestPricingMonotonicity:
    """More rows must never price cheaper, for every emittable plan."""

    @pytest.mark.parametrize("selectivity", [None, 0.01, 0.1, 0.5, 1.0])
    def test_knn_plans_monotone_in_corpus_size(self, selectivity):
        planner = QueryPlanner()
        kwargs = dict(k=10, num_bits=64, num_tables=4)
        if selectivity is not None:
            kwargs["selectivity"] = selectivity
        previous: "dict[str, float]" = {}
        for n in CORPUS_SIZES:
            filter_count = (None if selectivity is None
                            else max(1, int(n * selectivity)))
            current = plans_by_key(planner, corpus_size=n,
                                   filter_count=filter_count, **kwargs)
            for key, plan in current.items():
                if key in previous:
                    assert plan.predicted_ns >= previous[key], \
                        f"{key} got cheaper going to {n} rows"
            previous = {key: plan.predicted_ns
                        for key, plan in current.items()}

    def test_radius_plans_monotone_in_corpus_size(self):
        planner = QueryPlanner()
        previous: "dict[str, float]" = {}
        for n in CORPUS_SIZES:
            current = plans_by_key(planner, corpus_size=n, radius=4,
                                   selectivity=0.2,
                                   filter_count=max(1, n // 5),
                                   num_bits=64, num_tables=4)
            for key, plan in current.items():
                if key in previous:
                    assert plan.predicted_ns >= previous[key]
            previous = {key: plan.predicted_ns
                        for key, plan in current.items()}

    def test_linear_cost_scales_with_rows(self):
        planner = QueryPlanner()
        small = plans_by_key(planner, corpus_size=1_000, k=10)
        large = plans_by_key(planner, corpus_size=100_000, k=10)
        assert large["linear:unfiltered"].predicted_ns > \
            10 * small["linear:unfiltered"].predicted_ns


class TestPlanEnumeration:
    def test_every_backend_mode_combination_priced(self):
        planner = QueryPlanner()
        plans = planner.enumerate_plans(corpus_size=5_000, k=10,
                                        selectivity=0.1, filter_count=500)
        assert {plan.key for plan in plans} == {
            "mih:pre", "mih:post", "linear:pre", "linear:post"}
        assert plans == sorted(plans,
                               key=lambda p: (p.predicted_ns, p.key))

    def test_linear_plans_force_exact_scan(self):
        planner = QueryPlanner()
        for plan in planner.enumerate_plans(corpus_size=5_000, k=10):
            if plan.backend == "linear":
                assert plan.probe_budget == 0
            else:
                assert plan.probe_budget >= 64

    def test_highly_selective_filter_prefers_prefilter(self):
        # 1% selectivity: scanning the 100 allowed rows is orders of
        # magnitude cheaper than over-fetching k/s candidates.
        planner = QueryPlanner()
        choice = planner.plan_similarity(corpus_size=10_000, k=10,
                                         selectivity=0.01, filter_count=100)
        assert choice.chosen.filter_mode == "pre"
        assert not choice.forced

    def test_choice_reports_rejected_alternatives(self):
        planner = QueryPlanner()
        choice = planner.plan_similarity(corpus_size=10_000, k=10,
                                         selectivity=0.2, filter_count=2_000)
        assert len(choice.rejected) == 3
        assert all(plan.predicted_ns >= choice.chosen.predicted_ns
                   for plan in choice.rejected)
        explain = choice.explain(measured_ns=123.4)
        assert explain["chosen"]["plan"] == choice.chosen.key
        assert explain["measured_ns"] == 123.4
        json.dumps(explain)

    def test_forced_mode_and_backend_are_honored(self):
        planner = QueryPlanner()
        choice = planner.plan_similarity(corpus_size=10_000, k=10,
                                         selectivity=0.01, filter_count=100,
                                         forced_mode="post",
                                         forced_backend="linear")
        assert choice.chosen.key == "linear:post"
        assert choice.forced
        assert choice.rejected  # alternatives still priced for explain

    def test_unrunnable_forced_backend_falls_back_to_pricing(self):
        planner = QueryPlanner()
        choice = planner.plan_similarity(corpus_size=10_000, k=10,
                                         forced_backend="sharded")
        assert choice.chosen.backend in ("mih", "linear")
        assert not choice.forced

    def test_substring_probe_cost_matches_radius_zero(self):
        # radius 0 probes exactly one bucket per table.
        assert substring_probe_cost(64, 4, 0) == 4
        assert substring_probe_cost(64, 4, 1) > 4


class TestWorkloadEstimator:
    FAMILY = ("mih", "prefilter", "<=10%")

    def _seed(self, workload, count):
        for _ in range(count):
            workload.record(family=self.FAMILY, duration_ms=1.0,
                            costs={"buckets_probed": 40,
                                   "candidates_verified": 90})

    def test_observed_family_beats_analytic_model(self):
        workload = WorkloadStats()
        self._seed(workload, 3)
        planner = QueryPlanner(workload=workload)
        plans = plans_by_key(planner, corpus_size=10_000, k=10,
                             selectivity=0.05, filter_count=500)
        assert plans["mih:pre"].estimator == "workload"
        assert plans["mih:pre"].counters == {"buckets_probed": 40,
                                             "candidates_verified": 90}
        # Cold families keep the analytic model.
        assert plans["mih:post"].estimator == "analytic"

    def test_underobserved_family_stays_analytic(self):
        workload = WorkloadStats()
        self._seed(workload, 2)  # below the evidence threshold
        planner = QueryPlanner(workload=workload)
        plans = plans_by_key(planner, corpus_size=10_000, k=10,
                             selectivity=0.05, filter_count=500)
        assert plans["mih:pre"].estimator == "analytic"


class TestCalibrationLoading:
    def _write(self, path, version=CALIBRATION_VERSION, units=None):
        save_calibration({
            "version": version,
            "units": units or {key: value * 2.0
                               for key, value in DEFAULT_UNITS.items()},
        }, str(path))

    def test_defaults_when_no_calibration_file(self, tmp_path):
        planner = QueryPlanner.from_config(
            PlannerConfig(calibration_path=str(tmp_path / "missing.json")))
        assert planner.calibrated is False
        assert planner.units == DEFAULT_UNITS

    def test_from_config_auto_loads_calibration(self, tmp_path):
        path = tmp_path / "calibration.json"
        self._write(path)
        planner = QueryPlanner.from_config(
            PlannerConfig(calibration_path=str(path)))
        assert planner.calibrated is True
        assert planner.units["linear_scan_ns_per_row"] == \
            2.0 * DEFAULT_UNITS["linear_scan_ns_per_row"]

    def test_version_mismatch_warns_and_keeps_defaults(self, tmp_path):
        path = tmp_path / "calibration.json"
        self._write(path, version=999)
        with pytest.warns(RuntimeWarning, match="unusable calibration"):
            planner = QueryPlanner.from_config(
                PlannerConfig(calibration_path=str(path)))
        assert planner.calibrated is False
        assert planner.units == DEFAULT_UNITS

    def test_invalid_units_warn_and_keep_defaults(self, tmp_path):
        path = tmp_path / "calibration.json"
        bad = dict(DEFAULT_UNITS)
        bad["mih_probe_ns_per_bucket"] = 0.0
        self._write(path, units=bad)
        with pytest.warns(RuntimeWarning, match="unusable calibration"):
            planner = QueryPlanner.from_config(
                PlannerConfig(calibration_path=str(path)))
        assert planner.calibrated is False

    def test_probe_budget_tracks_unit_ratio(self):
        cheap_probes = dict(DEFAULT_UNITS)
        cheap_probes["mih_probe_ns_per_bucket"] = 2.0
        deep = QueryPlanner(cheap_probes, calibrated=True)
        shallow = QueryPlanner()
        assert deep._probe_budget_for(100_000) > \
            shallow._probe_budget_for(100_000)


class TestDeprecatedOverrides:
    def test_default_config_yields_no_overrides_or_warnings(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert deprecated_overrides(IndexConfig()) == {}
            assert deprecated_overrides(None) == {}

    def test_nondefault_knobs_warn_and_override(self):
        config = IndexConfig(prefilter_max_selectivity=0.2,
                             postfilter_overfetch=3.0)
        with pytest.warns(DeprecationWarning) as caught:
            overrides = deprecated_overrides(config)
        assert overrides == {"prefilter_max_selectivity": 0.2,
                             "overfetch_factor": 3.0}
        assert len(caught) == 1
        message = str(caught[0].message)
        assert "IndexConfig.prefilter_max_selectivity" in message
        assert "IndexConfig.postfilter_overfetch" in message

    def test_warn_false_is_silent(self):
        config = IndexConfig(prefilter_max_selectivity=0.2)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            overrides = deprecated_overrides(config, warn=False)
        assert overrides == {"prefilter_max_selectivity": 0.2}

    def test_threshold_override_pins_the_legacy_choice(self):
        # With the deprecated threshold honored, a 30%-selective filter
        # must go post-filter exactly as the legacy heuristic decided —
        # regardless of what pricing would pick.
        planner = QueryPlanner()
        auto = planner.plan_similarity(corpus_size=10_000, k=10,
                                       selectivity=0.3, filter_count=3_000)
        forced = planner.plan_similarity(corpus_size=10_000, k=10,
                                         selectivity=0.3, filter_count=3_000,
                                         forced_mode="post")
        assert forced.chosen.filter_mode == "post"
        assert forced.forced
        assert auto.chosen.predicted_ns <= forced.chosen.predicted_ns

    def test_overfetch_factor_override_sizes_the_fetch(self):
        planner = QueryPlanner()
        default = planner.plan_similarity(corpus_size=10_000, k=10,
                                          selectivity=0.5, filter_count=5_000,
                                          forced_mode="post")
        doubled = planner.plan_similarity(corpus_size=10_000, k=10,
                                          selectivity=0.5, filter_count=5_000,
                                          forced_mode="post",
                                          overfetch_factor=4.0)
        assert doubled.chosen.overfetch == 2 * default.chosen.overfetch


class TestDescribe:
    def test_describe_reports_calibration_state(self):
        planner = QueryPlanner()
        summary = planner.describe()
        assert summary["enabled"] is True
        assert summary["calibrated"] is False
        assert summary["units"] == DEFAULT_UNITS
        assert summary["workload_attached"] is False

    def test_physical_plan_dict_shapes(self):
        plan = PhysicalPlan(backend="mih", filter_mode="post", overfetch=40,
                            probe_budget=128, predicted_ns=1234.5,
                            predicted_counters=(("buckets_probed", 16),))
        as_dict = plan.as_dict()
        assert as_dict["plan"] == "mih:post"
        assert as_dict["overfetch"] == 40
        assert as_dict["probe_budget"] == 128
        assert plan.summary() == {"backend": "mih", "filter_mode": "post"}
