"""Planner fixtures: one served system plus a two-node federation.

The equivalence suite needs every execution path live — direct CBIR,
gateway (cache + batcher + shards), and a federation scatter — so one
node serves through MIH shards and the other answers directly.
"""

from __future__ import annotations

import pytest

from repro.config import (
    ArchiveConfig,
    EarthQubeConfig,
    IndexConfig,
    MiLaNConfig,
    ServingConfig,
    TrainConfig,
)
from repro.earthqube import EarthQube


def _bootstrap(seed: int, *, serving: bool = False,
               shard_backend: str = "mih") -> EarthQube:
    config = EarthQubeConfig(
        archive=ArchiveConfig(num_patches=56, seed=seed),
        milan=MiLaNConfig(num_bits=32, hidden_sizes=(48,)),
        train=TrainConfig(epochs=2, triplets_per_epoch=128, batch_size=64),
        index=IndexConfig(hamming_radius=2, mih_tables=4),
        serving=ServingConfig(enabled=serving, num_shards=2,
                              batch_max_delay_ms=0.5, cache_entries=128,
                              shard_backend=shard_backend),
    )
    return EarthQube.bootstrap(config, store_images=False)


@pytest.fixture(scope="module")
def served_system() -> EarthQube:
    """A system answering through MIH-backed gateway shards."""
    system = _bootstrap(73, serving=True)
    yield system
    system.disable_serving()


@pytest.fixture(scope="module")
def direct_system() -> EarthQube:
    """A system answering on the direct (gateway-less) path."""
    return _bootstrap(74)


@pytest.fixture(scope="module")
def federation(served_system, direct_system):
    """Two-node federation: served node 'a' plus direct node 'b'."""
    fed = EarthQube.federate({"a": served_system, "b": direct_system})
    yield fed
    fed.close()
