"""Tests for the CLC nomenclature and the label-char codec."""

import pytest
from hypothesis import given, strategies as st

from repro.bigearthnet import BIGEARTHNET_LABELS, LabelCharCodec, get_nomenclature
from repro.bigearthnet.clc import LEVEL1, LEVEL2
from repro.errors import CodecError, UnknownLabelError


@pytest.fixture(scope="module")
def nomenclature():
    return get_nomenclature()


@pytest.fixture(scope="module")
def codec():
    return LabelCharCodec()


class TestNomenclature:
    def test_43_classes(self, nomenclature):
        assert len(nomenclature) == 43
        assert len(BIGEARTHNET_LABELS) == 43

    def test_unique_names_and_codes(self, nomenclature):
        names = [c.name for c in nomenclature]
        codes = [c.code for c in nomenclature]
        assert len(set(names)) == 43
        assert len(set(codes)) == 43

    def test_hierarchy_navigation(self, nomenclature):
        cls = nomenclature.by_name("Coniferous forest")
        assert cls.code == "312"
        assert cls.level1_name == "Forest and semi-natural areas"
        assert cls.level2_name == "Forests"

    def test_by_code(self, nomenclature):
        assert nomenclature.by_code("523").name == "Sea and ocean"

    def test_unknown_lookups(self, nomenclature):
        with pytest.raises(UnknownLabelError):
            nomenclature.by_name("Lava fields")
        with pytest.raises(UnknownLabelError):
            nomenclature.by_code("999")

    def test_index_roundtrip(self, nomenclature):
        for i, name in enumerate(nomenclature.names):
            assert nomenclature.index_of(name) == i
            assert nomenclature.name_of(i) == name

    def test_index_out_of_range(self, nomenclature):
        with pytest.raises(UnknownLabelError):
            nomenclature.name_of(43)

    def test_every_class_has_color(self, nomenclature):
        for cls in nomenclature:
            color = nomenclature.color_of(cls.name)
            assert color.startswith("#") and len(color) == 7

    def test_level2_codes_consistent(self, nomenclature):
        for cls in nomenclature:
            assert cls.level1_code in LEVEL1
            assert cls.level2_code in LEVEL2
            assert cls.level2_code.startswith(cls.level1_code)

    def test_forests_level2_expansion(self, nomenclature):
        # The paper's example: Level-2 'Forest' comprises three Level-3 types.
        forests = nomenclature.level3_under_level2("31")
        assert {c.name for c in forests} == {
            "Broad-leaved forest", "Coniferous forest", "Mixed forest"}

    def test_level1_expansion(self, nomenclature):
        water = nomenclature.level3_under_level1("5")
        assert {c.name for c in water} == {
            "Water courses", "Water bodies", "Coastal lagoons",
            "Estuaries", "Sea and ocean"}

    def test_expand_selection_mixed_levels(self, nomenclature):
        names = nomenclature.expand_selection(["31", "523"])
        assert "Coniferous forest" in names
        assert "Sea and ocean" in names
        assert len(names) == 4

    def test_expand_selection_deduplicates(self, nomenclature):
        names = nomenclature.expand_selection(["31", "312"])
        assert names.count("Coniferous forest") == 1

    def test_validate_names(self, nomenclature):
        out = nomenclature.validate_names(["Pastures", "Pastures", "Airports"])
        assert out == ["Pastures", "Airports"]
        with pytest.raises(UnknownLabelError):
            nomenclature.validate_names(["Not a label"])


class TestCodec:
    def test_bijective(self, codec, nomenclature):
        chars = {codec.char_of(name) for name in nomenclature.names}
        assert len(chars) == 43
        for name in nomenclature.names:
            assert codec.name_of(codec.char_of(name)) == name

    def test_encode_sorted_and_deduplicated(self, codec):
        encoded = codec.encode(["Sea and ocean", "Pastures", "Pastures"])
        assert encoded == "".join(sorted(encoded))
        assert len(encoded) == 2

    def test_decode_roundtrip(self, codec):
        labels = ["Coniferous forest", "Water bodies", "Pastures"]
        decoded = codec.decode(codec.encode(labels))
        assert set(decoded) == set(labels)

    def test_unknown_label(self, codec):
        with pytest.raises(CodecError):
            codec.char_of("Atlantis")
        with pytest.raises(CodecError):
            codec.name_of("\x01")

    def test_intersects(self, codec):
        a = codec.encode(["Pastures", "Water bodies"])
        b = codec.encode(["Water bodies"])
        c = codec.encode(["Airports"])
        assert codec.intersects(a, b)
        assert not codec.intersects(a, c)

    def test_equals(self, codec):
        a = codec.encode(["Pastures", "Water bodies"])
        b = codec.encode(["Water bodies", "Pastures"])
        assert codec.equals(a, b)
        assert not codec.equals(a, codec.encode(["Pastures"]))

    def test_contains_all(self, codec):
        image = codec.encode(["Pastures", "Water bodies", "Airports"])
        assert codec.contains_all(image, codec.encode(["Pastures", "Airports"]))
        assert not codec.contains_all(image, codec.encode(["Sea and ocean"]))


@given(st.lists(st.sampled_from(BIGEARTHNET_LABELS), min_size=1, max_size=6),
       st.lists(st.sampled_from(BIGEARTHNET_LABELS), min_size=1, max_size=6))
def test_property_codec_predicates_match_set_algebra(labels_a, labels_b):
    codec = LabelCharCodec()
    enc_a, enc_b = codec.encode(labels_a), codec.encode(labels_b)
    set_a, set_b = set(labels_a), set(labels_b)
    assert codec.intersects(enc_a, enc_b) == bool(set_a & set_b)
    assert codec.equals(enc_a, enc_b) == (set_a == set_b)
    assert codec.contains_all(enc_a, enc_b) == (set_b <= set_a)


@given(st.lists(st.sampled_from(BIGEARTHNET_LABELS), min_size=1, max_size=8))
def test_property_encode_decode_recovers_set(labels):
    codec = LabelCharCodec()
    assert set(codec.decode(codec.encode(labels))) == set(labels)
