"""Tests for archive generation, patches, synthesis, seasons, and themes."""

import numpy as np
import pytest

from repro.bigearthnet import (
    COUNTRIES,
    Patch,
    S2_BAND_NAMES,
    SyntheticArchive,
    season_of,
)
from repro.bigearthnet.countries import by_code, by_name, country_names
from repro.bigearthnet.patch import band_resolution, band_shape
from repro.bigearthnet.seasons import validate_season
from repro.bigearthnet.synthesis import (
    PatchSynthesizer,
    SpectralSignatureModel,
    block_reduce_mean,
    correlated_noise,
    voronoi_regions,
)
from repro.bigearthnet.themes import THEMES, sample_labels, sample_theme, validate_themes
from repro.config import ArchiveConfig
from repro.errors import (
    ShapeError,
    UnknownLabelError,
    UnknownPatchError,
    ValidationError,
)


class TestSeasons:
    def test_meteorological_mapping(self):
        assert season_of("2017-06-15") == "Summer"
        assert season_of("2017-09-01") == "Autumn"
        assert season_of("2017-12-25") == "Winter"
        assert season_of("2018-03-10") == "Spring"

    def test_accepts_datetime(self):
        from datetime import datetime
        assert season_of(datetime(2018, 1, 5, 10, 30)) == "Winter"

    def test_invalid_input(self):
        with pytest.raises(ValidationError):
            season_of("not-a-date")
        with pytest.raises(ValidationError):
            season_of(123)

    def test_validate_season(self):
        assert validate_season("summer") == "Summer"
        with pytest.raises(ValidationError):
            validate_season("Monsoon")


class TestCountries:
    def test_ten_countries(self):
        assert len(COUNTRIES) == 10
        assert set(country_names()) == {
            "Austria", "Belgium", "Finland", "Ireland", "Kosovo", "Lithuania",
            "Luxembourg", "Portugal", "Serbia", "Switzerland"}

    def test_lookup(self):
        assert by_name("Portugal").code == "PT"
        assert by_code("FI").name == "Finland"
        with pytest.raises(KeyError):
            by_name("Germany")

    def test_theme_weights_reference_known_themes(self):
        for country in COUNTRIES:
            for theme in country.theme_weights:
                assert theme in THEMES, f"{country.name} uses unknown theme {theme}"

    def test_bboxes_plausible(self):
        for country in COUNTRIES:
            assert country.bbox.width > 0.5
            assert country.bbox.height > 0.5


class TestThemes:
    def test_all_theme_labels_valid(self):
        validate_themes()  # raises on any bad label/weight

    def test_sample_theme_respects_support(self, rng):
        weights = {"forest": 1.0, "urban": 0.0001}
        counts = {"forest": 0, "urban": 0}
        for _ in range(100):
            counts[sample_theme(weights, rng)] += 1
        assert counts["forest"] > 90

    def test_sample_theme_validation(self, rng):
        with pytest.raises(ValidationError):
            sample_theme({}, rng)
        with pytest.raises(ValidationError):
            sample_theme({"forest": -1.0}, rng)

    def test_sample_labels_within_bounds(self, rng):
        for _ in range(50):
            labels = sample_labels("coastal", rng, min_labels=1, max_labels=5)
            assert 1 <= len(labels) <= 5
            assert len(set(labels)) == len(labels)

    def test_sample_labels_unknown_theme(self, rng):
        with pytest.raises(ValidationError):
            sample_labels("lunar", rng)

    def test_sample_labels_mostly_from_theme(self, rng):
        pool = {label for label, _ in THEMES["forest"]}
        in_theme = 0
        total = 0
        for _ in range(100):
            for label in sample_labels("forest", rng):
                total += 1
                in_theme += label in pool
        assert in_theme / total > 0.8  # cross-theme noise is rare


class TestSynthesisPrimitives:
    def test_voronoi_covers_all_regions(self, rng):
        regions = voronoi_regions(60, 4, rng)
        assert regions.shape == (60, 60)
        assert set(np.unique(regions)) == {0, 1, 2, 3}

    def test_voronoi_single_region(self, rng):
        regions = voronoi_regions(30, 1, rng)
        assert (regions == 0).all()

    def test_voronoi_validation(self, rng):
        with pytest.raises(ValidationError):
            voronoi_regions(30, 0, rng)

    def test_correlated_noise_statistics(self, rng):
        noise = correlated_noise(120, 9, rng)
        assert abs(noise.mean()) < 0.1
        assert 0.8 < noise.std() < 1.2

    def test_correlated_noise_is_smooth(self, rng):
        rough = correlated_noise(120, 1, np.random.default_rng(0))
        smooth = correlated_noise(120, 15, np.random.default_rng(0))
        grad_rough = np.abs(np.diff(rough, axis=0)).mean()
        grad_smooth = np.abs(np.diff(smooth, axis=0)).mean()
        assert grad_smooth < grad_rough / 2

    def test_block_reduce(self):
        field = np.arange(16, dtype=float).reshape(4, 4)
        reduced = block_reduce_mean(field, 2)
        assert reduced.shape == (2, 2)
        assert reduced[0, 0] == pytest.approx((0 + 1 + 4 + 5) / 4)

    def test_block_reduce_bad_factor(self):
        with pytest.raises(ValidationError):
            block_reduce_mean(np.zeros((5, 5)), 2)


class TestSignatureModel:
    @pytest.fixture(scope="class")
    def model(self):
        return SpectralSignatureModel()

    def test_every_class_has_signature(self, model):
        from repro.bigearthnet import BIGEARTHNET_LABELS
        for name in BIGEARTHNET_LABELS:
            sig = model.signature(name)
            assert sig.shape == (12,)
            assert (sig >= 0).all() and (sig <= 1).all()

    def test_vegetation_red_edge(self, model):
        sig = model.signature("Broad-leaved forest")
        bands = dict(zip(S2_BAND_NAMES, sig))
        assert bands["B08"] > bands["B04"] * 3  # strong NIR over red

    def test_water_is_dark_in_nir(self, model):
        sig = model.signature("Sea and ocean")
        bands = dict(zip(S2_BAND_NAMES, sig))
        assert bands["B08"] < 0.05
        assert bands["B11"] < 0.02

    def test_seasonal_modulation_vegetation_only(self, model):
        forest_summer = model.signature("Broad-leaved forest", "Summer")
        forest_winter = model.signature("Broad-leaved forest", "Winter")
        nir = S2_BAND_NAMES.index("B08")
        assert forest_summer[nir] > forest_winter[nir]
        urban_summer = model.signature("Continuous urban fabric", "Summer")
        urban_winter = model.signature("Continuous urban fabric", "Winter")
        assert urban_summer[nir] == pytest.approx(urban_winter[nir], rel=1e-9)

    def test_unknown_label(self, model):
        with pytest.raises(UnknownLabelError):
            model.signature("Middle-earth")

    def test_signature_matrix(self, model):
        matrix = model.signature_matrix(["Pastures", "Sea and ocean"])
        assert matrix.shape == (2, 12)


class TestPatchSynthesizer:
    @pytest.fixture(scope="class")
    def bands(self):
        synth = PatchSynthesizer(ArchiveConfig(num_patches=1))
        return synth.synthesize(("Coniferous forest", "Water bodies"), "Summer", 0)

    def test_band_shapes(self, bands):
        s2, s1 = bands
        assert s2["B02"].shape == (120, 120)
        assert s2["B05"].shape == (60, 60)
        assert s2["B01"].shape == (20, 20)
        assert s1["VV"].shape == (120, 120)

    def test_values_in_range(self, bands):
        s2, s1 = bands
        for arr in list(s2.values()) + list(s1.values()):
            assert arr.dtype == np.float32
            assert (arr >= 0).all() and (arr <= 1).all()

    def test_content_reflects_labels(self):
        synth = PatchSynthesizer(ArchiveConfig(num_patches=1))
        water, _ = synth.synthesize(("Sea and ocean",), "Summer", 1)
        forest, _ = synth.synthesize(("Broad-leaved forest",), "Summer", 1)
        # NDVI-like contrast: forest NIR >> water NIR.
        assert forest["B08"].mean() > water["B08"].mean() + 0.2

    def test_empty_labels_rejected(self):
        synth = PatchSynthesizer()
        with pytest.raises(ValidationError):
            synth.synthesize((), "Summer", 0)

    def test_deterministic_given_seed(self):
        synth = PatchSynthesizer(ArchiveConfig(num_patches=1))
        a, _ = synth.synthesize(("Pastures",), "Spring", 7)
        b, _ = synth.synthesize(("Pastures",), "Spring", 7)
        np.testing.assert_array_equal(a["B04"], b["B04"])


class TestArchive:
    def test_generation_size_and_determinism(self, archive, archive_config):
        assert len(archive) == archive_config.num_patches
        again = SyntheticArchive.generate(archive_config)
        assert again.names == archive.names
        np.testing.assert_array_equal(
            again[0].s2_bands["B03"], archive[0].s2_bands["B03"])

    def test_unique_names(self, archive):
        assert len(set(archive.names)) == len(archive)

    def test_lookup_by_name(self, archive):
        name = archive.names[5]
        assert archive.get(name).name == name
        assert archive.index_of(name) == 5
        assert name in archive
        with pytest.raises(UnknownPatchError):
            archive.get("missing")

    def test_patches_inside_country_bbox(self, archive):
        for patch in archive.patches[:30]:
            country = by_name(patch.country)
            lon, lat = patch.bbox.center
            assert country.bbox.expand(0.1).contains_point(lon, lat)

    def test_seasons_match_dates(self, archive):
        for patch in archive.patches[:30]:
            assert patch.season == season_of(patch.acquisition_date)

    def test_dates_in_bigearthnet_window(self, archive):
        for patch in archive:
            assert "2017-06-01" <= patch.acquisition_date.isoformat() <= "2018-06-01"

    def test_label_matrix_consistent(self, archive, label_matrix):
        assert label_matrix.shape == (len(archive), 43)
        assert (label_matrix.sum(axis=1) >= 1).all()
        row = archive.index_of(archive.names[3])
        patch = archive[3]
        for label in patch.labels:
            assert label_matrix[row, archive.nomenclature.index_of(label)]

    def test_label_counts_total(self, archive, label_matrix):
        counts = archive.label_counts()
        assert sum(counts.values()) == int(label_matrix.sum())

    def test_split_partitions(self, archive):
        train, test = archive.split(0.75, seed=1)
        assert len(train) + len(test) == len(archive)
        assert len(np.intersect1d(train, test)) == 0
        with pytest.raises(ValidationError):
            archive.split(1.5)

    def test_metadata_only_generation(self):
        archive = SyntheticArchive.generate(
            ArchiveConfig(num_patches=25, seed=5), with_pixels=False)
        assert len(archive) == 25
        assert archive[0].s2_bands["B02"].shape[0] < 120  # placeholder bands

    def test_patch_validation(self):
        from datetime import datetime
        good = SyntheticArchive.generate(ArchiveConfig(num_patches=1, seed=0))[0]
        with pytest.raises(ValidationError):
            Patch(name="", labels=("Pastures",), country="Austria",
                  bbox=good.bbox, acquisition_date=datetime(2017, 7, 1),
                  season="Summer", s2_bands=good.s2_bands)
        with pytest.raises(ValidationError):
            Patch(name="x", labels=(), country="Austria",
                  bbox=good.bbox, acquisition_date=datetime(2017, 7, 1),
                  season="Summer", s2_bands=good.s2_bands)
        bad_bands = dict(good.s2_bands)
        bad_bands["B05"] = np.zeros((10, 10), dtype=np.float32)
        with pytest.raises(ShapeError):
            Patch(name="x", labels=("Pastures",), country="Austria",
                  bbox=good.bbox, acquisition_date=datetime(2017, 7, 1),
                  season="Summer", s2_bands=bad_bands)

    def test_band_helpers(self):
        assert band_resolution("B08") == 10
        assert band_resolution("B11") == 20
        assert band_resolution("B09") == 60
        assert band_shape("B05", 120) == (60, 60)
        with pytest.raises(ValidationError):
            band_resolution("B10")  # excluded band

    def test_patch_accessors(self, archive):
        patch = archive[0]
        assert patch.base_size == 120
        assert patch.has_s1
        assert patch.band("VV").shape == (120, 120)
        assert patch.rgb_stack().shape == (120, 120, 3)
        assert patch.storage_bytes() > 100_000
        with pytest.raises(ValidationError):
            patch.band("B99")
