"""Calibration runner: measured unit costs, persistence, prediction."""

from __future__ import annotations

import io
import json

import pytest

from repro.cli import main
from repro.errors import ValidationError
from repro.obs.calibrate import (
    CALIBRATION_VERSION,
    COUNTER_UNITS,
    UNIT_KEYS,
    check_units,
    load_calibration,
    predict_cost_ns,
    run_calibration,
    save_calibration,
)


@pytest.fixture(scope="module")
def calibration() -> dict:
    return run_calibration(corpus_sizes=(1500, 3000), num_queries=8, seed=11)


class TestRunCalibration:
    def test_units_are_positive_and_finite(self, calibration):
        checked = check_units(calibration["units"])
        assert set(checked) == set(UNIT_KEYS)

    def test_per_size_breakdown_covers_every_size(self, calibration):
        assert [entry["corpus_size"] for entry in calibration["per_size"]] \
            == [1500, 3000]
        for entry in calibration["per_size"]:
            assert entry["work"]["rows_scanned"] > 0
            assert entry["work"]["buckets_probed"] > 0
            assert entry["work"]["candidates_verified"] > 0

    def test_document_metadata(self, calibration):
        assert calibration["version"] == CALIBRATION_VERSION
        assert calibration["corpus_sizes"] == [1500, 3000]
        assert calibration["host"]
        assert calibration["measured_at"] > 0
        json.dumps(calibration)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValidationError):
            run_calibration(corpus_sizes=())
        with pytest.raises(ValidationError):
            run_calibration(corpus_sizes=(0,))
        with pytest.raises(ValidationError):
            run_calibration(num_bits=32)
        with pytest.raises(ValidationError):
            run_calibration(num_queries=0)


class TestPrediction:
    def test_counters_price_through_their_units(self):
        units = {"linear_scan_ns_per_row": 2.0,
                 "mih_probe_ns_per_bucket": 100.0,
                 "mih_verify_ns_per_candidate": 10.0}
        counters = {"rows_scanned": 1000, "buckets_probed": 5,
                    "candidates_verified": 20, "ladder_layers": 3}
        # 1000*2 + 5*100 + 20*10; ladder_layers carries no unit.
        assert predict_cost_ns(units, counters) == 2700.0

    def test_fallback_rows_price_as_linear_scan(self):
        units = {"linear_scan_ns_per_row": 3.0}
        assert predict_cost_ns(units, {"fallback_rows": 10}) == 30.0

    def test_empty_counters_cost_nothing(self):
        assert predict_cost_ns({"linear_scan_ns_per_row": 2.0}, None) == 0.0
        assert predict_cost_ns({}, {"rows_scanned": 5}) == 0.0

    def test_every_priced_counter_maps_to_a_known_unit(self):
        assert set(COUNTER_UNITS.values()) <= set(UNIT_KEYS)


class TestCheckUnits:
    def test_rejects_zero_missing_and_nonfinite(self):
        good = {key: 1.0 for key in UNIT_KEYS}
        assert check_units(good) == good
        for bad_value in (0.0, -1.0, float("nan"), float("inf")):
            bad = dict(good, linear_scan_ns_per_row=bad_value)
            with pytest.raises(ValidationError):
                check_units(bad)
        with pytest.raises(ValidationError):
            check_units({})

    def test_required_subset(self):
        assert check_units({"cache_lookup_ns": 5.0},
                           required=("cache_lookup_ns",)) \
            == {"cache_lookup_ns": 5.0}


class TestPersistence:
    def test_save_load_roundtrip(self, calibration, tmp_path):
        path = tmp_path / "calibration.json"
        save_calibration(calibration, str(path))
        loaded = load_calibration(str(path))
        assert loaded == calibration

    def test_load_rejects_unknown_version(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 999}))
        with pytest.raises(ValidationError):
            load_calibration(str(path))


class TestCalibrateCLI:
    def test_calibrate_writes_sidecar_and_prints_units(self, tmp_path):
        path = tmp_path / "calibration.json"
        out = io.StringIO()
        code = main(["calibrate", "--sizes", "1200", "--queries", "4",
                     "--out", str(path)], out=out)
        assert code == 0
        document = load_calibration(str(path))
        check_units(document["units"])
        assert f"wrote calibration to {path}" in out.getvalue()
        printed = json.loads(out.getvalue().split("\n", 1)[1])
        assert printed["units"] == document["units"]
