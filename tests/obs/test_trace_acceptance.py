"""End-to-end traced-query acceptance: one stitched tree, zero distortion.

The PR's acceptance bar: a single ``trace=true`` similarity query through
the serving gateway on a federated node returns *one* span tree — cache,
micro-batch, shard-scan, index-internal, and per-node federation spans all
sharing the root's trace id — whose timings are internally consistent; and
tracing (on, forced, or sampled out) never changes the query results.
"""

from __future__ import annotations

import json

from repro.config import ObsConfig
from repro.earthqube.api import EarthQubeAPI
from repro.obs import Observability


def _walk(node, depth=0):
    yield node, depth
    for child in node["children"]:
        yield from _walk(child, depth + 1)


def _names(tree) -> set:
    return {node["name"] for node, _ in _walk(tree)}


class TestStitchedTree:
    def _traced_response(self, served_system, federation) -> dict:
        api = EarthQubeAPI(federation=federation)
        name = "a/" + served_system.archive.names[0]
        served_system.gateway.cache.invalidate()  # force the full hot path
        response = api.similar({"name": name, "k": 5, "trace": True})
        assert response["ok"], response
        assert "trace" in response and "trace_id" in response
        return response

    def test_one_tree_covers_every_tier(self, served_system, federation):
        response = self._traced_response(served_system, federation)
        names = _names(response["trace"])
        # Serving tier on node 'a': cache, micro-batch, sharded scan.
        assert {"cache.lookup", "batch.wait", "batch.execute",
                "shards.search", "shard.scan"} <= names
        # Index internals (MIH-backed shards expose the kNN ladder).
        assert "mih.knn" in names and "mih.layer" in names
        # Federation tier: the scatter plus one span per queried node.
        assert {"federation.scatter", "federation.node"} <= names

    def test_single_trace_id_and_linked_parents(self, served_system,
                                                federation):
        response = self._traced_response(served_system, federation)
        tree = response["trace"]
        ids = {node["trace_id"] for node, _ in _walk(tree)}
        assert ids == {response["trace_id"]}
        by_id = {node["span_id"]: node for node, _ in _walk(tree)}
        assert tree["parent_id"] is None
        for node, _ in _walk(tree):
            for child in node["children"]:
                assert child["parent_id"] == node["span_id"]
            assert node["span_id"] in by_id

    def test_per_node_spans_cover_both_nodes(self, served_system, federation):
        response = self._traced_response(served_system, federation)
        node_spans = [node for node, _ in _walk(response["trace"])
                      if node["name"] == "federation.node"]
        assert {span["attrs"]["node"] for span in node_spans} == {"a", "b"}
        assert all(span["attrs"]["ok"] for span in node_spans)

    def test_timings_are_internally_consistent(self, served_system,
                                               federation):
        response = self._traced_response(served_system, federation)
        tree = response["trace"]
        assert tree["start_ms"] == 0.0
        for node, _ in _walk(tree):
            if "duration_ms" not in node:  # a straggler marked unfinished
                continue
            assert node["duration_ms"] >= 0.0
            assert 0.0 <= node["self_time_ms"] <= node["duration_ms"] + 1e-6
            finished = [c for c in node["children"] if "duration_ms" in c]
            # Self time + finished children's durations == the span's own
            # duration (as_dict's accounting identity).
            child_ms = sum(c["duration_ms"] for c in finished)
            assert node["self_time_ms"] >= node["duration_ms"] - child_ms - 1e-6
            # Same-thread (sequential) children start within the parent.
            for child in finished:
                assert child["start_ms"] >= node["start_ms"] - 1e-6

    def test_summed_self_times_match_end_to_end_latency(self, served_system,
                                                        federation):
        response = self._traced_response(served_system, federation)
        tree = response["trace"]
        total = tree["duration_ms"]
        # Sequential decomposition: root = self + direct children.  (Deeper
        # levels fan out across threads, so only the root level is strictly
        # additive.)
        direct = sum(c["duration_ms"] for c in tree["children"]
                     if "duration_ms" in c)
        assert tree["self_time_ms"] + direct <= total + 1e-6
        assert tree["self_time_ms"] + direct >= 0.5 * total

    def test_tree_is_json_serializable(self, served_system, federation):
        json.dumps(self._traced_response(served_system, federation))


class TestByteIdentity:
    """Tracing is observe-only: results never depend on sampling."""

    def test_traced_and_untraced_results_are_identical(self, served_system,
                                                       federation):
        api = EarthQubeAPI(federation=federation)
        name = "a/" + served_system.archive.names[1]
        request = {"name": name, "k": 8}
        served_system.gateway.cache.invalidate()
        untraced = api.similar(dict(request))
        served_system.gateway.cache.invalidate()
        traced = api.similar({**request, "trace": True})
        served_system.gateway.cache.invalidate()
        untraced_again = api.similar(dict(request))
        assert "trace" not in untraced and "trace" not in untraced_again
        for key in ("query", "radius_used", "results"):
            assert untraced[key] == traced[key] == untraced_again[key]

    def test_disabled_tracing_matches_forced_tracing(self, served_system,
                                                     federation):
        api = EarthQubeAPI(federation=federation)
        names = ["a/" + served_system.archive.names[2],
                 "a/" + served_system.archive.names[3]]
        request = {"names": names, "k": 6}
        served_system.gateway.cache.invalidate()
        traced = api.similar_batch({**request, "trace": True})
        original = federation.obs
        federation.obs = Observability(ObsConfig(enabled=False),
                                       component="federation")
        try:
            served_system.gateway.cache.invalidate()
            disabled = api.similar_batch({**request, "trace": True})
        finally:
            federation.obs = original
        assert "trace" in traced
        assert "trace" not in disabled
        assert traced["queries"] == disabled["queries"]

    def test_direct_path_results_survive_sampling(self, direct_system):
        api = EarthQubeAPI(direct_system)
        name = direct_system.archive.names[0]
        responses = [api.similar({"name": name, "k": 5, "trace": on})
                     for on in (False, True, False)]
        assert (responses[0]["results"] == responses[1]["results"]
                == responses[2]["results"])
