"""Observability facade: request lifecycle, slow log, structured logs."""

from __future__ import annotations

import logging

import pytest

from repro.config import ObsConfig
from repro.errors import ValidationError
from repro.obs import Observability, SlowQueryLog, tracing
from repro.obs.logs import StructuredLogger


class TestObsConfig:
    def test_defaults_are_always_on_with_light_sampling(self):
        config = ObsConfig()
        assert config.enabled is True
        assert 0.0 < config.sample_rate <= 1.0

    @pytest.mark.parametrize("kwargs", [
        {"sample_rate": -0.1}, {"sample_rate": 1.5},
        {"slow_threshold_ms": -1.0}, {"slow_buffer_size": 0},
    ])
    def test_rejects_invalid_knobs(self, kwargs):
        with pytest.raises(ValidationError):
            ObsConfig(**kwargs)


class TestRequestLifecycle:
    def test_forced_request_is_a_traced_root(self):
        obs = Observability(ObsConfig(sample_rate=0.0))
        with obs.request("similar", force_trace=True, k=5) as req:
            assert req.is_root and req.traced
            assert tracing.current_span() is req.span
            with tracing.span("inner"):
                pass
        assert tracing.current_span() is None
        tree = req.tree()
        assert tree["name"] == "similar"
        assert tree["attrs"] == {"k": 5}
        assert [c["name"] for c in tree["children"]] == ["inner"]
        assert req.duration_ms is not None

    def test_sampled_out_request_still_measures_duration(self):
        obs = Observability(ObsConfig(sample_rate=0.0))
        with obs.request("similar") as req:
            assert req.is_root and not req.traced
            # Not a full span — a cost-only ledger collects counters.
            assert isinstance(tracing.current_span(), tracing.CostSpan)
        assert tracing.current_span() is None
        assert req.duration_ms is not None
        assert req.tree() is None

    def test_sampled_out_request_with_cost_tracking_off_is_bare(self):
        obs = Observability(ObsConfig(sample_rate=0.0, cost_tracking=False))
        with obs.request("similar") as req:
            assert req.is_root and not req.traced
            assert tracing.current_span() is None
        assert req.profile() is None

    def test_force_trace_is_inert_when_disabled(self):
        obs = Observability(ObsConfig(enabled=False))
        with obs.request("similar", force_trace=True) as req:
            assert not req.traced

    def test_nested_request_degrades_to_child_span(self):
        obs = Observability(ObsConfig(sample_rate=0.0))
        with obs.request("api.similar", force_trace=True) as outer:
            with obs.request("similar", force_trace=True) as inner:
                assert not inner.is_root
                assert inner.traced
                assert inner.span.trace_id == outer.span.trace_id
            assert tracing.current_span() is outer.span
        tree = outer.tree()
        assert [c["name"] for c in tree["children"]] == ["similar"]
        assert inner.tree() is None  # only roots serialize

    def test_sampling_follows_the_tracer(self):
        obs = Observability(ObsConfig(sample_rate=0.5))
        traced = []
        for _ in range(6):
            with obs.request("r") as req:
                traced.append(req.traced)
        assert traced == [False, True, False, True, False, True]


class TestSlowLogIntegration:
    def _slow_obs(self) -> Observability:
        # threshold 0 -> every root request is "slow" and gets recorded.
        return Observability(ObsConfig(sample_rate=0.0, slow_threshold_ms=0.0))

    def test_slow_root_request_is_recorded_with_attrs(self):
        obs = self._slow_obs()
        with obs.request("similar", k=7):
            pass
        (entry,) = obs.slow_log.snapshot()
        assert entry["route"] == "similar"
        assert entry["duration_ms"] >= 0.0
        assert entry["attrs"] == {"k": 7}
        assert entry["trace_id"] is None
        assert "trace" not in entry

    def test_traced_slow_request_stores_its_span_tree(self):
        obs = self._slow_obs()
        with obs.request("similar", force_trace=True):
            with tracing.span("mih.knn"):
                pass
        (entry,) = obs.slow_log.snapshot()
        assert entry["trace_id"] is not None
        assert entry["trace"]["children"][0]["name"] == "mih.knn"

    def test_fast_requests_stay_out_of_the_slow_log(self):
        obs = Observability(ObsConfig(sample_rate=0.0, slow_threshold_ms=1e6))
        with obs.request("similar"):
            pass
        assert obs.slow_log.snapshot() == []

    def test_nested_requests_record_once(self):
        obs = self._slow_obs()
        with obs.request("api.similar", force_trace=True):
            with obs.request("similar"):
                pass
        entries = obs.slow_log.snapshot()
        assert [e["route"] for e in entries] == ["api.similar"]

    def test_describe_is_json_shaped(self):
        obs = Observability(ObsConfig())
        description = obs.describe()
        assert description["component"] == "earthqube"
        assert description["config"]["enabled"] is True
        assert "requests_seen" in description["tracer"]
        assert description["slow_log"]["capacity"] == 256


class TestSlowQueryLog:
    def test_capacity_bounds_the_buffer(self):
        log = SlowQueryLog(capacity=3, threshold_ms=0.0)
        for i in range(5):
            log.record(route=f"r{i}", duration_ms=float(i))
        entries = log.snapshot()
        assert [e["route"] for e in entries] == ["r4", "r3", "r2"]
        assert log.describe()["recorded_total"] == 5

    def test_snapshot_returns_copies(self):
        log = SlowQueryLog(capacity=2)
        log.record(route="r", duration_ms=1.0)
        log.snapshot()[0]["route"] = "mutated"
        assert log.snapshot()[0]["route"] == "r"

    def test_clear_empties_but_keeps_total(self):
        log = SlowQueryLog(capacity=4)
        log.record(route="r", duration_ms=1.0)
        assert log.clear() == 1
        assert log.snapshot() == []
        assert log.describe()["recorded_total"] == 1

    @pytest.mark.parametrize("kwargs", [
        {"capacity": 0}, {"threshold_ms": -1.0},
    ])
    def test_rejects_invalid_knobs(self, kwargs):
        with pytest.raises(ValidationError):
            SlowQueryLog(**kwargs)


class TestStructuredLogs:
    def test_event_line_is_key_value_formatted(self, caplog):
        logger = StructuredLogger("serving")
        with caplog.at_level(logging.INFO, logger="repro.obs.serving"):
            logger.event("query.slow", trace_id="0000002a",
                         route="similar", duration_ms=123.456, k=5)
        (record,) = caplog.records
        assert record.name == "repro.obs.serving"
        assert "event=query.slow" in record.message
        assert "trace_id=0000002a" in record.message
        assert "duration_ms=123.456" in record.message
        assert "k=5" in record.message
        assert record.structured["event"] == "query.slow"
        assert record.structured["route"] == "similar"

    def test_values_with_spaces_are_quoted(self, caplog):
        logger = StructuredLogger("serving")
        with caplog.at_level(logging.INFO, logger="repro.obs.serving"):
            logger.event("query.error", error="boom goes the node")
        assert 'error="boom goes the node"' in caplog.records[0].message

    def test_disabled_level_emits_nothing(self, caplog):
        logger = StructuredLogger("serving")
        with caplog.at_level(logging.WARNING, logger="repro.obs.serving"):
            logger.event("query", level=logging.DEBUG, route="similar")
        assert caplog.records == []

    def test_error_requests_log_a_query_error_event(self, caplog):
        obs = Observability(ObsConfig(sample_rate=0.0))
        with caplog.at_level(logging.WARNING, logger="repro.obs.earthqube"):
            with pytest.raises(ValidationError):
                with obs.request("similar"):
                    raise ValidationError("bad k")
        (record,) = caplog.records
        assert "event=query.error" in record.message
        assert "error=ValidationError" in record.message
