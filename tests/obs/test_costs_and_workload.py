"""Cost-counter folding and workload statistics aggregation."""

from __future__ import annotations

import json
import threading

import pytest

from repro.errors import ValidationError
from repro.obs import (
    Tracer,
    WorkloadStats,
    add_cost,
    family_key,
    measure,
    merge_profiles,
    profile_from_tree,
    selectivity_bucket,
    span,
    tracing,
)
from repro.obs.workload import PROFILE_VERSION, _pow2_bucket


class TestSelectivityBuckets:
    @pytest.mark.parametrize("value, bucket", [
        (None, "none"),
        (0.0, "<=1%"),
        (0.01, "<=1%"),
        (0.02, "<=10%"),
        (0.1, "<=10%"),
        (0.3, "<=50%"),
        (0.5, "<=50%"),
        (0.51, ">50%"),
        (1.0, ">50%"),
    ])
    def test_bucket_edges(self, value, bucket):
        assert selectivity_bucket(value) == bucket

    def test_family_key_defaults(self):
        assert family_key(None) == ("unknown", "unfiltered", "none")
        assert family_key({}) == ("unknown", "unfiltered", "none")

    def test_family_key_prefers_strategy_over_filter_mode(self):
        attrs = {"backend": "mih", "strategy": "prefilter",
                 "filter_mode": "pre", "selectivity": 0.004}
        assert family_key(attrs) == ("mih", "prefilter", "<=1%")
        del attrs["strategy"]
        assert family_key(attrs) == ("mih", "pre", "<=1%")


class TestProfileFromTree:
    def _tree(self):
        tracer = Tracer(enabled=True, sample_rate=1.0)
        with tracer.start_trace("api.similar", backend="mih") as root:
            with span("mih.knn") as knn:
                knn.add_cost(buckets_probed=40)
                with span("mih.verify") as verify:
                    verify.add_cost(candidates_verified=7)
                with span("mih.verify") as verify:
                    verify.add_cost(candidates_verified=5)
            root.annotate(strategy="prefilter", selectivity=0.008)
        return root.as_dict()

    def test_costs_total_across_the_tree(self):
        profile = profile_from_tree(self._tree())
        assert profile["costs"] == {"buckets_probed": 40,
                                    "candidates_verified": 12}

    def test_stages_fold_by_name_with_per_stage_costs(self):
        profile = profile_from_tree(self._tree())
        verify = profile["stages"]["mih.verify"]
        assert verify["count"] == 2
        assert verify["costs"] == {"candidates_verified": 12}
        assert profile["stages"]["mih.knn"]["costs"] == {"buckets_probed": 40}

    def test_family_attrs_are_first_seen(self):
        profile = profile_from_tree(self._tree())
        assert profile["attrs"] == {"backend": "mih", "strategy": "prefilter",
                                    "selectivity": 0.008}
        assert family_key(profile["attrs"]) == ("mih", "prefilter", "<=1%")

    def test_none_tree_is_none(self):
        assert profile_from_tree(None) is None


class TestCostOnlyLedger:
    def test_measure_collects_counters_and_stages(self):
        with measure("request") as ledger:
            add_cost(rows_scanned=100)
            with span("linear.scan") as scan:
                scan.add_cost(rows_scanned=50)
            with span("outer") as outer:
                outer.annotate(backend="linear")
                with span("inner") as inner:
                    inner.add_cost(cache_hits=1)
        report = ledger.report()
        assert report["costs"] == {"rows_scanned": 150, "cache_hits": 1}
        assert set(report["stages"]) == {"linear.scan", "outer", "inner"}
        assert report["attrs"]["backend"] == "linear"
        for stage in report["stages"].values():
            assert stage["count"] == 1
            assert stage["self_time_ms"] >= 0.0

    def test_no_active_context_means_noop(self):
        add_cost(rows_scanned=10**9)  # must not raise, must not leak
        assert tracing.current_span() is None
        assert span("anything") is tracing.NULL_SPAN

    def test_measure_is_thread_confined_but_lock_safe(self):
        errors = []

        def worker():
            try:
                with span("w") as s:
                    s.add_cost(rows_scanned=1)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        with measure() as ledger:
            add_cost(rows_scanned=1)
            threads = [threading.Thread(target=worker) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        # Worker threads have no attached context: their spans are no-ops.
        assert not errors
        assert ledger.report()["costs"] == {"rows_scanned": 1}


class TestWorkloadStats:
    def _stats(self):
        stats = WorkloadStats(window=8)
        for i in range(5):
            stats.record(family=("mih", "prefilter", "<=1%"),
                         duration_ms=1.0 + i,
                         costs={"buckets_probed": 10 * (i + 1),
                                "candidates_verified": 3})
        stats.record(family=("linear", "unfiltered", "none"), duration_ms=9.0)
        return stats

    def test_snapshot_schema(self):
        profile = self._stats().snapshot()
        assert profile["version"] == PROFILE_VERSION
        assert profile["recorded_total"] == 6
        families = {(f["backend"], f["strategy"], f["selectivity"]): f
                    for f in profile["families"]}
        mih = families[("mih", "prefilter", "<=1%")]
        assert mih["latency_ms"]["count"] == 5
        assert mih["latency_ms"]["p50_ms"] == 3.0
        assert mih["costs"]["buckets_probed"]["total"] == 150
        assert mih["costs"]["buckets_probed"]["max"] == 50
        assert mih["costs"]["candidates_verified"]["mean"] == 3.0
        linear = families[("linear", "unfiltered", "none")]
        assert linear["costs"] == {}
        json.dumps(profile)

    def test_pow2_histogram_buckets(self):
        assert _pow2_bucket(0) == "0"
        assert _pow2_bucket(1) == "1"
        assert _pow2_bucket(2) == "2"
        assert _pow2_bucket(3) == "4"
        assert _pow2_bucket(9) == "16"
        hist = self._stats().snapshot()["families"][1]  # mih sorts second
        # family ordering is sorted: linear < mih
        probed = hist["costs"]["buckets_probed"]["hist"]
        assert sum(probed.values()) == 5

    def test_save_load_roundtrip(self, tmp_path):
        path = tmp_path / "workload.json"
        written = self._stats().save(str(path))
        assert "saved_at" in written
        loaded = WorkloadStats.load(str(path))
        assert loaded["recorded_total"] == 6
        assert loaded["families"] == written["families"]

    def test_load_rejects_unknown_version(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 999, "families": []}))
        with pytest.raises(ValidationError):
            WorkloadStats.load(str(path))

    def test_clear_resets(self):
        stats = self._stats()
        assert stats.clear() == 2
        assert stats.recorded_total == 0
        assert stats.snapshot()["families"] == []

    def test_window_validation(self):
        with pytest.raises(ValidationError):
            WorkloadStats(window=0)

    def test_concurrent_records_are_all_counted(self):
        stats = WorkloadStats(window=64)

        def worker():
            for _ in range(100):
                stats.record(family=("mih", "unfiltered", "none"),
                             duration_ms=1.0, costs={"rows_scanned": 2})

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        profile = stats.snapshot()
        assert profile["recorded_total"] == 800
        fam = profile["families"][0]
        assert fam["latency_ms"]["count"] == 800
        assert fam["costs"]["rows_scanned"]["total"] == 1600


class TestMergeProfiles:
    def test_merge_sums_costs_and_weighs_latency(self):
        a = WorkloadStats()
        a.record(family=("mih", "prefilter", "<=1%"), duration_ms=2.0,
                 costs={"buckets_probed": 10})
        b = WorkloadStats()
        b.record(family=("mih", "prefilter", "<=1%"), duration_ms=4.0,
                 costs={"buckets_probed": 30})
        b.record(family=("linear", "unfiltered", "none"), duration_ms=1.0)
        merged = merge_profiles([a.snapshot(), b.snapshot()])
        assert merged["recorded_total"] == 3
        families = {(f["backend"], f["strategy"], f["selectivity"]): f
                    for f in merged["families"]}
        mih = families[("mih", "prefilter", "<=1%")]
        assert mih["latency_ms"]["count"] == 2
        assert mih["latency_ms"]["mean_ms"] == 3.0
        assert mih["costs"]["buckets_probed"]["total"] == 40
        assert sum(mih["costs"]["buckets_probed"]["hist"].values()) == 2
