"""Tracing primitives: span nesting, propagation, sampling, serialization."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.obs import tracing
from repro.obs.tracing import NULL_SPAN, Span, Tracer


@pytest.fixture()
def root():
    """An entered root span; the thread context is clean afterwards."""
    tracer = Tracer()
    span = tracer.start_trace("root")
    span.__enter__()
    yield span
    span.__exit__(None, None, None)
    assert tracing.current_span() is None


class TestSpanBasics:
    def test_untraced_span_is_shared_null_singleton(self):
        assert tracing.current_span() is None
        assert tracing.span("anything", k=1) is NULL_SPAN
        assert tracing.span("other") is NULL_SPAN
        # The null span is a no-op context manager and absorbs annotate.
        with tracing.span("noop") as sp:
            sp.annotate(x=1)

    def test_untraced_annotate_is_noop(self):
        tracing.annotate(x=1)  # must not raise

    def test_nesting_installs_and_restores_active_span(self, root):
        assert tracing.current_span() is root
        with tracing.span("child") as child:
            assert tracing.current_span() is child
            with tracing.span("grandchild") as grandchild:
                assert tracing.current_span() is grandchild
            assert tracing.current_span() is child
        assert tracing.current_span() is root
        assert [c.name for c in root.children] == ["child"]
        assert [c.name for c in child.children] == ["grandchild"]

    def test_child_inherits_trace_id_and_parent_id(self, root):
        with tracing.span("child") as child:
            pass
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert child.span_id != root.span_id

    def test_exception_restores_context_and_stamps_error(self, root):
        with pytest.raises(ValueError):
            with tracing.span("boom") as sp:
                raise ValueError("nope")
        assert tracing.current_span() is root
        assert sp.attrs["error"] == "ValueError"
        assert sp.end_s is not None

    def test_annotate_coerces_numpy_scalars(self, root):
        with tracing.span("child", items=np.int64(3)) as sp:
            sp.annotate(ratio=np.float64(0.5), label="x")
        assert sp.attrs == {"items": 3, "ratio": 0.5, "label": "x"}
        assert type(sp.attrs["items"]) is int
        assert type(sp.attrs["ratio"]) is float

    def test_walk_is_depth_first(self, root):
        with tracing.span("a"):
            with tracing.span("a1"):
                pass
        with tracing.span("b"):
            pass
        assert [s.name for s in root.walk()] == ["root", "a", "a1", "b"]


class TestCrossThread:
    def test_capture_attach_stitches_worker_spans(self, root):
        captured = tracing.capture()
        assert captured is root

        def worker():
            assert tracing.current_span() is None
            with tracing.attach(captured):
                with tracing.span("work"):
                    pass
            assert tracing.current_span() is None

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert [c.name for c in root.children] == ["work"]
        assert root.children[0].trace_id == root.trace_id

    def test_attach_none_clears_context(self, root):
        with tracing.attach(None):
            assert tracing.current_span() is None
            assert tracing.span("ignored") is NULL_SPAN
        assert tracing.current_span() is root

    def test_capture_without_trace_is_none(self):
        assert tracing.capture() is None


class TestSerialization:
    def test_as_dict_tree_shape_and_self_time(self, root):
        with tracing.span("child", k=5):
            with tracing.span("leaf"):
                pass
        root.__exit__(None, None, None)
        tree = root.as_dict()
        assert tree["name"] == "root"
        assert tree["parent_id"] is None
        assert tree["start_ms"] == 0.0
        child = tree["children"][0]
        assert child["attrs"] == {"k": 5}
        assert child["start_ms"] >= 0.0
        # Self time never exceeds duration and is never negative.
        for node in (tree, child, child["children"][0]):
            assert 0.0 <= node["self_time_ms"] <= node["duration_ms"] + 1e-9
        assert tree["duration_ms"] >= child["duration_ms"]
        root.__enter__()  # restore for the fixture's exit

    def test_unfinished_child_is_marked_not_dropped(self, root):
        child = Span("stuck", root.trace_id, root.span_id)
        root.children.append(child)
        child.start_s = root.start_s  # started, never finished
        root.__exit__(None, None, None)
        tree = root.as_dict()
        stuck = tree["children"][0]
        assert stuck["unfinished"] is True
        assert "duration_ms" not in stuck
        root.__enter__()


class TestSampler:
    def test_rate_one_samples_everything(self):
        tracer = Tracer(sample_rate=1.0)
        assert all(tracer.should_sample() for _ in range(20))

    def test_rate_zero_and_disabled_sample_nothing(self):
        for tracer in (Tracer(sample_rate=0.0),
                       Tracer(enabled=False, sample_rate=1.0)):
            assert not any(tracer.should_sample() for _ in range(20))

    def test_fractional_rate_is_deterministic_and_evenly_spaced(self):
        tracer = Tracer(sample_rate=0.1)
        decisions = [tracer.should_sample() for _ in range(30)]
        assert [i + 1 for i, d in enumerate(decisions) if d] == [10, 20, 30]

    def test_stats_track_seen_and_sampled(self):
        tracer = Tracer(sample_rate=0.5)
        for _ in range(10):
            tracer.should_sample()
        stats = tracer.stats()
        assert stats["requests_seen"] == 10
        assert stats["requests_sampled"] == 5

    def test_trace_ids_are_unique(self):
        tracer = Tracer()
        ids = {tracer.start_trace("t").trace_id for _ in range(5)}
        assert len(ids) == 5
