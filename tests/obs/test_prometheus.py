"""Prometheus text exposition: grammar conformance and content mapping."""

from __future__ import annotations

import re

import pytest

from repro.obs import render_prometheus
from repro.obs.prometheus import sanitize_name
from repro.serving.metrics import MetricsRegistry

_METRIC_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_HELP_RE = re.compile(rf"^# HELP ({_METRIC_NAME}) (.+)$")
_TYPE_RE = re.compile(rf"^# TYPE ({_METRIC_NAME}) (counter|gauge|summary|histogram|untyped)$")
_SAMPLE_RE = re.compile(
    rf"^({_METRIC_NAME})"
    r"(?:\{([a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\""
    r"(?:,[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\")*)\})?"
    r" (-?(?:[0-9]*\.)?[0-9]+(?:[eE][-+]?[0-9]+)?|NaN|[-+]Inf)$")


def parse_exposition(text: str) -> dict:
    """Parse the 0.0.4 text format; raises AssertionError on violations.

    Returns ``{family: {"type": ..., "samples": [(name, labels, value)]}}``.
    """
    families: dict[str, dict] = {}
    current: "str | None" = None
    for line in text.splitlines():
        assert line == line.rstrip(), f"trailing whitespace: {line!r}"
        if not line:
            continue
        help_match = _HELP_RE.match(line)
        if help_match:
            current = help_match.group(1)
            assert current not in families, f"duplicate family {current}"
            families[current] = {"type": None, "samples": []}
            continue
        type_match = _TYPE_RE.match(line)
        if type_match:
            assert type_match.group(1) == current, \
                f"TYPE for {type_match.group(1)} outside its HELP block"
            families[current]["type"] = type_match.group(2)
            continue
        assert not line.startswith("#"), f"unparseable comment: {line!r}"
        sample = _SAMPLE_RE.match(line)
        assert sample, f"unparseable sample line: {line!r}"
        name = sample.group(1)
        assert current is not None and name.startswith(current), \
            f"sample {name} outside its family block ({current})"
        suffix = name[len(current):]
        assert suffix in ("", "_count", "_sum", "_bucket"), \
            f"stray suffix {suffix!r}"
        labels = {}
        if sample.group(2):
            for part in re.findall(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"',
                                   sample.group(2)):
                labels[part[0]] = part[1]
        families[current]["samples"].append((name, labels, float(sample.group(3))))
    return families


@pytest.fixture()
def registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("cache.hits").increment(3)
    registry.gauge("batch.queue_depth").set(2.0)
    registry.histogram("similar").record(0.010)
    registry.histogram("similar").record(0.030)
    registry.counter("node.failures", node="a").increment()
    registry.histogram("node.latency", node="a").record(0.005)
    registry.histogram("node.latency", node="b").record(0.007)
    return registry


def test_exposition_parses_under_the_text_format_grammar(registry):
    text = render_prometheus({"serving": registry.snapshot()})
    assert text.endswith("\n")
    families = parse_exposition(text)
    assert families, "no families rendered"
    for name, family in families.items():
        assert family["type"] is not None, f"{name} has no TYPE"
        assert family["samples"], f"{name} has no samples"


def test_counters_are_total_suffixed_and_summaries_in_seconds(registry):
    families = parse_exposition(
        render_prometheus({"serving": registry.snapshot()}))
    counter = families["repro_serving_cache_hits_total"]
    assert counter["type"] == "counter"
    assert counter["samples"][0][2] == 3.0

    summary = families["repro_serving_similar_seconds"]
    assert summary["type"] == "summary"
    by_suffix = {}
    for name, labels, value in summary["samples"]:
        if name.endswith("_count"):
            by_suffix["count"] = value
        elif name.endswith("_sum"):
            by_suffix["sum"] = value
        else:
            by_suffix[labels["quantile"]] = value
    assert by_suffix["count"] == 2.0
    assert by_suffix["sum"] == pytest.approx(0.040, abs=1e-4)
    assert 0.0 < by_suffix["0.5"] <= by_suffix["0.95"] <= by_suffix["0.99"]
    assert by_suffix["0.99"] <= 0.030 + 1e-9  # seconds, not milliseconds


def test_labeled_families_render_with_label_sets(registry):
    families = parse_exposition(
        render_prometheus({"federation": registry.snapshot()}))
    latency = families["repro_federation_node_latency_seconds"]
    nodes = {labels.get("node") for _, labels, _ in latency["samples"]}
    assert nodes == {"a", "b"}
    failures = families["repro_federation_node_failures_total"]
    assert failures["samples"] == [
        ("repro_federation_node_failures_total", {"node": "a"}, 1.0)]


def test_native_histogram_buckets_are_cumulative_and_le_labeled(registry):
    families = parse_exposition(
        render_prometheus({"serving": registry.snapshot()}))
    hist = families["repro_serving_similar_hist_seconds"]
    assert hist["type"] == "histogram"
    buckets = [(labels["le"], value) for name, labels, value in hist["samples"]
               if name.endswith("_bucket")]
    assert buckets[-1][0] == "+Inf" and buckets[-1][1] == 2.0
    values = [value for _, value in buckets]
    assert values == sorted(values), "bucket counts must be cumulative"
    # 0.010 and 0.030 land at le=0.01 and le=0.05 respectively.
    by_le = dict(buckets)
    assert by_le["0.005"] == 0.0
    assert by_le["0.01"] == 1.0
    assert by_le["0.05"] == 2.0
    count = [v for n, _, v in hist["samples"] if n.endswith("_count")]
    assert count == [2.0]


def test_labeled_histogram_buckets_render_per_series(registry):
    families = parse_exposition(
        render_prometheus({"federation": registry.snapshot()}))
    hist = families["repro_federation_node_latency_hist_seconds"]
    nodes = {labels["node"] for name, labels, _ in hist["samples"]
             if name.endswith("_bucket")}
    assert nodes == {"a", "b"}
    for name, labels, value in hist["samples"]:
        if name.endswith("_bucket") and labels["le"] == "+Inf":
            assert value == 1.0


def test_workload_tier_renders_labeled_families():
    from repro.obs import WorkloadStats

    stats = WorkloadStats()
    stats.record(family=("mih", "prefilter", "<=1%"), duration_ms=3.0,
                 costs={"buckets_probed": 52, "candidates_verified": 9})
    families = parse_exposition(
        render_prometheus({"workload": stats.metrics_snapshot()}))
    latency = families["repro_workload_query_latency_seconds"]
    labels = latency["samples"][0][1]
    assert labels["backend"] == "mih"
    assert labels["strategy"] == "prefilter"
    assert labels["selectivity"] == "<=1%"
    cost = families["repro_workload_query_cost_total"]
    totals = {labels["counter"]: value for _, labels, value in cost["samples"]}
    assert totals == {"buckets_probed": 52.0, "candidates_verified": 9.0}


def test_both_tiers_render_into_one_exposition(registry):
    text = render_prometheus({"serving": registry.snapshot(),
                              "federation": registry.snapshot()})
    families = parse_exposition(text)
    assert "repro_serving_cache_hits_total" in families
    assert "repro_federation_cache_hits_total" in families


def test_empty_payload_renders_empty_string():
    assert render_prometheus({}) == ""
    assert render_prometheus({"serving": None}) == ""


def test_label_values_are_escaped():
    registry = MetricsRegistry()
    registry.counter("node.skipped", node='we"ird\nname\\x').increment()
    text = render_prometheus({"federation": registry.snapshot()})
    families = parse_exposition(text)
    (_, labels, value), = families["repro_federation_node_skipped_total"]["samples"]
    assert value == 1.0
    assert labels["node"] == 'we\\"ird\\nname\\\\x'  # escaped wire form


@pytest.mark.parametrize("raw, cleaned", [
    ("cache.hits", "cache_hits"),
    ("node latency%", "node_latency_"),
    ("9lives", "_9lives"),
    ("already_fine:ok", "already_fine:ok"),
])
def test_sanitize_name(raw, cleaned):
    assert sanitize_name(raw) == cleaned
