"""API observability endpoints: health/ready, slow queries, Prometheus."""

from __future__ import annotations

import json

from repro.earthqube.api import EarthQubeAPI

from test_prometheus import parse_exposition


class TestHealthAndReady:
    def test_health_is_alive(self, served_system):
        assert EarthQubeAPI(served_system).health() == {
            "ok": True, "status": "alive"}

    def test_ready_on_a_built_served_system(self, served_system):
        payload = EarthQubeAPI(served_system).ready()
        assert payload["ready"] is True
        assert payload["system"]["index_built"] is True
        assert payload["system"]["indexed_images"] == len(served_system.cbir)
        assert payload["system"]["serving_enabled"] is True
        assert payload["federation"] is None

    def test_ready_reports_federation_node_counts(self, federation):
        payload = EarthQubeAPI(federation=federation).ready()
        assert payload["ready"] is True
        assert payload["system"] is None
        assert payload["federation"] == {
            "nodes_total": 2, "nodes_open_circuit": 0, "nodes_available": 2,
            "open_breaker_ages_seconds": {}}

    def test_ready_is_json_serializable(self, served_system, federation):
        json.dumps(EarthQubeAPI(served_system, federation=federation).ready())


class TestPrometheusEndpoint:
    def test_prometheus_format_returns_parsing_text(self, served_system):
        api = EarthQubeAPI(served_system)
        api.similar({"name": served_system.archive.names[0], "k": 5})
        text = api.metrics(format="prometheus")
        assert isinstance(text, str)
        families = parse_exposition(text)
        assert "repro_serving_similar_total_seconds" in families
        assert "repro_serving_cache_misses_total" in families

    def test_federated_prometheus_has_node_labels(self, served_system,
                                                  federation):
        api = EarthQubeAPI(served_system, federation=federation)
        api.similar({"name": "a/" + served_system.archive.names[0], "k": 5})
        families = parse_exposition(api.metrics(format="prometheus"))
        latency = families["repro_federation_node_latency_seconds"]
        nodes = {labels.get("node") for _, labels, _ in latency["samples"]}
        assert {"a", "b"} <= nodes

    def test_default_json_format_is_unchanged(self, served_system):
        payload = EarthQubeAPI(served_system).metrics()
        assert payload["ok"] is True
        assert isinstance(payload["serving"], dict)
        json.dumps(payload)

    def test_unknown_format_is_a_validation_error(self, served_system):
        payload = EarthQubeAPI(served_system).metrics(format="xml")
        assert payload == {"ok": False, "error": "ValidationError",
                           "message": payload["message"]}


class TestSlowQueriesEndpoint:
    def test_slow_queries_surface_with_threshold_zero(self, served_system):
        api = EarthQubeAPI(served_system)
        log = served_system.obs.slow_log
        original = log.threshold_ms
        log.threshold_ms = 0.0  # every request records
        try:
            api.similar({"name": served_system.archive.names[3], "k": 5,
                         "trace": True})
            payload = api.slow_queries()
        finally:
            log.threshold_ms = original
            log.clear()
        assert payload["ok"] is True
        assert payload["threshold_ms"] == 0.0
        assert payload["count"] >= 1
        newest = payload["entries"][0]
        assert newest["route"] == "api.similar"
        assert newest["trace_id"] is not None
        assert newest["trace"]["name"] == "api.similar"
        json.dumps(payload)

    def test_limit_truncates_newest_first(self, served_system):
        api = EarthQubeAPI(served_system)
        log = served_system.obs.slow_log
        original = log.threshold_ms
        log.threshold_ms = 0.0
        try:
            for name in served_system.archive.names[:3]:
                api.similar({"name": name, "k": 3})
            payload = api.slow_queries(limit=2)
        finally:
            log.threshold_ms = original
            log.clear()
        assert payload["count"] == 2
        seqs = [entry["seq"] for entry in payload["entries"]]
        assert seqs == sorted(seqs, reverse=True)

    def test_bad_limit_is_a_validation_error(self, served_system):
        api = EarthQubeAPI(served_system)
        assert api.slow_queries(limit=0)["error"] == "ValidationError"
        assert api.slow_queries(limit="nope")["error"] == "ValidationError"

    def test_empty_log_returns_empty_entries(self, direct_system):
        direct_system.obs.slow_log.clear()
        payload = EarthQubeAPI(direct_system).slow_queries()
        assert payload["ok"] is True
        assert payload["entries"] == []


class TestWorkloadEndpoint:
    def test_workload_profile_accumulates_query_families(self, served_system):
        served_system.obs.workload.clear()
        api = EarthQubeAPI(served_system)
        for name in served_system.archive.names[:4]:
            assert api.similar({"name": name, "k": 5})["ok"]
        payload = api.workload()
        assert payload["ok"] is True
        assert payload["recorded_total"] >= 4
        families = {(f["backend"], f["strategy"], f["selectivity"])
                    for f in payload["families"]}
        assert ("mih", "unfiltered", "none") in families
        json.dumps(payload)

    def test_workload_disabled_is_a_validation_error(self, served_system):
        workload = served_system.obs.workload
        try:
            served_system.obs.workload = None
            payload = EarthQubeAPI(served_system).workload()
        finally:
            served_system.obs.workload = workload
        assert payload["error"] == "ValidationError"

    def test_workload_prometheus_families_render(self, served_system):
        api = EarthQubeAPI(served_system)
        api.similar({"name": served_system.archive.names[0], "k": 5})
        families = parse_exposition(api.metrics(format="prometheus"))
        assert "repro_workload_query_latency_seconds" in families
        assert "repro_workload_query_cost_total" in families


class TestExplainCosts:
    def test_similar_explain_carries_cost_counters(self, served_system):
        api = EarthQubeAPI(served_system)
        payload = api.similar({"name": served_system.archive.names[0],
                               "k": 5, "explain": True})
        assert payload["ok"] is True
        explain = payload["explain"]
        assert explain["costs"], "expected non-empty operator counters"
        assert explain["stages"]
        json.dumps(payload)

    def test_search_explain_reports_store_costs(self, served_system):
        api = EarthQubeAPI(served_system)
        label = served_system.archive.patches[0].labels[0]
        payload = api.search({"labels": [label], "explain": True})
        assert payload["ok"] is True
        assert "docs_examined" in payload["explain"]["costs"]

    def test_explain_false_has_no_costs_section(self, served_system):
        api = EarthQubeAPI(served_system)
        payload = api.similar({"name": served_system.archive.names[0], "k": 5})
        assert "explain" not in payload

    def test_batch_explain_totals_the_whole_batch(self, served_system):
        api = EarthQubeAPI(served_system)
        payload = api.similar_batch(
            {"names": list(served_system.archive.names[:3]), "k": 3,
             "explain": True})
        assert payload["ok"] is True
        assert payload["explain"]["costs"]
