"""Observability fixtures: one served system and one small federation.

The traced-query acceptance tests need the full stack on the hot path —
cache, micro-batcher, MIH-backed shards, and a federation scatter — so the
served node runs its shards on the MIH backend (index-internal spans) and
the second node answers through the direct CBIR path.
"""

from __future__ import annotations

import pytest

from repro.config import (
    ArchiveConfig,
    EarthQubeConfig,
    IndexConfig,
    MiLaNConfig,
    ServingConfig,
    TrainConfig,
)
from repro.earthqube import EarthQube


def _bootstrap(seed: int, *, serving: bool = False,
               shard_backend: str = "linear") -> EarthQube:
    config = EarthQubeConfig(
        archive=ArchiveConfig(num_patches=48, seed=seed),
        milan=MiLaNConfig(num_bits=32, hidden_sizes=(48,)),
        train=TrainConfig(epochs=2, triplets_per_epoch=128, batch_size=64),
        index=IndexConfig(hamming_radius=2, mih_tables=4),
        serving=ServingConfig(enabled=serving, num_shards=2,
                              batch_max_delay_ms=0.5, cache_entries=128,
                              shard_backend=shard_backend),
    )
    return EarthQube.bootstrap(config, store_images=False)


@pytest.fixture(scope="module")
def served_system() -> EarthQube:
    """A system whose gateway shards scan through MIH (index spans)."""
    system = _bootstrap(41, serving=True, shard_backend="mih")
    yield system
    system.disable_serving()


@pytest.fixture(scope="module")
def direct_system() -> EarthQube:
    """A system answering on the direct (gateway-less) path."""
    return _bootstrap(42)


@pytest.fixture(scope="module")
def federation(served_system, direct_system):
    """Two-node federation: served MIH node 'a' plus direct node 'b'."""
    fed = EarthQube.federate({"a": served_system, "b": direct_system})
    yield fed
    fed.close()
