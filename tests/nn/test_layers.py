"""Tests for layers, modules, optimizers, init, and serialization."""

import numpy as np
import pytest

from repro.errors import ModelError, ShapeError, ValidationError
from repro.nn import (
    Adam,
    BatchNorm1d,
    Dropout,
    Linear,
    ReLU,
    SGD,
    Sequential,
    Sigmoid,
    Tanh,
    Tensor,
    kaiming_uniform,
    load_state_dict,
    save_state_dict,
    xavier_uniform,
)


class TestLinear:
    def test_forward_shape(self, rng):
        layer = Linear(5, 3, rng=rng)
        out = layer(Tensor(np.ones((4, 5))))
        assert out.shape == (4, 3)

    def test_bias_optional(self, rng):
        layer = Linear(5, 3, bias=False, rng=rng)
        assert layer.bias is None
        out = layer(Tensor(np.zeros((2, 5))))
        np.testing.assert_allclose(out.data, 0.0)

    def test_wrong_input_dim_raises(self, rng):
        layer = Linear(5, 3, rng=rng)
        with pytest.raises(ShapeError):
            layer(Tensor(np.ones((4, 6))))

    def test_invalid_sizes(self):
        with pytest.raises(ValidationError):
            Linear(0, 3)

    def test_parameters_are_trainable(self, rng):
        layer = Linear(5, 3, rng=rng)
        params = list(layer.parameters())
        assert len(params) == 2
        assert all(p.requires_grad for p in params)

    def test_gradient_flows_through(self, rng):
        layer = Linear(4, 2, rng=rng)
        out = layer(Tensor(np.ones((3, 4)))).sum()
        out.backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None
        np.testing.assert_allclose(layer.bias.grad, np.full(2, 3.0))


class TestActivationsAndDropout:
    def test_activation_modules(self):
        x = Tensor(np.array([[-1.0, 2.0]]))
        np.testing.assert_allclose(ReLU()(x).data, [[0.0, 2.0]])
        np.testing.assert_allclose(Tanh()(x).data, np.tanh([[-1.0, 2.0]]))
        np.testing.assert_allclose(Sigmoid()(x).data, 1 / (1 + np.exp([[1.0, -2.0]])))

    def test_dropout_train_vs_eval(self):
        drop = Dropout(0.5, rng=0)
        x = Tensor(np.ones((100, 10)))
        out_train = drop(x)
        zero_fraction = float((out_train.data == 0).mean())
        assert 0.3 < zero_fraction < 0.7
        drop.eval()
        np.testing.assert_allclose(drop(x).data, 1.0)

    def test_dropout_inverted_scaling(self):
        drop = Dropout(0.5, rng=0)
        out = drop(Tensor(np.ones((2000, 10))))
        # E[out] stays ~1 because survivors are scaled by 1/keep.
        assert abs(out.data.mean() - 1.0) < 0.1

    def test_dropout_invalid_p(self):
        with pytest.raises(ValidationError):
            Dropout(1.0)


class TestBatchNorm:
    def test_normalizes_batch(self, rng):
        bn = BatchNorm1d(4)
        x = Tensor(rng.standard_normal((64, 4)) * 5 + 3)
        out = bn(x)
        assert abs(out.data.mean()) < 1e-6
        assert abs(out.data.std() - 1.0) < 0.05

    def test_eval_uses_running_stats(self, rng):
        bn = BatchNorm1d(4, momentum=0.5)
        x = rng.standard_normal((64, 4)) * 2 + 1
        for _ in range(20):
            bn(Tensor(x))
        bn.eval()
        out = bn(Tensor(x))
        assert abs(out.data.mean()) < 0.2

    def test_shape_validation(self):
        bn = BatchNorm1d(4)
        with pytest.raises(ShapeError):
            bn(Tensor(np.ones((3, 5))))

    def test_invalid_config(self):
        with pytest.raises(ValidationError):
            BatchNorm1d(0)
        with pytest.raises(ValidationError):
            BatchNorm1d(4, momentum=0.0)


class TestSequentialAndModule:
    def test_forward_composition(self, rng):
        model = Sequential(Linear(4, 8, rng=1), ReLU(), Linear(8, 2, rng=2))
        out = model(Tensor(np.ones((3, 4))))
        assert out.shape == (3, 2)

    def test_len_and_getitem(self, rng):
        model = Sequential(Linear(4, 8, rng=1), ReLU())
        assert len(model) == 2
        assert isinstance(model[1], ReLU)

    def test_empty_sequential_rejected(self):
        with pytest.raises(ValidationError):
            Sequential()

    def test_parameters_recursive(self):
        model = Sequential(Linear(4, 8, rng=1), ReLU(), Linear(8, 2, rng=2))
        assert len(list(model.parameters())) == 4
        assert model.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2

    def test_train_eval_recursive(self):
        model = Sequential(Linear(4, 8, rng=1), Dropout(0.5, rng=0))
        model.eval()
        assert not model.training
        assert not model[1].training
        model.train()
        assert model[1].training

    def test_zero_grad_recursive(self):
        model = Sequential(Linear(4, 2, rng=1))
        model(Tensor(np.ones((2, 4)))).sum().backward()
        assert model[0].weight.grad is not None
        model.zero_grad()
        assert model[0].weight.grad is None


class TestOptimizers:
    @staticmethod
    def quadratic_loss(param):
        return ((param - 3.0) ** 2).sum()

    def test_sgd_converges(self):
        p = Tensor(np.zeros(4), requires_grad=True)
        opt = SGD([p], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            self.quadratic_loss(p).backward()
            opt.step()
        np.testing.assert_allclose(p.data, 3.0, atol=1e-3)

    def test_sgd_momentum_faster_than_plain(self):
        def run(momentum):
            p = Tensor(np.zeros(1), requires_grad=True)
            opt = SGD([p], lr=0.02, momentum=momentum)
            for _ in range(50):
                opt.zero_grad()
                self.quadratic_loss(p).backward()
                opt.step()
            return abs(p.data[0] - 3.0)
        assert run(0.9) < run(0.0)

    def test_adam_converges(self):
        p = Tensor(np.zeros(4), requires_grad=True)
        opt = Adam([p], lr=0.3)
        for _ in range(200):
            opt.zero_grad()
            self.quadratic_loss(p).backward()
            opt.step()
        np.testing.assert_allclose(p.data, 3.0, atol=1e-2)

    def test_weight_decay_shrinks_solution(self):
        def run(weight_decay):
            p = Tensor(np.zeros(1), requires_grad=True)
            opt = SGD([p], lr=0.1, weight_decay=weight_decay)
            for _ in range(300):
                opt.zero_grad()
                self.quadratic_loss(p).backward()
                opt.step()
            return p.data[0]
        assert run(1.0) < run(0.0)

    def test_skips_parameters_without_grad(self):
        p = Tensor(np.ones(2), requires_grad=True)
        opt = Adam([p], lr=0.1)
        opt.step()  # no backward ran; must not crash or move p
        np.testing.assert_allclose(p.data, 1.0)

    def test_validation(self):
        p = Tensor(np.ones(1), requires_grad=True)
        with pytest.raises(ValidationError):
            Adam([], lr=0.1)
        with pytest.raises(ValidationError):
            Adam([p], lr=-1.0)
        with pytest.raises(ValidationError):
            SGD([p], lr=0.1, momentum=1.5)


class TestInit:
    def test_xavier_bounds(self):
        w = xavier_uniform(100, 100, rng=0)
        limit = np.sqrt(6 / 200)
        assert w.shape == (100, 100)
        assert np.abs(w).max() <= limit

    def test_kaiming_bounds(self):
        w = kaiming_uniform(100, 50, rng=0)
        limit = np.sqrt(6 / 100)
        assert np.abs(w).max() <= limit

    def test_invalid_fans(self):
        with pytest.raises(ValidationError):
            xavier_uniform(0, 5)


class TestSerialization:
    def test_state_dict_roundtrip(self, rng, tmp_path):
        model = Sequential(Linear(4, 8, rng=1), ReLU(), Linear(8, 2, rng=2))
        x = Tensor(rng.standard_normal((3, 4)))
        expected = model(x).data
        path = tmp_path / "model.npz"
        save_state_dict(model, path)

        fresh = Sequential(Linear(4, 8, rng=9), ReLU(), Linear(8, 2, rng=8))
        assert not np.allclose(fresh(x).data, expected)
        load_state_dict(fresh, path)
        np.testing.assert_allclose(fresh(x).data, expected)

    def test_state_dict_includes_batchnorm_buffers(self, rng):
        bn = BatchNorm1d(3)
        bn(Tensor(rng.standard_normal((16, 3)) + 5))
        state = bn.state_dict()
        assert "running_mean" in state
        fresh = BatchNorm1d(3)
        fresh.load_state_dict(state)
        np.testing.assert_allclose(fresh._buffers["running_mean"],
                                   bn._buffers["running_mean"])

    def test_missing_parameter_raises(self):
        model = Linear(2, 2, rng=0)
        with pytest.raises(ValidationError):
            model.load_state_dict({})

    def test_shape_mismatch_raises(self):
        model = Linear(2, 2, rng=0)
        state = model.state_dict()
        state["weight"] = np.zeros((3, 3))
        with pytest.raises(ShapeError):
            model.load_state_dict(state)

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(ModelError):
            load_state_dict(Linear(2, 2, rng=0), tmp_path / "absent.npz")
