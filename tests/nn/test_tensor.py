"""Autograd correctness: ops, broadcasting, and numeric gradient checks."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ShapeError, ValidationError
from repro.nn import Tensor, no_grad
from repro.nn.tensor import stack_tensors


def numeric_gradient(f, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar-valued f at x."""
    grad = np.zeros_like(x, dtype=np.float64)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        original = x[idx]
        x[idx] = original + eps
        f_plus = f(x)
        x[idx] = original - eps
        f_minus = f(x)
        x[idx] = original
        grad[idx] = (f_plus - f_minus) / (2 * eps)
        it.iternext()
    return grad


def check_gradient(op, x: np.ndarray, atol: float = 1e-5):
    """Compare autograd and numeric gradients of `op` (tensor -> scalar)."""
    t = Tensor(x.copy(), requires_grad=True)
    out = op(t)
    out.backward()
    numeric = numeric_gradient(lambda arr: op(Tensor(arr)).item(), x.copy())
    np.testing.assert_allclose(t.grad, numeric, atol=atol)


class TestBasicOps:
    def test_add_backward(self, rng):
        check_gradient(lambda t: (t + 3.0).sum(), rng.standard_normal((3, 4)))

    def test_mul_backward(self, rng):
        check_gradient(lambda t: (t * t).sum(), rng.standard_normal((3, 4)))

    def test_div_backward(self, rng):
        x = rng.standard_normal((3, 4)) + 5.0
        check_gradient(lambda t: (1.0 / t).sum(), x)

    def test_sub_and_rsub(self, rng):
        check_gradient(lambda t: (5.0 - t).sum(), rng.standard_normal((2, 3)))

    def test_pow_backward(self, rng):
        x = np.abs(rng.standard_normal((3, 3))) + 0.5
        check_gradient(lambda t: (t ** 3).sum(), x)

    def test_pow_requires_scalar(self):
        with pytest.raises(ValidationError):
            Tensor([1.0]) ** Tensor([2.0])

    def test_neg(self, rng):
        check_gradient(lambda t: (-t).sum(), rng.standard_normal((4,)))

    def test_matmul_backward_both_sides(self, rng):
        a = rng.standard_normal((3, 4))
        b = rng.standard_normal((4, 2))
        ta = Tensor(a.copy(), requires_grad=True)
        tb = Tensor(b.copy(), requires_grad=True)
        (ta @ tb).sum().backward()
        na = numeric_gradient(lambda arr: float((arr @ b).sum()), a.copy())
        nb = numeric_gradient(lambda arr: float((a @ arr).sum()), b.copy())
        np.testing.assert_allclose(ta.grad, na, atol=1e-5)
        np.testing.assert_allclose(tb.grad, nb, atol=1e-5)

    def test_matmul_vector_cases(self, rng):
        v = Tensor(rng.standard_normal(4), requires_grad=True)
        m = Tensor(rng.standard_normal((4, 3)), requires_grad=True)
        out = (v @ m).sum()
        out.backward()
        assert v.grad.shape == (4,)
        assert m.grad.shape == (4, 3)

    def test_matmul_3d_rejected(self):
        with pytest.raises(ShapeError):
            Tensor(np.zeros((2, 2, 2))) @ Tensor(np.zeros((2, 2)))


class TestNonlinearities:
    def test_relu_backward(self, rng):
        x = rng.standard_normal((5, 5)) + 0.1  # avoid the kink
        check_gradient(lambda t: t.relu().sum(), x)

    def test_tanh_backward(self, rng):
        check_gradient(lambda t: t.tanh().sum(), rng.standard_normal((4, 4)))

    def test_sigmoid_backward(self, rng):
        check_gradient(lambda t: t.sigmoid().sum(), rng.standard_normal((4, 4)))

    def test_exp_log_backward(self, rng):
        x = np.abs(rng.standard_normal((3, 3))) + 0.5
        check_gradient(lambda t: t.exp().sum(), x)
        check_gradient(lambda t: t.log().sum(), x)

    def test_abs_backward(self, rng):
        x = rng.standard_normal((4, 4))
        x[np.abs(x) < 0.05] = 0.5  # keep away from the kink
        check_gradient(lambda t: t.abs().sum(), x)

    def test_sqrt_backward(self, rng):
        x = np.abs(rng.standard_normal((3, 3))) + 0.5
        check_gradient(lambda t: t.sqrt().sum(), x)

    def test_maximum_backward(self, rng):
        x = rng.standard_normal((4, 4))
        x[np.abs(x - 0.2) < 0.05] = 1.0
        check_gradient(lambda t: t.maximum(0.2).sum(), x)

    def test_clip_values_and_grad_mask(self):
        t = Tensor(np.array([-2.0, 0.0, 2.0]), requires_grad=True)
        out = t.clip(-1.0, 1.0)
        np.testing.assert_allclose(out.data, [-1.0, 0.0, 1.0])
        out.sum().backward()
        np.testing.assert_allclose(t.grad, [0.0, 1.0, 0.0])


class TestReductionsAndShaping:
    def test_sum_axis_backward(self, rng):
        check_gradient(lambda t: (t.sum(axis=0) ** 2).sum(), rng.standard_normal((3, 4)))

    def test_sum_keepdims(self, rng):
        t = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        out = t.sum(axis=1, keepdims=True)
        assert out.shape == (3, 1)
        out.sum().backward()
        np.testing.assert_allclose(t.grad, np.ones((3, 4)))

    def test_mean_backward(self, rng):
        check_gradient(lambda t: (t.mean(axis=1) ** 2).sum(), rng.standard_normal((3, 4)))

    def test_mean_global(self, rng):
        t = Tensor(rng.standard_normal((2, 5)), requires_grad=True)
        t.mean().backward()
        np.testing.assert_allclose(t.grad, np.full((2, 5), 1 / 10))

    def test_reshape_roundtrip_gradient(self, rng):
        check_gradient(lambda t: (t.reshape(6) ** 2).sum(), rng.standard_normal((2, 3)))

    def test_transpose_gradient(self, rng):
        check_gradient(lambda t: (t.T @ Tensor(np.ones((2, 2)))).sum(),
                       rng.standard_normal((2, 3)))

    def test_getitem_gradient(self, rng):
        x = rng.standard_normal((5, 3))
        t = Tensor(x.copy(), requires_grad=True)
        (t[1:3] ** 2).sum().backward()
        expected = np.zeros_like(x)
        expected[1:3] = 2 * x[1:3]
        np.testing.assert_allclose(t.grad, expected)

    def test_stack_tensors_gradient(self, rng):
        a = Tensor(rng.standard_normal(3), requires_grad=True)
        b = Tensor(rng.standard_normal(3), requires_grad=True)
        stack_tensors([a, b]).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(3))
        np.testing.assert_allclose(b.grad, np.ones(3))

    def test_stack_empty_rejected(self):
        with pytest.raises(ValidationError):
            stack_tensors([])


class TestBroadcasting:
    def test_row_broadcast_add(self, rng):
        a = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        b = Tensor(rng.standard_normal(4), requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((3, 4)))
        np.testing.assert_allclose(b.grad, np.full(4, 3.0))

    def test_column_broadcast_mul(self, rng):
        a = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        b = Tensor(rng.standard_normal((3, 1)), requires_grad=True)
        (a * b).sum().backward()
        assert b.grad.shape == (3, 1)
        np.testing.assert_allclose(b.grad[:, 0], a.data.sum(axis=1))

    def test_scalar_broadcast(self, rng):
        a = Tensor(rng.standard_normal((2, 2)), requires_grad=True)
        (a * 3.0 + 1.0).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 2), 3.0))


class TestGraphMechanics:
    def test_gradient_accumulates_across_uses(self):
        t = Tensor(np.array([2.0]), requires_grad=True)
        ((t * t) + t).backward()  # d/dt (t^2 + t) = 2t + 1 = 5
        np.testing.assert_allclose(t.grad, [5.0])

    def test_diamond_graph(self):
        t = Tensor(np.array([3.0]), requires_grad=True)
        a = t * 2.0
        b = t * 4.0
        (a * b).backward()  # d/dt 8 t^2 = 16 t = 48
        np.testing.assert_allclose(t.grad, [48.0])

    def test_backward_requires_grad(self):
        with pytest.raises(ValidationError):
            Tensor(np.ones(2)).sum().backward()

    def test_backward_on_nonscalar_needs_gradient(self):
        t = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(ShapeError):
            (t * 2).backward()
        (t * 2).backward(np.ones(3))
        np.testing.assert_allclose(t.grad, [2.0, 2.0, 2.0])

    def test_no_grad_blocks_graph(self):
        t = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            out = (t * 2).sum()
        assert not out.requires_grad

    def test_detach(self):
        t = Tensor(np.ones(3), requires_grad=True)
        d = t.detach()
        assert not d.requires_grad
        assert d.data is t.data

    def test_zero_grad(self):
        t = Tensor(np.ones(3), requires_grad=True)
        (t * 2).sum().backward()
        assert t.grad is not None
        t.zero_grad()
        assert t.grad is None

    def test_item_requires_single_element(self):
        with pytest.raises(ShapeError):
            Tensor(np.ones(3)).item()
        assert Tensor(np.array([7.0])).item() == 7.0

    def test_deep_chain_no_recursion_error(self):
        t = Tensor(np.array([1.0]), requires_grad=True)
        out = t
        for _ in range(3000):
            out = out + 1.0
        out.backward()
        np.testing.assert_allclose(t.grad, [1.0])


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=1, max_value=5), st.integers(min_value=1, max_value=5),
       st.integers(min_value=0, max_value=10_000))
def test_property_composite_expression_gradient(rows, cols, seed):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((rows, cols))

    def op(t):
        return ((t.tanh() * 2.0 + t.sigmoid()) ** 2).mean()

    check_gradient(op, x, atol=1e-4)
