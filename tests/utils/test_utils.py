"""Tests for utils (rng, validation, timing) and config validation."""

import numpy as np
import pytest

from repro.config import (
    ArchiveConfig,
    EarthQubeConfig,
    GeoIndexConfig,
    IndexConfig,
    MiLaNConfig,
    TrainConfig,
)
from repro.errors import ValidationError
from repro.utils import (
    Stopwatch,
    as_rng,
    check_fraction,
    check_in_range,
    check_non_empty,
    check_positive,
    check_type,
    format_seconds,
    spawn_rng,
)


class TestRng:
    def test_int_seed_deterministic(self):
        assert as_rng(5).random() == as_rng(5).random()

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_bad_seed_type(self):
        with pytest.raises(ValidationError):
            as_rng("seed")

    def test_spawn_independent_streams(self):
        parent = as_rng(1)
        children = spawn_rng(parent, 3)
        assert len(children) == 3
        values = [c.random() for c in children]
        assert len(set(values)) == 3

    def test_spawn_negative(self):
        with pytest.raises(ValidationError):
            spawn_rng(as_rng(0), -1)


class TestValidationHelpers:
    def test_check_positive(self):
        check_positive("x", 1)
        with pytest.raises(ValidationError):
            check_positive("x", 0)

    def test_check_fraction(self):
        check_fraction("f", 0.5)
        check_fraction("f", 0.0)
        with pytest.raises(ValidationError):
            check_fraction("f", 1.5)
        with pytest.raises(ValidationError):
            check_fraction("f", 0.0, inclusive=False)

    def test_check_in_range(self):
        check_in_range("r", 5, 0, 10)
        with pytest.raises(ValidationError):
            check_in_range("r", 11, 0, 10)

    def test_check_non_empty(self):
        check_non_empty("l", [1])
        with pytest.raises(ValidationError):
            check_non_empty("l", [])
        with pytest.raises(ValidationError):
            check_non_empty("l", iter([1]))  # not sized

    def test_check_type(self):
        check_type("t", 5, int)
        check_type("t", 5, (int, float))
        with pytest.raises(ValidationError):
            check_type("t", "5", int)


class TestStopwatch:
    def test_accumulates_laps(self):
        sw = Stopwatch()
        with sw:
            pass
        with sw:
            pass
        assert len(sw.laps) == 2
        assert sw.total_seconds == pytest.approx(sum(sw.laps))
        assert sw.mean_seconds == pytest.approx(sw.total_seconds / 2)

    def test_double_start_rejected(self):
        sw = Stopwatch()
        sw.start()
        with pytest.raises(RuntimeError):
            sw.start()

    def test_stop_without_start(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_format_seconds_units(self):
        assert format_seconds(2e-9).endswith("ns")
        assert format_seconds(5e-5).endswith("us")
        assert format_seconds(0.005).endswith("ms")
        assert format_seconds(2.5).endswith(" s")


class TestConfigs:
    def test_archive_config_defaults_valid(self):
        config = ArchiveConfig()
        assert config.patch_size_10m == 120

    def test_archive_config_validation(self):
        with pytest.raises(ValidationError):
            ArchiveConfig(num_patches=0)
        with pytest.raises(ValidationError):
            ArchiveConfig(min_labels=3, max_labels=2)
        with pytest.raises(ValidationError):
            ArchiveConfig(patch_size_10m=120, patch_size_20m=50)

    def test_milan_config_validation(self):
        MiLaNConfig(num_bits=16)
        with pytest.raises(ValidationError):
            MiLaNConfig(num_bits=10)  # not a multiple of 8
        with pytest.raises(ValidationError):
            MiLaNConfig(triplet_margin=0.0)
        with pytest.raises(ValidationError):
            MiLaNConfig(weight_triplet=-1.0)
        with pytest.raises(ValidationError):
            MiLaNConfig(dropout=1.0)

    def test_train_config_validation(self):
        with pytest.raises(ValidationError):
            TrainConfig(epochs=0)
        with pytest.raises(ValidationError):
            TrainConfig(batch_size=128, triplets_per_epoch=64)

    def test_index_config_validation(self):
        IndexConfig(hamming_radius=0)
        with pytest.raises(ValidationError):
            IndexConfig(hamming_radius=-1)
        with pytest.raises(ValidationError):
            IndexConfig(mih_tables=0)

    def test_geo_index_config_validation(self):
        with pytest.raises(ValidationError):
            GeoIndexConfig(precision=0)

    def test_earthqube_config_composition(self):
        config = EarthQubeConfig(archive=ArchiveConfig(num_patches=10))
        assert config.archive.num_patches == 10
        assert config.cart_page_limit == 50
        with pytest.raises(ValidationError):
            EarthQubeConfig(max_rendered_images=0)

    def test_configs_are_frozen(self):
        config = ArchiveConfig()
        with pytest.raises(Exception):
            config.num_patches = 5
