"""Tests for the MiLaN losses, similarity ground truth, and binarization."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import MiLaNConfig
from repro.core import (
    bit_balance_loss,
    binarize_continuous,
    independence_loss,
    jaccard_similarity_matrix,
    milan_loss,
    quantization_loss,
    shares_label_matrix,
    triplet_loss,
)
from repro.core.binarize import bit_activation_rates, bit_entropy, quantization_error
from repro.errors import ShapeError
from repro.nn import Tensor


class TestSimilarity:
    def test_shares_label_matrix(self):
        labels = np.array([
            [1, 0, 0],
            [1, 1, 0],
            [0, 0, 1],
        ], dtype=bool)
        sim = shares_label_matrix(labels)
        assert sim[0, 1] and sim[1, 0]
        assert not sim[0, 2]
        assert sim[0, 0]  # self-similar

    def test_shares_two_sets(self):
        a = np.array([[1, 0]], dtype=bool)
        b = np.array([[1, 1], [0, 1]], dtype=bool)
        sim = shares_label_matrix(a, b)
        assert sim.shape == (1, 2)
        assert sim[0, 0] and not sim[0, 1]

    def test_jaccard_values(self):
        a = np.array([[1, 1, 0, 0]], dtype=bool)
        b = np.array([[1, 1, 0, 0], [1, 0, 1, 0], [0, 0, 1, 1]], dtype=bool)
        jac = jaccard_similarity_matrix(a, b)[0]
        assert jac[0] == pytest.approx(1.0)
        assert jac[1] == pytest.approx(1 / 3)
        assert jac[2] == pytest.approx(0.0)

    def test_dimension_mismatch(self):
        with pytest.raises(ShapeError):
            shares_label_matrix(np.ones((2, 3), bool), np.ones((2, 4), bool))


class TestTripletLoss:
    def test_zero_when_margin_satisfied(self):
        anchors = Tensor(np.zeros((4, 8)))
        positives = Tensor(np.zeros((4, 8)))
        negatives = Tensor(np.full((4, 8), 2.0))  # far away
        loss = triplet_loss(anchors, positives, negatives, margin=1.0)
        assert loss.item() == 0.0

    def test_positive_when_violated(self):
        anchors = Tensor(np.zeros((4, 8)))
        positives = Tensor(np.full((4, 8), 2.0))   # far positive
        negatives = Tensor(np.zeros((4, 8)))       # negative at anchor
        loss = triplet_loss(anchors, positives, negatives, margin=1.0)
        assert loss.item() == pytest.approx(4.0 + 1.0)

    def test_margin_increases_loss(self):
        rng = np.random.default_rng(0)
        a = Tensor(rng.standard_normal((8, 16)))
        p = Tensor(rng.standard_normal((8, 16)))
        n = Tensor(rng.standard_normal((8, 16)))
        assert triplet_loss(a, p, n, margin=2.0).item() >= \
               triplet_loss(a, p, n, margin=0.5).item()

    def test_gradient_flows(self):
        a = Tensor(np.zeros((2, 4)), requires_grad=True)
        p = Tensor(np.ones((2, 4)))
        n = Tensor(np.zeros((2, 4)))
        loss = triplet_loss(a, p, n, margin=1.0)
        loss.backward()
        assert a.grad is not None and np.abs(a.grad).sum() > 0


class TestBitBalanceLoss:
    def test_zero_for_balanced_codes(self):
        codes = Tensor(np.array([[1.0, -1.0], [-1.0, 1.0]]))
        assert bit_balance_loss(codes).item() == pytest.approx(0.0)

    def test_maximal_for_constant_codes(self):
        codes = Tensor(np.ones((8, 4)))
        assert bit_balance_loss(codes).item() == pytest.approx(1.0)

    def test_shape_validation(self):
        with pytest.raises(ShapeError):
            bit_balance_loss(Tensor(np.ones(4)))


class TestIndependenceLoss:
    def test_low_for_orthogonal_bits(self):
        # Hadamard-like balanced, decorrelated columns of +-1.
        codes = Tensor(np.array([
            [1.0, 1.0], [1.0, -1.0], [-1.0, 1.0], [-1.0, -1.0]]))
        assert independence_loss(codes).item() == pytest.approx(0.0)

    def test_high_for_duplicated_bits(self):
        column = np.array([[1.0], [-1.0], [1.0], [-1.0]])
        codes = Tensor(np.hstack([column, column]))
        assert independence_loss(codes).item() > 0.2


class TestQuantizationLoss:
    def test_zero_at_plus_minus_one(self):
        codes = Tensor(np.array([[1.0, -1.0], [-1.0, 1.0]]))
        assert quantization_loss(codes).item() == pytest.approx(0.0)

    def test_maximal_at_zero(self):
        codes = Tensor(np.zeros((4, 8)))
        assert quantization_loss(codes).item() == pytest.approx(1.0)

    def test_symmetric_in_sign(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(-1, 1, size=(6, 8))
        assert quantization_loss(Tensor(x)).item() == \
               pytest.approx(quantization_loss(Tensor(-x)).item())


class TestCombinedLoss:
    def _batch(self, seed=0):
        rng = np.random.default_rng(seed)

        def make():
            return Tensor(rng.uniform(-1, 1, size=(6, 16)), requires_grad=True)

        return make(), make(), make()

    def test_breakdown_contains_all_terms(self):
        a, p, n = self._batch()
        total, breakdown = milan_loss(a, p, n, MiLaNConfig(num_bits=16))
        assert {"triplet", "bit_balance", "independence", "quantization",
                "total"} <= set(breakdown)
        assert total.item() == pytest.approx(breakdown["total"])

    def test_zero_weights_skip_terms(self):
        a, p, n = self._batch()
        config = MiLaNConfig(num_bits=16, weight_bit_balance=0.0,
                             weight_independence=0.0, weight_quantization=0.0)
        total, breakdown = milan_loss(a, p, n, config)
        assert set(breakdown) == {"triplet", "total"}

    def test_all_zero_weights_yield_zero(self):
        a, p, n = self._batch()
        config = MiLaNConfig(num_bits=16, weight_triplet=0.0,
                             weight_bit_balance=0.0, weight_independence=0.0,
                             weight_quantization=0.0)
        total, _ = milan_loss(a, p, n, config)
        assert total.item() == 0.0

    def test_total_is_weighted_sum(self):
        a, p, n = self._batch()
        config = MiLaNConfig(num_bits=16, weight_triplet=2.0,
                             weight_bit_balance=0.5, weight_independence=0.25,
                             weight_quantization=0.1)
        total, parts = milan_loss(a, p, n, config)
        expected = (2.0 * parts["triplet"] + 0.5 * parts["bit_balance"]
                    + 0.25 * parts["independence"] + 0.1 * parts["quantization"])
        assert total.item() == pytest.approx(expected)

    def test_gradient_reaches_all_inputs(self):
        a, p, n = self._batch()
        total, _ = milan_loss(a, p, n, MiLaNConfig(num_bits=16))
        total.backward()
        for t in (a, p, n):
            assert t.grad is not None


class TestBinarize:
    def test_sign_threshold(self):
        codes = np.array([[-0.5, 0.0, 0.5], [0.9, -0.9, 0.1]])
        bits = binarize_continuous(codes)
        np.testing.assert_array_equal(bits, [[0, 1, 1], [1, 0, 1]])
        assert bits.dtype == np.uint8

    def test_1d_input(self):
        np.testing.assert_array_equal(
            binarize_continuous(np.array([-1.0, 1.0])), [0, 1])

    def test_quantization_error(self):
        assert quantization_error(np.array([[1.0, -1.0]])) == 0.0
        assert quantization_error(np.array([[0.0, 0.0]])) == 1.0

    def test_activation_rates_and_entropy(self):
        bits = np.array([[1, 0], [0, 0], [1, 0], [0, 0]], dtype=np.uint8)
        rates = bit_activation_rates(bits)
        np.testing.assert_allclose(rates, [0.5, 0.0])
        # Entropy: first bit perfect (1.0), second degenerate (0.0).
        assert bit_entropy(bits) == pytest.approx(0.5, abs=1e-6)

    def test_balanced_bits_have_unit_entropy(self, rng):
        bits = (rng.random((2000, 16)) < 0.5).astype(np.uint8)
        assert bit_entropy(bits) > 0.99


@settings(max_examples=30)
@given(seed=st.integers(min_value=0, max_value=9999))
def test_property_losses_nonnegative(seed):
    rng = np.random.default_rng(seed)
    codes = Tensor(rng.uniform(-2, 2, size=(5, 8)))
    assert bit_balance_loss(codes).item() >= 0
    assert independence_loss(codes).item() >= 0
    assert quantization_loss(codes).item() >= 0
