"""Tests for the sampler, trainer, model, and hasher facade.

Training-quality assertions use the session-scoped archive/features so the
expensive parts run once.
"""

import numpy as np
import pytest

from repro.config import MiLaNConfig, TrainConfig
from repro.core import MiLaNHasher, MiLaNNetwork, MiLaNTrainer, TripletSampler
from repro.core.similarity import shares_label_matrix
from repro.errors import NotFittedError, TrainingError, ValidationError
from repro.index import LinearScanIndex


SMALL_MILAN = MiLaNConfig(num_bits=32, hidden_sizes=(64, 32))
SMALL_TRAIN = TrainConfig(epochs=6, triplets_per_epoch=384, batch_size=64, seed=0)


@pytest.fixture(scope="module")
def trained_hasher(features, label_matrix):
    hasher = MiLaNHasher(SMALL_MILAN, SMALL_TRAIN)
    return hasher.fit(features, label_matrix)


class TestSampler:
    def test_triplet_constraints_hold(self, label_matrix, rng):
        sampler = TripletSampler(label_matrix, rng=rng)
        anchors, positives, negatives = sampler.sample(200)
        labels = label_matrix.astype(bool)
        for a, p, n in zip(anchors, positives, negatives):
            assert (labels[a] & labels[p]).any(), "positive must share a label"
            assert not (labels[a] & labels[n]).any(), "negative must share none"
            assert a != p and a != n

    def test_semi_hard_constraints_hold(self, label_matrix, rng):
        sampler = TripletSampler(label_matrix, rng=rng)
        codes = rng.standard_normal((label_matrix.shape[0], 16))
        anchors, positives, negatives = sampler.sample_semi_hard(100, codes, margin=1.0)
        labels = label_matrix.astype(bool)
        for a, p, n in zip(anchors, positives, negatives):
            assert (labels[a] & labels[p]).any()
            assert not (labels[a] & labels[n]).any()

    def test_degenerate_labels_rejected(self):
        all_same = np.ones((5, 3), dtype=bool)
        with pytest.raises(TrainingError):
            TripletSampler(all_same)

    def test_too_few_items_rejected(self):
        with pytest.raises(ValidationError):
            TripletSampler(np.eye(2, dtype=bool))

    def test_sample_count_validation(self, label_matrix):
        sampler = TripletSampler(label_matrix, rng=0)
        with pytest.raises(ValidationError):
            sampler.sample(0)

    def test_valid_anchor_fraction(self, label_matrix):
        sampler = TripletSampler(label_matrix, rng=0)
        assert 0.0 < sampler.valid_anchor_fraction <= 1.0


class TestNetwork:
    def test_output_shape_and_range(self, rng):
        net = MiLaNNetwork(20, MiLaNConfig(num_bits=16, hidden_sizes=(32,)), rng=rng)
        codes = net.encode(rng.standard_normal((5, 20)))
        assert codes.shape == (5, 16)
        assert (np.abs(codes) <= 1.0).all()

    def test_single_vector_encode(self, rng):
        net = MiLaNNetwork(20, MiLaNConfig(num_bits=16, hidden_sizes=(32,)), rng=rng)
        code = net.encode(rng.standard_normal(20))
        assert code.shape == (16,)

    def test_encode_restores_training_mode(self, rng):
        net = MiLaNNetwork(20, MiLaNConfig(num_bits=16, dropout=0.2), rng=rng)
        net.train()
        net.encode(rng.standard_normal((2, 20)))
        assert net.training

    def test_invalid_feature_dim(self):
        with pytest.raises(ValidationError):
            MiLaNNetwork(0)

    def test_num_bits_property(self):
        net = MiLaNNetwork(10, MiLaNConfig(num_bits=24, hidden_sizes=(8,)))
        assert net.num_bits == 24


class TestTrainer:
    def test_loss_decreases(self, features, label_matrix):
        trainer = MiLaNTrainer(SMALL_MILAN, SMALL_TRAIN)
        std = (features - features.mean(0)) / (features.std(0) + 1e-9)
        _, history = trainer.train(std, label_matrix)
        totals = history.components["total"]
        assert totals[-1] < totals[0]

    def test_history_records_all_components(self, features, label_matrix):
        trainer = MiLaNTrainer(SMALL_MILAN, TrainConfig(
            epochs=2, triplets_per_epoch=128, batch_size=64, seed=0))
        std = (features - features.mean(0)) / (features.std(0) + 1e-9)
        _, history = trainer.train(std, label_matrix)
        assert len(history.epochs) == 2
        for key in ("triplet", "bit_balance", "independence", "quantization", "total"):
            assert key in history.components

    def test_early_stopping(self, features, label_matrix):
        trainer = MiLaNTrainer(SMALL_MILAN, TrainConfig(
            epochs=50, triplets_per_epoch=128, batch_size=64, seed=0,
            early_stop_patience=1, learning_rate=1e-6))  # LR so small it stalls
        std = (features - features.mean(0)) / (features.std(0) + 1e-9)
        _, history = trainer.train(std, label_matrix)
        assert len(history.epochs) < 50

    def test_input_validation(self, label_matrix):
        trainer = MiLaNTrainer(SMALL_MILAN, SMALL_TRAIN)
        with pytest.raises(ValidationError):
            trainer.train(np.zeros((10, 5)), label_matrix)  # row mismatch


class TestHasher:
    def test_unfitted_raises(self, features):
        hasher = MiLaNHasher(SMALL_MILAN, SMALL_TRAIN)
        with pytest.raises(NotFittedError):
            hasher.hash_bits(features)

    def test_code_shapes(self, trained_hasher, features):
        bits = trained_hasher.hash_bits(features[:10])
        assert bits.shape == (10, 32)
        assert set(np.unique(bits)) <= {0, 1}
        packed = trained_hasher.hash_packed(features[:10])
        assert packed.shape == (10, 1)
        assert packed.dtype == np.uint64

    def test_continuous_codes_bounded(self, trained_hasher, features):
        continuous = trained_hasher.hash_continuous(features[:10])
        assert (np.abs(continuous) <= 1.0).all()

    def test_deterministic_inference(self, trained_hasher, features):
        a = trained_hasher.hash_packed(features[:5])
        b = trained_hasher.hash_packed(features[:5])
        np.testing.assert_array_equal(a, b)

    def test_retrieval_beats_random(self, trained_hasher, features, label_matrix):
        """The headline property: learned codes retrieve label-similar items."""
        codes = trained_hasher.hash_packed(features)
        index = LinearScanIndex(32)
        index.build(list(range(len(features))), codes)
        similar = shares_label_matrix(label_matrix)
        precisions = []
        random_rates = []
        for q in range(0, len(features), 7):
            results = [r for r in index.search_knn(codes[q], 11) if r.item_id != q][:10]
            precisions.append(np.mean([similar[q, r.item_id] for r in results]))
            random_rates.append(similar[q].mean())
        assert np.mean(precisions) > np.mean(random_rates) + 0.15

    def test_state_dict_roundtrip(self, trained_hasher, features):
        state = trained_hasher.state_dict()
        fresh = MiLaNHasher(SMALL_MILAN, SMALL_TRAIN)
        fresh.load_state_dict(state, feature_dim=features.shape[1])
        np.testing.assert_array_equal(
            fresh.hash_packed(features[:20]), trained_hasher.hash_packed(features[:20]))

    def test_load_state_dict_validation(self, features):
        fresh = MiLaNHasher(SMALL_MILAN, SMALL_TRAIN)
        with pytest.raises(ValidationError):
            fresh.load_state_dict({}, feature_dim=features.shape[1])
