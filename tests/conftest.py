"""Shared fixtures.

Expensive artifacts (archive generation, feature extraction, MiLaN training,
system bootstrap) are session-scoped: the suite builds one small-but-real
system and every integration test interrogates it.  Sizes are chosen so the
whole suite stays fast while the trained hasher is still clearly better than
chance (asserted in the retrieval-quality tests).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bigearthnet import SyntheticArchive
from repro.config import (
    ArchiveConfig,
    EarthQubeConfig,
    IndexConfig,
    MiLaNConfig,
    TrainConfig,
)
from repro.earthqube import EarthQube
from repro.features import FeatureExtractor


SMALL_ARCHIVE_PATCHES = 120
SYSTEM_PATCHES = 220


@pytest.fixture(scope="session")
def archive_config() -> ArchiveConfig:
    return ArchiveConfig(num_patches=SMALL_ARCHIVE_PATCHES, seed=42)


@pytest.fixture(scope="session")
def archive(archive_config) -> SyntheticArchive:
    """A small pixel-bearing archive shared by unit tests."""
    return SyntheticArchive.generate(archive_config)


@pytest.fixture(scope="session")
def extractor() -> FeatureExtractor:
    return FeatureExtractor()


@pytest.fixture(scope="session")
def features(archive, extractor) -> np.ndarray:
    """Feature matrix aligned with ``archive.patches``."""
    return extractor.extract_many(archive.patches)


@pytest.fixture(scope="session")
def label_matrix(archive) -> np.ndarray:
    return archive.label_matrix()


@pytest.fixture(scope="session")
def system_config() -> EarthQubeConfig:
    """Config for the session's bootstrapped EarthQube system."""
    return EarthQubeConfig(
        archive=ArchiveConfig(num_patches=SYSTEM_PATCHES, seed=7),
        milan=MiLaNConfig(num_bits=64, hidden_sizes=(128, 64)),
        train=TrainConfig(epochs=12, triplets_per_epoch=768, batch_size=64, seed=3),
        index=IndexConfig(hamming_radius=2, mih_tables=4),
    )


@pytest.fixture(scope="session")
def system(system_config) -> EarthQube:
    """One fully bootstrapped EarthQube system for integration tests."""
    return EarthQube.bootstrap(system_config)


@pytest.fixture()
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(1234)
