"""Tests for the JSON request API, archive persistence, and online ingestion."""

from datetime import datetime

import numpy as np
import pytest

from repro.bigearthnet import Patch, SyntheticArchive
from repro.bigearthnet.io import load_archive, save_archive
from repro.bigearthnet.synthesis import PatchSynthesizer
from repro.config import ArchiveConfig
from repro.earthqube.api import EarthQubeAPI, parse_query_request
from repro.errors import ArchiveError, ValidationError
from repro.geo import BoundingBox


class TestParseQueryRequest:
    def test_empty_request(self):
        spec = parse_query_request({})
        assert spec.shape is None and spec.labels is None

    def test_rectangle_shape(self):
        spec = parse_query_request({"shape": {
            "type": "rectangle", "west": 0, "south": 40, "east": 10, "north": 50}})
        assert spec.shape.bounding_box().as_tuple() == (0.0, 40.0, 10.0, 50.0)

    def test_circle_shape(self):
        spec = parse_query_request({"shape": {
            "type": "circle", "lon": 8.0, "lat": 47.0, "radius_km": 25}})
        assert spec.shape.contains_point(8.0, 47.0)

    def test_polygon_shape(self):
        spec = parse_query_request({"shape": {
            "type": "polygon", "coordinates": [[0, 0], [10, 0], [5, 10]]}})
        assert spec.shape.contains_point(5, 3)

    def test_full_request(self):
        spec = parse_query_request({
            "date_from": "2017-06-01", "date_to": "2018-05-31",
            "seasons": ["Summer"], "satellites": ["S2"],
            "labels": ["Pastures"], "label_operator": "at_least_and_more",
            "limit": 20, "skip": 5})
        assert spec.limit == 20 and spec.skip == 5
        assert spec.label_operator.value == "at_least_and_more"

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValidationError):
            parse_query_request({"colour": "red"})

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValidationError):
            parse_query_request({"labels": ["Pastures"], "label_operator": "any"})

    def test_bad_shape_type(self):
        with pytest.raises(ValidationError):
            parse_query_request({"shape": {"type": "hexagon"}})
        with pytest.raises(ValidationError):
            parse_query_request({"shape": {"type": "rectangle", "west": 0}})
        with pytest.raises(ValidationError):
            parse_query_request({"shape": "everywhere"})


class TestEarthQubeAPI:
    @pytest.fixture(scope="class")
    def api(self, system):
        return EarthQubeAPI(system)

    def test_search_success(self, api):
        out = api.search({"seasons": ["Summer"], "limit": 5})
        assert out["ok"]
        assert out["total_matches"] > 0
        assert len(out["names"]) <= 5

    def test_search_error_is_structured(self, api):
        out = api.search({"labels": ["Narnia"]})
        assert not out["ok"]
        assert out["error"] == "ValidationError"
        assert "Narnia" in out["message"]

    def test_similar_success(self, api, system):
        out = api.similar({"name": system.archive.names[0], "k": 5})
        assert out["ok"]
        assert len(out["results"]) == 5
        assert all("distance" in r for r in out["results"])

    def test_similar_radius_mode(self, api, system):
        out = api.similar({"name": system.archive.names[0], "radius": 6})
        assert out["ok"]
        assert all(r["distance"] <= 6 for r in out["results"])

    def test_similar_unknown_name(self, api):
        out = api.similar({"name": "nope"})
        assert not out["ok"] and out["error"] == "UnknownPatchError"

    def test_similar_missing_name(self, api):
        out = api.similar({})
        assert not out["ok"]

    def test_statistics(self, api, system):
        out = api.statistics({"names": system.archive.names[:10]})
        assert out["ok"] and out["total_images"] == 10
        assert all({"label", "count", "color"} <= set(bar) for bar in out["bars"])

    def test_statistics_validation(self, api):
        assert not api.statistics({})["ok"]
        assert not api.statistics({"names": []})["ok"]

    def test_feedback(self, api):
        assert api.feedback({"text": "hello"})["ok"]
        assert not api.feedback({})["ok"]
        assert not api.feedback({"text": "x", "category": "rant"})["ok"]

    def test_describe(self, api, system):
        out = api.describe()
        assert out["ok"] and out["archive_patches"] == len(system.archive)


class TestArchiveIO:
    def test_roundtrip(self, tmp_path):
        archive = SyntheticArchive.generate(ArchiveConfig(num_patches=8, seed=3))
        save_archive(archive, tmp_path / "arch")
        loaded = load_archive(tmp_path / "arch")
        assert loaded.names == archive.names
        assert loaded[0].labels == archive[0].labels
        assert loaded[0].season == archive[0].season
        np.testing.assert_array_equal(loaded[3].s2_bands["B08"],
                                      archive[3].s2_bands["B08"])
        np.testing.assert_array_equal(loaded[3].s1_bands["VV"],
                                      archive[3].s1_bands["VV"])
        assert loaded.config == archive.config

    def test_roundtrip_without_s1(self, tmp_path):
        archive = SyntheticArchive.generate(
            ArchiveConfig(num_patches=4, seed=1, include_s1=False))
        save_archive(archive, tmp_path / "nos1")
        loaded = load_archive(tmp_path / "nos1")
        assert not loaded[0].has_s1

    def test_missing_directory(self, tmp_path):
        with pytest.raises(ArchiveError):
            load_archive(tmp_path / "missing")


def _new_patch(config, name="NEW_PATCH_1", labels=("Coniferous forest", "Water bodies")):
    synth = PatchSynthesizer(config)
    s2, s1 = synth.synthesize(labels, "Summer", 4242)
    return Patch(
        name=name, labels=labels, country="Finland",
        bbox=BoundingBox(west=25.0, south=62.0, east=25.012, north=62.011),
        acquisition_date=datetime(2018, 7, 20, 10, 30), season="Summer",
        s2_bands=s2, s1_bands=s1)


class TestOnlineIngestion:
    def test_auto_label_returns_plausible_labels(self, system):
        patch = _new_patch(system.config.archive)
        labels = system.auto_label(patch, k=10)
        assert isinstance(labels, list)
        # voting threshold: every returned label occurs in >= half of top-10
        assert len(labels) <= 10

    def test_ingest_new_patch_end_to_end(self, system):
        patch = _new_patch(system.config.archive, name="NEW_INGEST_1")
        before = len(system.archive)
        summary = system.ingest_new_patch(patch)
        assert summary["name"] == "NEW_INGEST_1"
        assert len(system.archive) == before + 1
        # Searchable through the metadata tier...
        doc = system.db["metadata"].get("NEW_INGEST_1")
        assert doc["properties"]["labels"] == summary["labels"]
        # ...retrievable through CBIR immediately (self-match at distance 0).
        result = system.similar_images("NEW_INGEST_1", k=5)
        assert "NEW_INGEST_1" not in result.names
        assert len(result.names) == 5
        # ...and renderable.
        rgb = system.render("NEW_INGEST_1")
        assert rgb.shape == (120, 120, 3)

    def test_ingest_duplicate_rejected(self, system):
        patch = _new_patch(system.config.archive, name="NEW_INGEST_DUP")
        system.ingest_new_patch(patch)
        with pytest.raises(ValidationError):
            system.ingest_new_patch(patch)

    def test_cbir_add_image_duplicate_rejected(self, system):
        import numpy as np
        with pytest.raises(ValidationError):
            system.cbir.add_image(system.archive.names[0],
                                  np.zeros(system.extractor.dimension))
