"""End-to-end mutable-corpus lifecycle: delete/update across every tier.

The headline regression (the bug this suite was written against): deleting
an image at the store level left its code in the retrieval tier, so
``similar_images`` kept ranking it forever — through the direct path, the
serving gateway, and the federation.  ``EarthQube.delete_image`` couples
the store and the CBIR tier; these tests pin the coupling and the oracle
discipline: after any interleaving of deletes/updates/ingests, every query
path is byte-identical to an index rebuilt from scratch on the surviving
corpus.
"""

import numpy as np
import pytest

from repro.config import (
    ArchiveConfig,
    EarthQubeConfig,
    IndexConfig,
    MiLaNConfig,
    ServingConfig,
    TrainConfig,
)
from repro.earthqube import EarthQube, QuerySpec
from repro.earthqube.api import EarthQubeAPI
from repro.errors import UnknownPatchError
from repro.index.mih import MultiIndexHashing
from repro.store.database import METADATA
from repro.store.persistence import load_database, save_database


@pytest.fixture()
def mutable_system() -> EarthQube:
    """A fresh small system per test: lifecycle tests mutate the corpus."""
    config = EarthQubeConfig(
        archive=ArchiveConfig(num_patches=64, seed=23),
        milan=MiLaNConfig(num_bits=32, hidden_sizes=(48,)),
        train=TrainConfig(epochs=4, triplets_per_epoch=256, batch_size=64,
                          seed=5),
        index=IndexConfig(hamming_radius=2, mih_tables=4),
        serving=ServingConfig(enabled=True, num_shards=4, batch_max_size=8,
                              batch_max_delay_ms=1.0, cache_entries=128),
    )
    system = EarthQube.bootstrap(config, store_images=False)
    yield system
    system.disable_serving()


def shaped(response):
    return [(str(r.item_id), r.distance) for r in response.results]


def rebuilt_oracle(system: EarthQube) -> MultiIndexHashing:
    """An index rebuilt from scratch on the surviving corpus."""
    system.compact_index()  # canonical layout (coordinated across tiers)
    names, codes = system.cbir.indexed_items()
    oracle = MultiIndexHashing(system.hasher.num_bits,
                               system.config.index.mih_tables)
    oracle.build(list(names), codes)
    return oracle


def oracle_by_name(system, oracle, name, k):
    code = system.cbir.code_of(name)
    ranked = [(str(r.item_id), r.distance)
              for r in oracle.search_knn(code, k + 1)
              if r.item_id != name]
    return ranked[:k]


class TestDeleteRegression:
    """db-delete + similar_images must not resurface the deleted patch."""

    def test_deleted_image_gone_from_every_similarity_path(self, mutable_system):
        system = mutable_system
        query = system.archive.names[0]
        victim = system.similar_images(query, k=10).names[0]

        federation = EarthQube.federate({"alpha": system})
        api = EarthQubeAPI(system)
        summary = system.delete_image(victim)
        assert summary["documents_deleted"] >= 1

        # Gateway path.
        assert victim not in system.similar_images(query, k=10).names
        # Direct path.
        direct = system.cbir.query_by_name(query, k=10)
        assert victim not in direct.names
        # Batch path.
        for response in system.similar_images_batch([query], k=10):
            assert victim not in response.names
        # Federated path.
        federated = federation.similar_images(query, k=10).value
        assert victim not in federated.names
        # REST path.
        rest = api.similar({"name": query, "k": 10})
        assert all(r["name"] != victim for r in rest["results"])
        federation.close()

    def test_deleted_image_gone_from_store_and_archive(self, mutable_system):
        system = mutable_system
        victim = system.archive.names[3]
        system.delete_image(victim)
        assert system.db[METADATA].find_one({"name": victim}) is None
        assert victim not in system.archive
        assert not system.cbir.has(victim)
        assert len(system.features) == len(system.archive)
        with pytest.raises(UnknownPatchError):
            system.similar_images(victim, k=5)

    def test_delete_unknown_name_raises_and_mutates_nothing(self, mutable_system):
        system = mutable_system
        docs_before = len(system.db[METADATA])
        indexed_before = len(system.cbir)
        with pytest.raises(UnknownPatchError):
            system.delete_image("no-such-patch")
        assert len(system.db[METADATA]) == docs_before
        assert len(system.cbir) == indexed_before

    def test_deleted_name_can_be_reingested(self, mutable_system):
        system = mutable_system
        victim = system.archive.names[5]
        patch = system.archive.get(victim)
        system.delete_image(victim)
        summary = system.ingest_new_patch(patch)
        assert summary["name"] == victim
        assert system.cbir.has(victim)
        # The re-ingested image answers queries again on both paths.
        gateway_response = system.similar_images(victim, k=5)
        direct = system.cbir.query_by_name(victim, k=5)
        assert shaped(gateway_response) == shaped(direct)


class TestRebuildOracle:
    """Interleaved mutations == rebuild-from-scratch, on every path."""

    def test_interleaved_churn_matches_rebuilt_index(self, mutable_system):
        system = mutable_system
        rng = np.random.default_rng(7)
        # Interleave deletes, updates, and re-ingests.
        for step in range(18):
            names = [n for n in system.archive.names if system.cbir.has(n)]
            pick = names[int(rng.integers(len(names)))]
            action = step % 3
            if action == 0:
                system.delete_image(pick)
            elif action == 1:
                donor = names[int(rng.integers(len(names)))]
                system.update_image(
                    pick, system.extractor.extract(system.archive.get(donor)))
            else:
                patch = system.archive.get(pick)
                system.delete_image(pick)
                system.ingest_new_patch(patch, auto_label_if_missing=False)

        oracle = rebuilt_oracle(system)
        queries = [n for n in system.archive.names if system.cbir.has(n)][:6]
        spec = QuerySpec(seasons=("Summer", "Autumn", "Winter", "Spring"))
        for k in (5, 12):
            # Gateway (sharded) path.
            for query in queries:
                expected = oracle_by_name(system, oracle, query, k)
                assert shaped(system.similar_images(query, k=k)) == expected
            # Batch path.
            for query, response in zip(
                    queries, system.similar_images_batch(queries, k=k)):
                assert shaped(response) == \
                    oracle_by_name(system, oracle, query, k)
            # Direct (MIH) path.
            system.disable_serving()
            for query in queries:
                assert shaped(system.similar_images(query, k=k)) == \
                    oracle_by_name(system, oracle, query, k)
            system.enable_serving()
            # Filtered path (pre and post plans) vs filter-then-rank oracle.
            allowed = set(system.search_service.matching_names(spec))
            for query in queries:
                expected = [(name, distance) for name, distance
                            in oracle_by_name(system, oracle, query,
                                              len(system.cbir))
                            if name in allowed][:k]
                got = system.similar_images(query, k=k, filter=spec)
                assert shaped(got) == expected

    def test_federated_path_matches_rebuilt_index(self, mutable_system):
        system = mutable_system
        for victim in system.archive.names[4:10]:
            system.delete_image(victim)
        oracle = rebuilt_oracle(system)
        federation = EarthQube.federate({"alpha": system})
        queries = [n for n in system.archive.names if system.cbir.has(n)][:4]
        for query in queries:
            merged = federation.similar_images(query, k=9).value
            assert shaped(merged) == oracle_by_name(system, oracle, query, 9)
        batch = federation.similar_images_batch(queries, k=9).value
        for query, response in zip(queries, batch):
            assert shaped(response) == oracle_by_name(system, oracle, query, 9)
        federation.close()

    def test_compaction_threshold_fires_and_is_neutral(self, mutable_system):
        system = mutable_system
        # Tighten the compaction policy on the live service.
        system.cbir.config = IndexConfig(
            hamming_radius=2, mih_tables=4,
            compact_min_dead=3, compact_max_dead_fraction=0.01)
        compactions = 0
        names = list(system.archive.names)
        query = names[-1]
        reference = None
        for victim in names[:8]:
            summary = system.delete_image(victim)
            if summary["compacted"]:
                compactions += 1
                assert system.cbir.dead_rows == 0
        assert compactions >= 2
        reference = shaped(system.similar_images(query, k=7))
        oracle = rebuilt_oracle(system)
        assert reference == oracle_by_name(system, oracle, query, 7)


class TestRestAndPersistence:
    def test_rest_delete_route(self, mutable_system):
        system = mutable_system
        api = EarthQubeAPI(system)
        victim = system.archive.names[2]
        response = api.delete_image(victim)
        assert response["ok"] is True and response["deleted"] is True
        assert response["name"] == victim
        assert api.delete_image(victim)["ok"] is False  # already gone
        assert api.delete_image("")["ok"] is False
        search = api.search({})
        assert victim not in search["names"]

    def test_rest_delete_visible_in_metrics(self, mutable_system):
        system = mutable_system
        api = EarthQubeAPI(system)
        api.delete_image(system.archive.names[0])
        metrics = api.metrics()
        assert metrics["serving"]["counters"]["delete.items"] == 1
        assert metrics["serving"]["gauges"]["index.dead_rows"] == \
            system.cbir.dead_rows

    def test_federated_rest_delete_routes_to_owner(self, mutable_system):
        system = mutable_system
        federation = EarthQube.federate({"alpha": system})
        api = EarthQubeAPI(system, federation=federation)
        victim = system.archive.names[1]
        response = api.delete_image(f"alpha/{victim}")
        assert response["ok"] is True and response["node"] == "alpha"
        assert not system.cbir.has(victim)
        federation.close()

    def test_deletion_round_trips_through_persistence(self, mutable_system, tmp_path):
        system = mutable_system
        victims = system.archive.names[:3]
        for victim in victims:
            system.delete_image(victim)
        target = tmp_path / "snapshot.json"
        save_database(system.db, target)
        restored = load_database(target)
        assert len(restored[METADATA]) == len(system.db[METADATA])
        for victim in victims:
            assert restored[METADATA].find_one({"name": victim}) is None
        # The restored store still plans/queries consistently.
        result = restored[METADATA].find({"properties.season": "Summer"})
        scanned = restored[METADATA].find({"properties.season": "Summer"},
                                          hint="scan")
        assert [d["name"] for d in result] == [d["name"] for d in scanned]
