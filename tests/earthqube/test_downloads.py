"""Tests for the result-panel download services."""

import zipfile
import io

import numpy as np
import pytest

from repro.bigearthnet import LabelCharCodec
from repro.earthqube.downloads import (
    export_collection_zip,
    export_patch_zip,
    names_as_text,
    read_band_from_zip,
)
from repro.earthqube.ingest import ingest_archive
from repro.errors import UnknownPatchError, ValidationError
from repro.store import Database


@pytest.fixture(scope="module")
def populated_db(archive):
    db = Database.earthqube_schema()
    ingest_archive(db, archive, LabelCharCodec(), store_renders=False)
    return db


class TestNamesAsText:
    def test_one_name_per_line(self):
        text = names_as_text(["a", "b", "c"])
        assert text == "a\nb\nc\n"

    def test_empty(self):
        assert names_as_text([]) == ""

    def test_skips_empty_names(self):
        assert names_as_text(["a", "", "b"]) == "a\nb\n"


class TestPatchZip:
    def test_contains_all_bands_and_metadata(self, populated_db, archive):
        name = archive.names[0]
        payload = export_patch_zip(populated_db, name)
        with zipfile.ZipFile(io.BytesIO(payload)) as zf:
            entries = set(zf.namelist())
        assert f"{name}/metadata.json" in entries
        for band in ("B02", "B08", "B11", "VV"):
            assert f"{name}/{band}.npy" in entries

    def test_band_roundtrip(self, populated_db, archive):
        name = archive.names[1]
        payload = export_patch_zip(populated_db, name)
        band = read_band_from_zip(payload, name, "B08")
        np.testing.assert_array_equal(band, archive.get(name).s2_bands["B08"])

    def test_unknown_patch(self, populated_db):
        with pytest.raises(UnknownPatchError):
            export_patch_zip(populated_db, "missing")

    def test_empty_name(self, populated_db):
        with pytest.raises(ValidationError):
            export_patch_zip(populated_db, "")


class TestCollectionZip:
    def test_manifest_and_members(self, populated_db, archive):
        names = archive.names[:3]
        payload = export_collection_zip(populated_db, names)
        with zipfile.ZipFile(io.BytesIO(payload)) as zf:
            manifest = zf.read("names.txt").decode()
            entries = set(zf.namelist())
        assert manifest == names_as_text(names)
        for name in names:
            assert f"{name}/metadata.json" in entries

    def test_deduplicates_names(self, populated_db, archive):
        name = archive.names[0]
        payload = export_collection_zip(populated_db, [name, name])
        with zipfile.ZipFile(io.BytesIO(payload)) as zf:
            manifest = zf.read("names.txt").decode()
        assert manifest.count(name) == 1

    def test_empty_collection_rejected(self, populated_db):
        with pytest.raises(ValidationError):
            export_collection_zip(populated_db, [])

    def test_cart_download_flow(self, populated_db, archive):
        """Cart -> download() -> single collection zip, as the UI does."""
        from repro.earthqube import DownloadCart
        cart = DownloadCart()
        cart.add_page(archive.names[:5])
        collection = cart.download()
        payload = export_collection_zip(populated_db, collection)
        assert len(payload) > 1000
        assert len(cart) == 0
