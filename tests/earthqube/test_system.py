"""Integration tests: the bootstrapped EarthQube system end to end.

These exercise the session-scoped ``system`` fixture (220 patches, trained
MiLaN) across every back-end service, including the paper's three demo
scenarios.
"""

import numpy as np
import pytest

from repro.core.similarity import shares_label_matrix
from repro.earthqube import LabelOperator, QuerySpec
from repro.errors import UnknownPatchError
from repro.geo import BoundingBox, Circle, Rectangle
from repro.workloads import (
    run_label_exploration,
    run_query_by_new_example,
    run_spatial_query_by_example,
)


class TestSearchService:
    def test_match_all(self, system):
        response = system.search(QuerySpec())
        assert response.total_matches == len(system.archive)

    def test_spatial_query_uses_geo_index(self, system):
        shape = Rectangle(BoundingBox(west=20.6, south=59.8, east=31.5, north=70.1))
        response = system.search(QuerySpec(shape=shape))
        assert response.plan == "geo_index:location"
        for doc in response:
            assert doc["properties"]["country"] == "Finland"

    def test_spatial_results_match_naive_filter(self, system):
        shape = Circle(lon=8.2, lat=46.8, radius_km=120.0)
        response = system.search(QuerySpec(shape=shape))
        expected = {p.name for p in system.archive
                    if shape.intersects_bbox(p.bbox)}
        assert set(response.names) == expected

    def test_date_range_filter(self, system):
        response = system.search(QuerySpec(date_from="2017-06-01",
                                           date_to="2017-08-31"))
        for doc in response:
            assert doc["properties"]["acquisition_date"] <= "2017-09-01"
        expected = sum(1 for p in system.archive
                       if p.acquisition_date.isoformat() <= "2017-08-31T23:59:59")
        assert response.total_matches == expected

    def test_season_filter(self, system):
        response = system.search(QuerySpec(seasons=("Winter",)))
        assert all(doc["properties"]["season"] == "Winter" for doc in response)
        expected = sum(1 for p in system.archive if p.season == "Winter")
        assert response.total_matches == expected

    def test_label_some_filter(self, system):
        spec = QuerySpec(labels=("Coniferous forest",), label_operator=LabelOperator.SOME)
        response = system.search(spec)
        assert response.plan == "hash_index:properties.labels"
        expected = sum(1 for p in system.archive if "Coniferous forest" in p.labels)
        assert response.total_matches == expected

    def test_label_exactly_filter_uses_char_index(self, system):
        # Pick a label set that actually occurs.
        target = system.archive[0].labels
        spec = QuerySpec(labels=target, label_operator=LabelOperator.EXACTLY)
        response = system.search(spec)
        assert response.plan == "hash_index:properties.label_chars"
        for doc in response:
            assert set(doc["properties"]["labels"]) == set(target)
        assert system.archive[0].name in response.names

    def test_label_at_least_filter(self, system):
        target = system.archive[0].labels[:2]
        spec = QuerySpec(labels=target,
                         label_operator=LabelOperator.AT_LEAST_AND_MORE)
        response = system.search(spec)
        for doc in response:
            assert set(target) <= set(doc["properties"]["labels"])
        expected = sum(1 for p in system.archive if set(target) <= set(p.labels))
        assert response.total_matches == expected

    def test_string_and_codec_paths_agree(self, system):
        target = system.archive[0].labels
        spec = QuerySpec(labels=target, label_operator=LabelOperator.EXACTLY)
        with_codec = system.search_service.search(spec, use_codec=True)
        without_codec = system.search_service.search(spec, use_codec=False)
        assert sorted(with_codec.names) == sorted(without_codec.names)

    def test_combined_query(self, system):
        shape = Rectangle(BoundingBox(west=-11.0, south=36.0, east=32.0, north=71.0))
        spec = QuerySpec(shape=shape, seasons=("Summer", "Spring"),
                         labels=("Pastures", "Water bodies"),
                         label_operator=LabelOperator.SOME)
        response = system.search(spec)
        for doc in response:
            assert doc["properties"]["season"] in ("Summer", "Spring")
            assert set(doc["properties"]["labels"]) & {"Pastures", "Water bodies"}

    def test_pagination(self, system):
        full = system.search(QuerySpec())
        page = system.search(QuerySpec(limit=10, skip=5))
        assert len(page.documents) == 10
        assert page.total_matches == full.total_matches
        assert page.names == full.names[5:15]

    def test_count_matches_search(self, system):
        spec = QuerySpec(seasons=("Summer",))
        assert system.count(spec) == system.search(spec).total_matches


class TestCBIR:
    def test_query_by_name_excludes_self(self, system):
        name = system.archive.names[0]
        result = system.similar_images(name, k=10)
        assert name not in result.names
        assert len(result.names) >= 1

    def test_results_sorted_by_distance(self, system):
        result = system.similar_images(system.archive.names[1], k=10)
        distances = [r.distance for r in result.results]
        assert distances == sorted(distances)

    def test_retrieval_quality_beats_random(self, system):
        labels = system.archive.label_matrix()
        similar = shares_label_matrix(labels)
        precisions, baselines = [], []
        for q in range(0, len(system.archive), 11):
            name = system.archive.names[q]
            result = system.similar_images(name, k=10)
            rows = [system.archive.index_of(n) for n in result.names]
            if rows:
                precisions.append(np.mean([similar[q, r] for r in rows]))
                baselines.append(similar[q].mean())
        assert np.mean(precisions) > np.mean(baselines) + 0.1

    def test_radius_query(self, system):
        name = system.archive.names[2]
        result = system.similar_images(name, radius=8, k=None)
        assert all(r.distance <= 8 for r in result.results)

    def test_unknown_name_raises(self, system):
        with pytest.raises(UnknownPatchError):
            system.similar_images("NOT_A_PATCH", k=5)

    def test_query_by_new_image(self, system):
        from repro.bigearthnet.synthesis import PatchSynthesizer
        from repro.bigearthnet import Patch
        from datetime import datetime
        synth = PatchSynthesizer(system.config.archive)
        s2, s1 = synth.synthesize(("Sea and ocean", "Beaches, dunes, sands"),
                                  "Summer", 123)
        upload = Patch(name="UPLOAD", labels=("Sea and ocean",),
                       country="Portugal", bbox=system.archive[0].bbox,
                       acquisition_date=datetime(2018, 7, 1), season="Summer",
                       s2_bands=s2, s1_bands=s1)
        result = system.similar_to_new_image(upload, k=10)
        assert result.query_name is None
        assert len(result.names) == 10

    def test_code_lookup(self, system):
        name = system.archive.names[3]
        code = system.cbir.code_of(name)
        assert code.dtype == np.uint64
        with pytest.raises(UnknownPatchError):
            system.cbir.code_of("missing")

    def test_in_memory_hash_table_size(self, system):
        assert len(system.cbir) == len(system.archive)


class TestResultPanelServices:
    def test_statistics_for_names(self, system):
        names = system.archive.names[:20]
        stats = system.statistics_for(names)
        assert stats.total_images == 20
        expected_total = sum(len(system.archive.get(n).labels) for n in names)
        assert sum(stats.counts.values()) == expected_total

    def test_render(self, system):
        rgb = system.render(system.archive.names[0])
        assert rgb.shape == (120, 120, 3)
        assert rgb.dtype == np.uint8
        with pytest.raises(UnknownPatchError):
            system.render("missing")

    def test_render_many_caps_at_limit(self, system):
        names = system.archive.names[:5]
        renders = system.render_many(names)
        assert set(renders) == set(names)

    def test_markers_and_clusters(self, system):
        response = system.search(QuerySpec())
        markers = system.markers_for(response)
        assert len(markers) == len(system.archive)
        clusters = system.markers_for(response, zoom=4)
        assert sum(c.count for c in clusters) == len(system.archive)

    def test_cart_flow(self, system):
        cart = system.new_cart()
        response = system.search(QuerySpec(limit=30))
        cart.add_page(response.names)
        assert len(cart) == 30

    def test_feedback_flow(self, system):
        before = system.feedback_service.count()
        system.submit_feedback("nice retrieval quality")
        assert system.feedback_service.count() == before + 1

    def test_describe(self, system):
        info = system.describe()
        assert info["archive_patches"] == len(system.archive)
        assert info["code_bits"] == 64
        assert len(info["collections"]) == 4


class TestDemoScenarios:
    def test_scenario_label_exploration(self, system):
        result = run_label_exploration(system)
        assert result.scenario == "label_exploration"
        assert result.total_matches > 0
        # Every returned image carries at least one of the selected labels.
        selected = set(result.notes["selected_labels"])
        for doc in system.documents_for(result.returned_names):
            assert set(doc["properties"]["labels"]) & selected
        assert result.statistics is not None

    def test_scenario_spatial_qbe(self, system):
        result = run_spatial_query_by_example(system)
        assert result.query_name is not None
        assert len(result.neighbor_names) > 0
        assert result.notes["rendered"] > 0
        # Query image itself was found in SW Portugal.
        doc = system.documents_for([result.query_name])[0]
        assert doc["properties"]["country"] == "Portugal"

    def test_scenario_query_by_new_example(self, system):
        result = run_query_by_new_example(system, k=10)
        assert result.query_name == "UPLOAD_0001"
        assert len(result.neighbor_names) == 10
        assert isinstance(result.notes["predicted_labels"], list)
