"""Batch CBIR through the service, system, and API layers.

The equivalence contract again, one level up: ``CBIRService.query_batch``,
``EarthQube.similar_images_batch``, and ``EarthQubeAPI.similar_batch``
return responses byte-identical to looping their single-query siblings.
"""

import numpy as np
import pytest

from repro.earthqube.api import EarthQubeAPI


def pairs(results):
    return [(r.item_id, r.distance) for r in results]


@pytest.fixture(scope="module")
def names(system):
    return system.archive.names[:8]


class TestQueryBatch:
    def test_names_knn_equals_loop(self, system, names):
        batch = system.cbir.query_batch(names, k=5)
        for name, response in zip(names, batch):
            single = system.cbir.query_by_name(name, k=5)
            assert response.query_name == single.query_name == name
            assert response.radius_used == single.radius_used
            assert pairs(response.results) == pairs(single.results)

    def test_names_radius_equals_loop(self, system, names):
        batch = system.cbir.query_batch(names, k=None, radius=6)
        for name, response in zip(names, batch):
            single = system.cbir.query_by_name(name, k=None, radius=6)
            assert response.radius_used == single.radius_used == 6
            assert pairs(response.results) == pairs(single.results)

    def test_features_equals_loop(self, system, features=None):
        vectors = [system.extractor.extract(p) for p in system.archive.patches[:4]]
        batch = system.cbir.query_batch(vectors, k=5)
        for vector, response in zip(vectors, batch):
            single = system.cbir.query_by_features(vector, k=5)
            assert response.query_name is None
            assert response.radius_used == single.radius_used
            assert pairs(response.results) == pairs(single.results)

    def test_mixed_names_and_features(self, system, names):
        vector = system.extractor.extract(system.archive.patches[0])
        queries = [names[0], vector, names[1]]
        batch = system.cbir.query_batch(queries, k=4)
        assert batch[0].query_name == names[0]
        assert batch[1].query_name is None
        assert batch[2].query_name == names[1]
        assert pairs(batch[0].results) == \
            pairs(system.cbir.query_by_name(names[0], k=4).results)
        assert pairs(batch[1].results) == \
            pairs(system.cbir.query_by_features(vector, k=4).results)

    def test_duplicate_names_in_one_batch(self, system, names):
        batch = system.cbir.query_batch([names[0], names[0]], k=5)
        assert pairs(batch[0].results) == pairs(batch[1].results)

    def test_k_larger_than_corpus(self, system, names):
        total = len(system.cbir)
        batch = system.cbir.query_batch(names[:2], k=total + 50)
        for name, response in zip(names[:2], batch):
            single = system.cbir.query_by_name(name, k=total + 50)
            assert pairs(response.results) == pairs(single.results)
            assert len(response.results) == total - 1  # self-match dropped

    def test_empty_batch(self, system):
        assert system.cbir.query_batch([], k=5) == []

    def test_order_preserved(self, system, names):
        reversed_batch = system.cbir.query_batch(list(reversed(names)), k=3)
        assert [r.query_name for r in reversed_batch] == list(reversed(names))


class TestSimilarImagesBatch:
    def test_direct_path_equals_loop(self, system, names):
        assert system.gateway is None
        batch = system.similar_images_batch(names, k=5)
        for name, response in zip(names, batch):
            single = system.similar_images(name, k=5)
            assert pairs(response.results) == pairs(single.results)
            assert response.radius_used == single.radius_used

    def test_defaults_to_configured_radius(self, system, names):
        batch = system.similar_images_batch(names[:2], k=None)
        expected_radius = system.config.index.hamming_radius
        for response in batch:
            assert response.radius_used == expected_radius


class TestSimilarBatchEndpoint:
    @pytest.fixture(scope="class")
    def api(self, system):
        return EarthQubeAPI(system)

    def test_matches_single_endpoint(self, api, names):
        batch = api.similar_batch({"names": list(names), "k": 5})
        assert batch["ok"] and batch["count"] == len(names)
        for name, entry in zip(names, batch["queries"]):
            single = api.similar({"name": name, "k": 5})
            assert entry["query"] == single["query"] == name
            assert entry["radius_used"] == single["radius_used"]
            assert entry["results"] == single["results"]

    def test_radius_mode(self, api, names):
        batch = api.similar_batch({"names": [names[0]], "radius": 4})
        single = api.similar({"name": names[0], "radius": 4})
        assert batch["ok"]
        assert batch["queries"][0]["results"] == single["results"]
        assert batch["queries"][0]["radius_used"] == 4

    def test_missing_names_rejected(self, api):
        assert not api.similar_batch({})["ok"]
        assert not api.similar_batch({"names": []})["ok"]
        assert not api.similar_batch({"names": "p1"})["ok"]
        assert not api.similar_batch("nonsense")["ok"]

    def test_unknown_name_is_error_response(self, api):
        response = api.similar_batch({"names": ["no-such-patch"], "k": 3})
        assert not response["ok"]
        assert response["error"] == "UnknownPatchError"


class TestIndexedItemsSnapshot:
    def test_snapshot_is_view_not_copy(self, system):
        names_a, codes_a = system.cbir.indexed_items()
        names_b, codes_b = system.cbir.indexed_items()
        # The matrix is the service's row-aligned store itself: repeated
        # snapshots hand out the same array, not a fresh O(N) stack.
        assert codes_a is codes_b
        assert names_a == names_b
        assert codes_a.shape[0] == len(names_a) == len(system.cbir)

    def test_rows_align_with_code_of(self, system):
        names, codes = system.cbir.indexed_items()
        for row in (0, len(names) // 2, len(names) - 1):
            assert np.array_equal(codes[row], system.cbir.code_of(names[row]))
