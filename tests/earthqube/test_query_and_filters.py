"""Tests for QuerySpec validation and the three label operators."""

import pytest
from hypothesis import given, strategies as st

from repro.bigearthnet import BIGEARTHNET_LABELS, LabelCharCodec
from repro.earthqube import LabelFilter, LabelOperator, QuerySpec
from repro.errors import ValidationError
from repro.geo import Circle


class TestQuerySpec:
    def test_default_is_match_all(self):
        spec = QuerySpec()
        assert not spec.label_filtering_enabled
        assert spec.describe() == "match-all"

    def test_shape_accepted(self):
        spec = QuerySpec(shape=Circle(lon=0, lat=0, radius_km=10))
        assert "circle" in spec.describe()

    def test_bad_shape_rejected(self):
        with pytest.raises(ValidationError):
            QuerySpec(shape="everywhere")

    def test_date_validation(self):
        QuerySpec(date_from="2017-06-01", date_to="2018-05-31")
        with pytest.raises(ValidationError):
            QuerySpec(date_from="01/06/2017")
        with pytest.raises(ValidationError):
            QuerySpec(date_from="2018-01-01", date_to="2017-01-01")

    def test_season_canonicalization(self):
        spec = QuerySpec(seasons=("summer", "WINTER"))
        assert spec.seasons == ("Summer", "Winter")
        with pytest.raises(ValidationError):
            QuerySpec(seasons=("Monsoon",))

    def test_satellite_validation(self):
        QuerySpec(satellites=("S1", "S2"))
        with pytest.raises(ValidationError):
            QuerySpec(satellites=("Landsat",))

    def test_label_validation_and_dedup(self):
        spec = QuerySpec(labels=("Pastures", "Pastures", "Airports"))
        assert spec.labels == ("Pastures", "Airports")
        assert spec.label_filtering_enabled
        with pytest.raises(ValidationError):
            QuerySpec(labels=("Gotham",))
        with pytest.raises(ValidationError):
            QuerySpec(labels=())

    def test_label_operator_type_checked(self):
        with pytest.raises(ValidationError):
            QuerySpec(labels=("Pastures",), label_operator="some")

    def test_pagination_validation(self):
        QuerySpec(limit=10, skip=5)
        with pytest.raises(ValidationError):
            QuerySpec(limit=0)
        with pytest.raises(ValidationError):
            QuerySpec(skip=-1)


class TestLabelFilterOperators:
    IMAGE = ["Pastures", "Water bodies", "Coniferous forest"]

    def _filter(self, labels, operator):
        return LabelFilter(labels, operator)

    def test_some_semantics(self):
        f = self._filter(["Pastures", "Airports"], LabelOperator.SOME)
        assert f.matches_names(self.IMAGE)
        f2 = self._filter(["Airports"], LabelOperator.SOME)
        assert not f2.matches_names(self.IMAGE)

    def test_exactly_semantics(self):
        f = self._filter(self.IMAGE, LabelOperator.EXACTLY)
        assert f.matches_names(self.IMAGE)
        assert not f.matches_names(self.IMAGE + ["Airports"])
        assert not f.matches_names(self.IMAGE[:2])

    def test_at_least_semantics(self):
        f = self._filter(["Pastures", "Water bodies"], LabelOperator.AT_LEAST_AND_MORE)
        assert f.matches_names(self.IMAGE)           # has both + extra
        assert f.matches_names(self.IMAGE[:2])       # has exactly both
        assert not f.matches_names(["Pastures"])     # missing one

    def test_char_path_agrees_with_names(self):
        codec = LabelCharCodec()
        image_chars = codec.encode(self.IMAGE)
        for operator in LabelOperator:
            for selection in (["Pastures"], self.IMAGE, ["Airports"],
                              ["Pastures", "Airports"]):
                f = LabelFilter(selection, operator, codec)
                assert f.matches_chars(image_chars) == f.matches_names(self.IMAGE), \
                    f"{operator} on {selection}"

    def test_empty_selection_rejected(self):
        with pytest.raises(ValidationError):
            LabelFilter([], LabelOperator.SOME)

    def test_operator_type_checked(self):
        with pytest.raises(ValidationError):
            LabelFilter(["Pastures"], "some")

    def test_store_query_forms(self):
        some = LabelFilter(["Pastures"], LabelOperator.SOME).store_query()
        assert some == {"properties.labels": {"$in": ["Pastures"]}}
        at_least = LabelFilter(["Pastures", "Airports"],
                               LabelOperator.AT_LEAST_AND_MORE).store_query()
        assert at_least == {"properties.labels": {"$all": ["Pastures", "Airports"]}}

    def test_exactly_store_query_uses_codec(self):
        codec = LabelCharCodec()
        f = LabelFilter(["Pastures", "Water bodies"], LabelOperator.EXACTLY, codec)
        query = f.store_query(use_codec=True)
        assert query == {"properties.label_chars":
                         codec.encode(["Pastures", "Water bodies"])}
        fallback = f.store_query(use_codec=False)
        assert "$and" in fallback

    def test_operator_hierarchy(self):
        """Exactly implies AtLeast&more implies Some (on the same selection)."""
        selection = ["Pastures", "Water bodies"]
        image_sets = [["Pastures", "Water bodies"],
                      ["Pastures", "Water bodies", "Airports"],
                      ["Pastures"], ["Airports"]]
        for image in image_sets:
            exact = LabelFilter(selection, LabelOperator.EXACTLY).matches_names(image)
            at_least = LabelFilter(selection,
                                   LabelOperator.AT_LEAST_AND_MORE).matches_names(image)
            some = LabelFilter(selection, LabelOperator.SOME).matches_names(image)
            if exact:
                assert at_least
            if at_least:
                assert some


@given(
    selection=st.lists(st.sampled_from(BIGEARTHNET_LABELS[:12]), min_size=1,
                       max_size=4, unique=True),
    image=st.lists(st.sampled_from(BIGEARTHNET_LABELS[:12]), min_size=1,
                   max_size=5, unique=True),
    operator=st.sampled_from(list(LabelOperator)),
)
def test_property_string_and_char_paths_agree(selection, image, operator):
    codec = LabelCharCodec()
    f = LabelFilter(selection, operator, codec)
    assert f.matches_names(image) == f.matches_chars(codec.encode(image))


@given(
    selection=st.lists(st.sampled_from(BIGEARTHNET_LABELS[:12]), min_size=1,
                       max_size=4, unique=True),
    image=st.lists(st.sampled_from(BIGEARTHNET_LABELS[:12]), min_size=1,
                   max_size=5, unique=True),
)
def test_property_operator_implication_chain(selection, image):
    exact = LabelFilter(selection, LabelOperator.EXACTLY).matches_names(image)
    at_least = LabelFilter(selection, LabelOperator.AT_LEAST_AND_MORE).matches_names(image)
    some = LabelFilter(selection, LabelOperator.SOME).matches_names(image)
    assert not exact or at_least
    assert not at_least or some
