"""Filtered similarity search: plan equivalence against a brute-force
filter-then-rank oracle, across strategies, tiers, and backends.

Also covers the store-side plan-equivalence satellite: every query the
search service compiles must be byte-identical between the planned and the
forced-scan access paths.
"""

import numpy as np
import pytest

from repro.config import ServingConfig
from repro.earthqube import LabelOperator, QuerySpec
from repro.earthqube.api import EarthQubeAPI
from repro.earthqube.cbir import RowFilter
from repro.errors import ValidationError
from repro.geo import BoundingBox, Rectangle
from repro.index.hamming import hamming_distances_to_query


SPECS = [
    QuerySpec(),
    QuerySpec(seasons=("Summer",)),
    QuerySpec(seasons=("Winter", "Autumn")),
    QuerySpec(date_from="2017-06-01", date_to="2017-09-30"),
    QuerySpec(shape=Rectangle(BoundingBox(west=-10.0, south=35.0,
                                          east=25.0, north=60.0))),
    QuerySpec(labels=("Coniferous forest",), label_operator=LabelOperator.SOME),
    QuerySpec(seasons=("Summer",), date_from="2017-06-01",
              date_to="2017-08-31",
              shape=Rectangle(BoundingBox(west=-15.0, south=30.0,
                                          east=35.0, north=72.0))),
]


def oracle_filtered_knn(system, query_name, k, allowed_names):
    """Brute-force filter-then-rank: the ground truth for every plan."""
    names, codes = system.cbir.indexed_items()
    query = system.cbir.code_of(query_name)
    distances = hamming_distances_to_query(codes, query)
    rows = [row for row, name in enumerate(names) if name in allowed_names]
    rows.sort(key=lambda row: (distances[row], row))
    ranked = [(names[row], int(distances[row])) for row in rows
              if names[row] != query_name]
    return ranked[:k]


def oracle_filtered_radius(system, query_name, radius, allowed_names):
    names, codes = system.cbir.indexed_items()
    query = system.cbir.code_of(query_name)
    distances = hamming_distances_to_query(codes, query)
    rows = [row for row, name in enumerate(names)
            if name in allowed_names and distances[row] <= radius]
    rows.sort(key=lambda row: (distances[row], row))
    return [(names[row], int(distances[row])) for row in rows
            if names[row] != query_name]


def shaped(response):
    return [(str(r.item_id), r.distance) for r in response.results]


class TestCompiledPlanEquivalence:
    """Satellite: compiled queries forced through scan == planned path."""

    @pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.describe())
    def test_compiled_query_scan_identical(self, system, spec):
        metadata = system.db["metadata"]
        query = system.search_service.compile_query(spec)
        planned = metadata.find(query)
        scanned = metadata.find(query, hint="scan")
        assert planned.documents == scanned.documents
        assert planned.total_matches == scanned.total_matches

    def test_multi_condition_search_uses_columnar_plan(self, system):
        spec = QuerySpec(seasons=("Summer",), date_from="2017-06-01",
                         date_to="2017-08-31")
        response = system.search(spec)
        assert response.plan.startswith("columnar:")
        assert "date_column:properties.acquisition_date" in response.plan


class TestFilteredKnnOracle:
    @pytest.mark.parametrize("spec", SPECS[1:], ids=lambda s: s.describe())
    def test_strategies_match_oracle(self, system, spec):
        name = system.archive.names[3]
        allowed = set(system.search_service.matching_names(spec))
        expected = oracle_filtered_knn(system, name, 7, allowed)
        row_filter = system.row_filter_for(spec)
        for strategy in ("pre", "post", "auto"):
            response = system.cbir.query_by_name(name, k=7,
                                                 filter=row_filter,
                                                 strategy=strategy)
            assert shaped(response) == expected, strategy

    def test_system_facade_matches_oracle(self, system):
        spec = SPECS[1]
        name = system.archive.names[0]
        allowed = set(system.search_service.matching_names(spec))
        expected = oracle_filtered_knn(system, name, 10, allowed)
        assert shaped(system.similar_images(name, k=10, filter=spec)) == expected

    def test_no_filter_unchanged(self, system):
        name = system.archive.names[5]
        baseline = shaped(system.similar_images(name, k=10))
        all_names = set(system.archive.names)
        assert baseline == oracle_filtered_knn(system, name, 10, all_names)

    def test_filter_matching_nothing(self, system):
        spec = QuerySpec(date_from="2030-01-01", date_to="2030-01-02")
        response = system.similar_images(system.archive.names[0], k=5,
                                         filter=spec)
        assert response.results == []

    def test_k_larger_than_matches(self, system):
        spec = QuerySpec(seasons=("Winter",))
        name = system.archive.names[0]
        allowed = set(system.search_service.matching_names(spec))
        k = len(allowed) + 50
        expected = oracle_filtered_knn(system, name, k, allowed)
        response = system.similar_images(name, k=k, filter=spec)
        assert shaped(response) == expected
        assert len(response.results) == len(allowed - {name})

    def test_radius_mode(self, system):
        spec = SPECS[1]
        name = system.archive.names[2]
        allowed = set(system.search_service.matching_names(spec))
        expected = oracle_filtered_radius(system, name, 8, allowed)
        row_filter = system.row_filter_for(spec)
        for strategy in ("pre", "post"):
            response = system.cbir.query_by_name(name, k=None, radius=8,
                                                 filter=row_filter,
                                                 strategy=strategy)
            assert shaped(response) == expected, strategy
            assert response.radius_used == 8

    def test_query_by_features_with_filter(self, system, rng):
        spec = SPECS[1]
        features = system.features[7]
        pre = system.cbir.query_by_features(features, k=9,
                                            filter=system.row_filter_for(spec),
                                            strategy="pre")
        post = system.cbir.query_by_features(features, k=9,
                                             filter=system.row_filter_for(spec),
                                             strategy="post")
        assert shaped(pre) == shaped(post)
        allowed = set(system.search_service.matching_names(spec))
        assert all(name in allowed for name, _ in shaped(pre))

    def test_batch_equals_sequential(self, system):
        spec = SPECS[3]
        names = list(system.archive.names[:6])
        row_filter = system.row_filter_for(spec)
        batch = system.cbir.query_batch(names, k=5, filter=row_filter)
        singles = [system.cbir.query_by_name(name, k=5, filter=row_filter)
                   for name in names]
        assert [shaped(r) for r in batch] == [shaped(r) for r in singles]

    def test_unified_query_accepts_spec_and_names(self, system):
        spec = SPECS[1]
        name = system.archive.names[4]
        via_spec = system.cbir.query(name, k=6, filter=spec)
        via_names = system.cbir.query(
            name, k=6, filter=system.search_service.matching_names(spec))
        assert shaped(via_spec) == shaped(via_names)

    def test_bad_strategy_rejected(self, system):
        with pytest.raises(ValidationError):
            system.cbir.query_by_name(system.archive.names[0], k=3,
                                      filter=RowFilter(
                                          mask=np.ones(1, dtype=bool),
                                          names=frozenset({"x"}), count=1),
                                      strategy="sideways")


class TestFilteredServingTier:
    @pytest.mark.parametrize("serving", [
        ServingConfig(enabled=True, num_shards=1),
        ServingConfig(enabled=True, num_shards=4),
        ServingConfig(enabled=True, num_shards=2, shard_backend="mih"),
    ], ids=["K1-linear", "K4-linear", "K2-mih"])
    def test_gateway_matches_direct(self, system, serving):
        spec = SPECS[1]
        broad = SPECS[4]
        name = system.archive.names[1]
        direct = shaped(system.similar_images(name, k=8, filter=spec))
        direct_broad = shaped(system.similar_images(name, k=8, filter=broad))
        system.enable_serving(serving)
        try:
            assert shaped(system.similar_images(name, k=8,
                                                filter=spec)) == direct
            # Second call exercises the filtered cache entry.
            assert shaped(system.similar_images(name, k=8,
                                                filter=spec)) == direct
            # A broad filter takes the post-filter plan; still identical.
            assert shaped(system.similar_images(name, k=8,
                                                filter=broad)) == direct_broad
            # Unfiltered traffic for the same code stays separate.
            unfiltered = shaped(system.similar_images(name, k=8))
            assert unfiltered == shaped(
                system.cbir.query_by_name(name, k=8))
            batch = system.similar_images_batch(
                list(system.archive.names[:5]), k=8, filter=spec)
            singles = [shaped(system.cbir.query_by_name(
                other, k=8, filter=system.row_filter_for(spec)))
                for other in system.archive.names[:5]]
            assert [shaped(r) for r in batch] == singles
        finally:
            system.disable_serving()

    def test_filter_fingerprint_in_metrics(self, system):
        system.enable_serving(ServingConfig(enabled=True, num_shards=2))
        try:
            spec = SPECS[1]
            system.similar_images(system.archive.names[0], k=4, filter=spec)
            snapshot = system.gateway.metrics_snapshot()
            assert (snapshot["counters"].get("filter.prefilter", 0)
                    + snapshot["counters"].get("filter.postfilter", 0)) >= 1
        finally:
            system.disable_serving()


class TestFilteredFederation:
    def test_single_node_federation_identical(self, system):
        from repro.earthqube import EarthQube

        spec = SPECS[1]
        name = system.archive.names[2]
        direct = shaped(system.similar_images(name, k=6, filter=spec))
        federation = EarthQube.federate({"solo": system})
        try:
            federated = federation.similar_images(name, k=6, filter=spec)
            assert shaped(federated.value) == direct
            assert federated.meta.answered == ["solo"]
            batch = federation.similar_images_batch([name], k=6, filter=spec)
            assert shaped(batch.value[0]) == direct
        finally:
            federation.close()


class TestFilteredApi:
    def test_similar_with_filter(self, system):
        api = EarthQubeAPI(system)
        name = system.archive.names[0]
        spec = SPECS[1]
        expected = shaped(system.similar_images(name, k=5, filter=spec))
        payload = api.similar({"name": name, "k": 5,
                               "filter": {"seasons": ["Summer"]}})
        assert payload["ok"]
        assert [(entry["name"], entry["distance"])
                for entry in payload["results"]] == expected

    def test_similar_batch_with_filter(self, system):
        api = EarthQubeAPI(system)
        names = list(system.archive.names[:3])
        payload = api.similar_batch({"names": names, "k": 4,
                                     "filter": {"seasons": ["Summer"]}})
        assert payload["ok"] and payload["count"] == 3
        spec = SPECS[1]
        for name, entry in zip(names, payload["queries"]):
            expected = shaped(system.similar_images(name, k=4, filter=spec))
            assert [(r["name"], r["distance"])
                    for r in entry["results"]] == expected

    def test_filter_with_pagination_rejected(self, system):
        api = EarthQubeAPI(system)
        payload = api.similar({"name": system.archive.names[0], "k": 5,
                               "filter": {"seasons": ["Summer"], "limit": 3}})
        assert not payload["ok"]
        assert payload["error"] == "ValidationError"

    def test_search_explain(self, system):
        api = EarthQubeAPI(system)
        payload = api.search({"seasons": ["Summer"],
                              "date_from": "2017-06-01",
                              "date_to": "2017-08-31",
                              "explain": True})
        assert payload["ok"]
        explain = payload["explain"]
        plan = explain["plan"]
        assert plan["query_plan"].startswith("columnar:")
        # The multi-source query (season posting + two date bounds)
        # exercises the cost-ordered intersection planner: the chosen
        # order, a rejected alternative with its predicted cost, and the
        # measured intersection cost all surface.
        assert len(plan["chosen"]["order"]) >= 2
        assert plan["rejected"] and "predicted_ns" in plan["rejected"][0]
        assert plan["measured_ns"] >= 0
        assert explain["candidates_examined"] >= payload["total_matches"]

    def test_search_without_explain_has_no_section(self, system):
        api = EarthQubeAPI(system)
        payload = api.search({"seasons": ["Summer"]})
        assert payload["ok"] and "explain" not in payload
