"""Tests for statistics, markers, cart, feedback, rendering, ingestion."""

import numpy as np
import pytest

from repro.bigearthnet import LabelCharCodec
from repro.earthqube import (
    DownloadCart,
    FeedbackService,
    Marker,
    MarkerClusterer,
    ingest_archive,
    label_statistics,
    metadata_document,
    render_rgb,
)
from repro.earthqube.ingest import (
    decode_image_document,
    decode_rendered_document,
    image_data_document,
    rendered_image_document,
)
from repro.earthqube.markers import markers_from_documents
from repro.earthqube.rendering import percentile_stretch, render_false_color
from repro.errors import CartError, GeoError, ValidationError
from repro.store import Database


class TestIngestion:
    def test_metadata_document_schema(self, archive):
        codec = LabelCharCodec()
        doc = metadata_document(archive[0], codec)
        assert doc["name"] == archive[0].name
        assert len(doc["location"]["bbox"]) == 4
        props = doc["properties"]
        assert props["labels"] == list(archive[0].labels)
        assert props["label_chars"] == codec.encode(archive[0].labels)
        assert props["season"] == archive[0].season
        assert "S2" in props["satellites"] and "S1" in props["satellites"]

    def test_image_document_roundtrip(self, archive):
        doc = image_data_document(archive[0])
        band = decode_image_document(doc, "B08")
        np.testing.assert_array_equal(band, archive[0].s2_bands["B08"])

    def test_rendered_document_roundtrip(self, archive):
        doc = rendered_image_document(archive[0])
        rgb = decode_rendered_document(doc)
        assert rgb.shape == (120, 120, 3)
        assert rgb.dtype == np.uint8

    def test_ingest_populates_collections(self, archive):
        db = Database.earthqube_schema()
        count = ingest_archive(db, archive)
        assert count == len(archive)
        assert len(db["metadata"]) == len(archive)
        assert len(db["image_data"]) == len(archive)
        assert len(db["rendered_images"]) == len(archive)
        assert len(db["feedback"]) == 0

    def test_ingest_metadata_only(self, archive):
        db = Database.earthqube_schema()
        ingest_archive(db, archive, store_images=False, store_renders=False)
        assert len(db["metadata"]) == len(archive)
        assert len(db["image_data"]) == 0


class TestRendering:
    def test_percentile_stretch_range(self, rng):
        out = percentile_stretch(rng.random((30, 30)) * 0.2)
        assert out.min() == 0.0 and out.max() == 1.0

    def test_percentile_stretch_constant_band(self):
        out = percentile_stretch(np.full((10, 10), 0.4))
        np.testing.assert_array_equal(out, 0.0)

    def test_percentile_stretch_validation(self):
        with pytest.raises(ValidationError):
            percentile_stretch(np.zeros((4, 4)), lower=60, upper=50)

    def test_render_rgb(self, archive):
        rgb = render_rgb(archive[0])
        assert rgb.shape == (120, 120, 3)
        assert rgb.dtype == np.uint8
        assert rgb.max() > 100  # stretched to use the range

    def test_render_false_color_vegetation_red(self):
        from repro.bigearthnet import SyntheticArchive
        from repro.config import ArchiveConfig
        from repro.bigearthnet.synthesis import PatchSynthesizer
        # A pure-forest patch: false color should be NIR-dominant (channel 0).
        synth = PatchSynthesizer(ArchiveConfig(num_patches=1))
        s2, s1 = synth.synthesize(("Broad-leaved forest",), "Summer", 0)
        patch = SyntheticArchive.generate(ArchiveConfig(num_patches=1, seed=0))[0]
        patch.s2_bands.update(s2)
        out = render_false_color(patch)
        assert out.shape == (120, 120, 3)


class TestLabelStatistics:
    DOCS = [
        {"name": "a", "properties": {"labels": ["Pastures", "Water bodies"]}},
        {"name": "b", "properties": {"labels": ["Pastures"]}},
        {"name": "c", "properties": {"labels": ["Sea and ocean"]}},
    ]

    def test_counts(self):
        stats = label_statistics(self.DOCS)
        assert stats.total_images == 3
        assert stats.counts == {"Pastures": 2, "Water bodies": 1, "Sea and ocean": 1}

    def test_sorted_by_count_then_name(self):
        stats = label_statistics(self.DOCS)
        assert stats.labels[0] == "Pastures"
        assert stats.labels[1:] == sorted(stats.labels[1:])

    def test_colors_attached(self):
        stats = label_statistics(self.DOCS)
        for bar in stats:
            assert bar.color.startswith("#")

    def test_dominant(self):
        stats = label_statistics(self.DOCS)
        assert stats.dominant(1) == ["Pastures"]
        with pytest.raises(ValidationError):
            stats.dominant(0)

    def test_empty_input(self):
        stats = label_statistics([])
        assert stats.total_images == 0
        assert len(stats) == 0

    def test_as_rows(self):
        rows = label_statistics(self.DOCS).as_rows()
        assert rows[0][0] == "Pastures" and rows[0][1] == 2


class TestMarkers:
    def test_marker_validation(self):
        with pytest.raises(GeoError):
            Marker("x", 200.0, 0.0)

    def test_markers_from_documents(self):
        docs = [{"name": "a", "location": {"bbox": [10.0, 50.0, 10.2, 50.2]}},
                {"name": "b"}]  # second has no geometry
        markers = markers_from_documents(docs)
        assert len(markers) == 1
        assert markers[0].lon == pytest.approx(10.1)

    def test_count_conservation(self, rng):
        markers = [Marker(f"m{i}", float(rng.uniform(-10, 10)),
                          float(rng.uniform(40, 60))) for i in range(500)]
        for zoom in (2, 6, 10, 15):
            clusters = MarkerClusterer(zoom).cluster(markers)
            assert sum(c.count for c in clusters) == 500

    def test_zoom_monotonicity(self, rng):
        markers = [Marker(f"m{i}", float(rng.uniform(-10, 10)),
                          float(rng.uniform(40, 60))) for i in range(300)]
        counts = [len(MarkerClusterer(z).cluster(markers)) for z in (1, 5, 9, 13)]
        assert counts == sorted(counts), "more zoom -> more (or equal) clusters"

    def test_high_zoom_all_singletons(self):
        markers = [Marker("a", 10.0, 50.0), Marker("b", 11.0, 51.0)]
        clusters = MarkerClusterer(19).cluster(markers)
        assert all(c.is_singleton for c in clusters)
        assert len(clusters) == 2

    def test_cluster_centroid(self):
        markers = [Marker("a", 10.0, 50.0), Marker("b", 10.001, 50.001)]
        clusters = MarkerClusterer(5).cluster(markers)
        assert len(clusters) == 1
        assert clusters[0].lon == pytest.approx(10.0005)

    def test_zoom_validation(self):
        with pytest.raises(ValidationError):
            MarkerClusterer(-1)
        with pytest.raises(ValidationError):
            MarkerClusterer(5, grid_px=0)


class TestCart:
    def test_add_and_dedup(self):
        cart = DownloadCart()
        assert cart.add("a")
        assert not cart.add("a")
        assert len(cart) == 1 and "a" in cart

    def test_add_page_limit_enforced(self):
        cart = DownloadCart(page_limit=50)
        cart.add_page([f"p{i}" for i in range(50)])
        assert len(cart) == 50
        with pytest.raises(CartError):
            cart.add_page([f"q{i}" for i in range(51)])

    def test_combines_multiple_searches(self):
        cart = DownloadCart()
        cart.add_page(["a", "b"])
        cart.add_page(["b", "c"])
        assert cart.names == ["a", "b", "c"]

    def test_remove_and_clear(self):
        cart = DownloadCart()
        cart.add_page(["a", "b"])
        assert cart.remove("a")
        assert not cart.remove("a")
        cart.clear()
        assert len(cart) == 0

    def test_download_empties_cart(self):
        cart = DownloadCart()
        cart.add_page(["a", "b"])
        assert cart.download() == ["a", "b"]
        assert len(cart) == 0

    def test_empty_name_rejected(self):
        with pytest.raises(CartError):
            DownloadCart().add("")


class TestFeedback:
    @pytest.fixture()
    def service(self):
        return FeedbackService(Database.earthqube_schema())

    def test_submit_and_count(self, service):
        service.submit("Great demo!")
        service.submit("Found a bug", category="bug")
        assert service.count() == 2

    def test_recent_ordering(self, service):
        for i in range(3):
            service.submit(f"comment {i}")
        recent = service.recent(2)
        assert len(recent) == 2
        assert recent[0]["text"] == "comment 2"

    def test_anonymous_no_user_field(self, service):
        service.submit("hello")
        doc = service.recent(1)[0]
        assert set(doc.keys()) == {"text", "category", "submitted_at"}

    def test_validation(self, service):
        with pytest.raises(ValidationError):
            service.submit("   ")
        with pytest.raises(ValidationError):
            service.submit("x" * 5000)
        with pytest.raises(ValidationError):
            service.submit("ok", category="rant")
        with pytest.raises(ValidationError):
            service.recent(0)
