"""Tests for feature extraction, normalization, and PCA."""

import numpy as np
import pytest

from repro.config import FeatureConfig
from repro.errors import NotFittedError, ShapeError, ValidationError
from repro.features import PCA, FeatureExtractor, Standardizer, ndbi, ndvi, ndwi
from repro.features.statistics import (
    band_moments,
    gradient_energy,
    histogram_features,
    local_variance,
)


class TestSpectralIndices:
    def test_ndvi_vegetation_positive(self):
        nir = np.full((4, 4), 0.5)
        red = np.full((4, 4), 0.05)
        assert (ndvi(nir, red) > 0.8).all()

    def test_ndvi_water_negative(self):
        nir = np.full((4, 4), 0.02)
        red = np.full((4, 4), 0.05)
        assert (ndvi(nir, red) < 0).all()

    def test_ndwi_water_positive(self):
        green = np.full((4, 4), 0.08)
        nir = np.full((4, 4), 0.02)
        assert (ndwi(green, nir) > 0.5).all()

    def test_ndbi_urban_positive(self):
        swir = np.full((4, 4), 0.3)
        nir = np.full((4, 4), 0.25)
        assert (ndbi(swir, nir) > 0).all()

    def test_range_bounded(self, rng):
        a = rng.random((8, 8))
        b = rng.random((8, 8))
        index = ndvi(a, b)
        assert (index >= -1).all() and (index <= 1).all()

    def test_zero_denominator_safe(self):
        zeros = np.zeros((2, 2))
        assert np.isfinite(ndvi(zeros, zeros)).all()

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            ndvi(np.zeros((2, 2)), np.zeros((3, 3)))


class TestStatistics:
    def test_band_moments_values(self):
        band = np.arange(100, dtype=float).reshape(10, 10)
        moments = band_moments(band)
        assert moments[0] == pytest.approx(49.5)    # mean
        assert moments[3] == pytest.approx(49.5)    # median
        assert moments.shape == (5,)

    def test_band_moments_requires_2d(self):
        with pytest.raises(ShapeError):
            band_moments(np.zeros(10))

    def test_gradient_energy_flat_vs_textured(self, rng):
        flat = np.full((20, 20), 0.5)
        textured = rng.random((20, 20))
        assert gradient_energy(flat) == 0.0
        assert gradient_energy(textured) > 0.1

    def test_local_variance_heterogeneous(self, rng):
        homogeneous = np.full((32, 32), 0.3)
        mixed = np.zeros((32, 32))
        mixed[:, 16:] = 1.0
        assert local_variance(homogeneous) == 0.0
        assert local_variance(mixed, block=32) > local_variance(mixed, block=8)

    def test_local_variance_validation(self):
        with pytest.raises(ValidationError):
            local_variance(np.zeros((8, 8)), block=0)

    def test_histogram_features_sum_to_one(self, rng):
        hist = histogram_features(rng.random((16, 16)), bins=8)
        assert hist.shape == (8,)
        assert hist.sum() == pytest.approx(1.0)

    def test_histogram_bins_validation(self):
        with pytest.raises(ValidationError):
            histogram_features(np.zeros((4, 4)), bins=1)


class TestFeatureExtractor:
    def test_dimension_matches_output(self, archive, extractor):
        vector = extractor.extract(archive[0])
        assert vector.shape == (extractor.dimension,)

    def test_extract_many_shape(self, archive, extractor, features):
        assert features.shape == (len(archive), extractor.dimension)

    def test_extract_many_empty_rejected(self, extractor):
        with pytest.raises(ValidationError):
            extractor.extract_many([])

    def test_deterministic(self, archive, extractor):
        a = extractor.extract(archive[0])
        b = extractor.extract(archive[0])
        np.testing.assert_array_equal(a, b)

    def test_config_changes_dimension(self):
        full = FeatureExtractor(FeatureConfig())
        lean = FeatureExtractor(FeatureConfig(
            include_texture=False, include_spectral_indices=False, include_s1=False))
        assert lean.dimension < full.dimension

    def test_label_similar_patches_closer_than_dissimilar(self, archive, features,
                                                          label_matrix):
        """The property MiLaN training relies on."""
        from repro.core.similarity import shares_label_matrix
        similar = shares_label_matrix(label_matrix)
        std = (features - features.mean(0)) / (features.std(0) + 1e-9)
        rng = np.random.default_rng(0)
        same_distances, diff_distances = [], []
        for _ in range(400):
            i, j = rng.integers(0, len(features), size=2)
            if i == j:
                continue
            d = float(((std[i] - std[j]) ** 2).mean())
            (same_distances if similar[i, j] else diff_distances).append(d)
        assert np.mean(same_distances) < np.mean(diff_distances)

    def test_no_s1_archive_keeps_dimension(self, extractor):
        from repro.bigearthnet import SyntheticArchive
        from repro.config import ArchiveConfig
        no_s1 = SyntheticArchive.generate(
            ArchiveConfig(num_patches=3, seed=1, include_s1=False))
        vector = extractor.extract(no_s1[0])
        assert vector.shape == (extractor.dimension,)


class TestStandardizer:
    def test_zero_mean_unit_std(self, rng):
        x = rng.standard_normal((100, 5)) * 3 + 7
        out = Standardizer().fit_transform(x)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-9)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-9)

    def test_constant_feature_not_scaled(self):
        x = np.ones((10, 2))
        x[:, 1] = np.arange(10)
        out = Standardizer().fit_transform(x)
        np.testing.assert_allclose(out[:, 0], 0.0)

    def test_transform_before_fit(self):
        with pytest.raises(NotFittedError):
            Standardizer().transform(np.ones((2, 2)))

    def test_1d_transform(self, rng):
        x = rng.standard_normal((50, 4))
        std = Standardizer().fit(x)
        one = std.transform(x[0])
        assert one.shape == (4,)
        np.testing.assert_allclose(one, std.transform(x[:1])[0])

    def test_dimension_mismatch(self, rng):
        std = Standardizer().fit(rng.standard_normal((10, 4)))
        with pytest.raises(ShapeError):
            std.transform(rng.standard_normal((5, 3)))


class TestPCA:
    def test_reconstructs_variance_order(self, rng):
        # Data with one dominant direction.
        base = rng.standard_normal((200, 1)) @ np.array([[3.0, 1.0, 0.1]])
        noise = rng.standard_normal((200, 3)) * 0.01
        pca = PCA(2).fit(base + noise)
        assert pca.explained_variance_[0] > pca.explained_variance_[1]

    def test_projection_shape(self, rng):
        x = rng.standard_normal((50, 10))
        out = PCA(4).fit_transform(x)
        assert out.shape == (50, 4)

    def test_components_orthonormal(self, rng):
        pca = PCA(5).fit(rng.standard_normal((100, 20)))
        gram = pca.components_.T @ pca.components_
        np.testing.assert_allclose(gram, np.eye(5), atol=1e-10)

    def test_1d_transform(self, rng):
        x = rng.standard_normal((30, 6))
        pca = PCA(3).fit(x)
        assert pca.transform(x[0]).shape == (3,)

    def test_too_many_components(self, rng):
        with pytest.raises(ValidationError):
            PCA(11).fit(rng.standard_normal((5, 11)))

    def test_transform_before_fit(self):
        with pytest.raises(NotFittedError):
            PCA(2).transform(np.ones((3, 4)))

    def test_centered_projection_zero_mean(self, rng):
        x = rng.standard_normal((80, 6)) + 5.0
        out = PCA(3).fit_transform(x)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-9)


class TestBandMomentsBatch:
    def test_bitwise_equal_to_per_band_path(self):
        from repro.features.statistics import band_moments_batch
        rng = np.random.default_rng(5)
        stack = rng.random((9, 24, 24))
        batch = band_moments_batch(stack)
        assert batch.shape == (9, 5)
        for row in range(stack.shape[0]):
            assert np.array_equal(batch[row], band_moments(stack[row]))

    def test_requires_3d(self):
        from repro.features.statistics import band_moments_batch
        with pytest.raises(ShapeError):
            band_moments_batch(np.zeros((4, 4)))


class TestExtractManyVectorized:
    def test_bitwise_equal_to_per_patch_path(self, archive, extractor):
        """The vectorized fast path must be exactly the per-patch matrix."""
        patches = archive.patches[:25]
        fast = extractor.extract_many(patches)
        slow = np.stack([extractor.extract(patch) for patch in patches])
        assert np.array_equal(fast, slow)

    def test_single_patch_batch(self, archive, extractor):
        fast = extractor.extract_many(archive.patches[:1])
        assert np.array_equal(fast[0], extractor.extract(archive.patches[0]))

    def test_ragged_shapes_fall_back(self, archive, extractor):
        """Mixed band resolutions across patches use the per-patch path."""
        import copy
        a, b = archive.patches[0], archive.patches[1]
        scaled = copy.deepcopy(b)
        scaled.s2_bands.update(
            {name: np.repeat(np.repeat(band, 2, axis=0), 2, axis=1)
             for name, band in b.s2_bands.items()})
        expected_a = extractor.extract(a)
        matrix = extractor.extract_many([a, scaled])
        assert np.array_equal(matrix[0], expected_a)
        assert np.array_equal(matrix[1], extractor.extract(scaled))
