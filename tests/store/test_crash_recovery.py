"""Crash-point fault injection: recovered node == never-crashed oracle.

Every scenario runs a durable system through a randomized churn script,
trips one named crash point (``repro.store.faults.CRASH_POINTS``) mid-op
or mid-checkpoint, "restarts" (fresh bootstrap + ``DurableEarthQube``
auto-recovery against the surviving directory), and then compares the
recovered node byte-for-byte against an oracle: an identical fresh system
with the same op prefix applied directly, no durability layer at all.

The comparison covers every query path — direct similarity, batch,
filtered-similarity pushdown, metadata search, federated scatter-gather,
and the raw store documents — so a divergence anywhere in the recovery
pipeline (WAL framing, snapshot restore, replay, serving rebuild) fails
loudly.
"""

import random
from dataclasses import replace

import numpy as np
import pytest

from repro.bigearthnet.archive import SyntheticArchive
from repro.bigearthnet.labels import LabelCharCodec
from repro.config import (ArchiveConfig, DurabilityConfig, EarthQubeConfig,
                          MiLaNConfig, TrainConfig)
from repro.core.hasher import MiLaNHasher
from repro.earthqube import DurableEarthQube, EarthQube, EarthQubeAPI, QuerySpec
from repro.earthqube.cbir import CBIRService
from repro.earthqube.ingest import ingest_archive
from repro.errors import DurabilityError, ReproError
from repro.features.extractor import FeatureExtractor
from repro.store.database import Database
from repro.store.faults import CRASH_POINTS, CrashPoint, FaultInjector

CFG = EarthQubeConfig(
    archive=ArchiveConfig(num_patches=40, patch_size_10m=24,
                          patch_size_20m=12, patch_size_60m=4, seed=5),
    milan=MiLaNConfig(num_bits=32, hidden_sizes=(32,)),
    train=TrainConfig(epochs=2, batch_size=16, triplets_per_epoch=64),
)
SPARE_CFG = replace(CFG.archive, num_patches=8, seed=99)

#: Points that fire inside WriteAheadLog.append (crash mid-mutation) vs
#: points that fire inside checkpoint() (crash mid-checkpoint).
WAL_APPEND_POINTS = ("wal.mid_record", "wal.before_fsync", "wal.after_fsync")
CHECKPOINT_POINTS = ("wal.truncate", "snapshot.after_tmp_write",
                     "snapshot.before_manifest_replace",
                     "snapshot.after_manifest_replace")


@pytest.fixture(scope="module")
def artifacts():
    """Train once; every test re-assembles cheap systems from these."""
    assert set(WAL_APPEND_POINTS) | set(CHECKPOINT_POINTS) == set(CRASH_POINTS)
    archive = SyntheticArchive.generate(CFG.archive)
    codec = LabelCharCodec()
    extractor = FeatureExtractor(CFG.features)
    features = extractor.extract_many(archive.patches)
    hasher = MiLaNHasher(CFG.milan, CFG.train)
    hasher.fit(features, archive.label_matrix())
    spare_archive = SyntheticArchive.generate(SPARE_CFG)
    assert not set(spare_archive.names) & set(archive.names)
    return {
        "codec": codec,
        "extractor": extractor,
        "hasher": hasher,
        "features": features,
        "names": list(archive.names),
        "spare_by_name": {p.name: p for p in spare_archive.patches},
        "spare_archive": spare_archive,
        "spare_features": extractor.extract_many(spare_archive.patches),
        "all_names": list(archive.names) + list(spare_archive.names),
        "filter_label": archive.patches[0].labels[0],
        "dim": features.shape[1],
    }


def fresh_system(artifacts, directory=None, *, serving=False, verify=False):
    """Deterministic re-bootstrap without re-training (shared hasher)."""
    cfg = replace(CFG, durability=DurabilityConfig(
        directory=None if directory is None else str(directory),
        verify_on_load=verify))
    archive = SyntheticArchive.generate(cfg.archive)
    db = Database.earthqube_schema(geo_precision=cfg.geo_index.precision)
    ingest_archive(db, archive, artifacts["codec"])
    cbir = CBIRService(artifacts["hasher"], artifacts["extractor"], cfg.index)
    cbir.build(archive.names, artifacts["features"])
    system = EarthQube(cfg, archive, db, artifacts["codec"],
                       artifacts["extractor"], artifacts["hasher"], cbir,
                       artifacts["features"].copy())
    if serving:
        system.enable_serving()
    return system


def spare_node(artifacts):
    """A second, disjoint-corpus node for federation scenarios."""
    archive = SyntheticArchive.generate(SPARE_CFG)
    db = Database.earthqube_schema(geo_precision=CFG.geo_index.precision)
    ingest_archive(db, archive, artifacts["codec"])
    cbir = CBIRService(artifacts["hasher"], artifacts["extractor"], CFG.index)
    cbir.build(archive.names, artifacts["spare_features"])
    return EarthQube(CFG, archive, db, artifacts["codec"],
                     artifacts["extractor"], artifacts["hasher"], cbir,
                     artifacts["spare_features"].copy())


# --------------------------------------------------------------------- #
# Churn scripts: every op is (kind, *args), deterministic from a seed,
# applied identically to durable systems and to the bare oracle.
# --------------------------------------------------------------------- #

def build_ops(artifacts, seed, count=12):
    rng = random.Random(seed)
    alive = list(artifacts["names"])
    spares = sorted(artifacts["spare_by_name"])
    ops = []
    while len(ops) < count:
        kind = rng.choice(["ingest", "delete", "delete", "update",
                           "feedback", "meta", "compact"])
        if kind == "ingest":
            if not spares:
                continue
            name = spares.pop(0)
            alive.append(name)
            ops.append(("ingest", name))
        elif kind == "delete":
            if len(alive) <= 10:
                continue
            name = alive.pop(rng.randrange(len(alive)))
            ops.append(("delete", name))
        elif kind == "update":
            ops.append(("update", rng.choice(alive), rng.randrange(10**6)))
        elif kind == "feedback":
            ops.append(("feedback", f"note-{rng.randrange(10**6)}"))
        elif kind == "meta":
            ops.append(("meta", rng.choice(alive), f"tag-{rng.randrange(100)}"))
        else:
            ops.append(("compact",))
    return ops


def apply_op(system, op, artifacts):
    kind = op[0]
    if kind == "ingest":
        system.ingest_new_patch(artifacts["spare_by_name"][op[1]])
    elif kind == "delete":
        system.delete_image(op[1])
    elif kind == "update":
        features = np.random.default_rng(op[2]).normal(size=artifacts["dim"])
        system.update_image(op[1], features)
    elif kind == "feedback":
        system.db["feedback"].insert_one({"text": op[1], "category": "comment"})
    elif kind == "meta":
        system.db["metadata"].update_one({"name": op[1]},
                                         {"$set": {"ops_note": op[2]}})
    elif kind == "compact":
        system.compact_index()
    else:  # pragma: no cover - script bug
        raise AssertionError(f"unknown op {op!r}")


def fingerprint(system, artifacts):
    """Byte-comparable digest of every query path + the raw store."""
    alive = [n for n in artifacts["all_names"] if system.cbir.has(n)]
    sample = alive[:6]

    def pairs(response):
        return [(str(r.item_id), int(r.distance)) for r in response.results]

    fp = {"direct": [pairs(system.similar_images(n, k=5)) for n in sample]}
    fp["batch"] = [pairs(r) for r in
                   system.similar_images_batch(sample[:3], k=5)]
    spec = QuerySpec(labels=(artifacts["filter_label"],))
    fp["filtered"] = pairs(system.similar_images(sample[0], k=5, filter=spec))
    fp["search"] = system.search(QuerySpec(seasons=("Summer",))).names
    federation = EarthQube.federate({"node": system})
    fp["federated"] = pairs(federation.similar_images(sample[0], k=5).value)
    fp["metadata"] = sorted(
        (d["name"], d.get("ops_note"))
        for d in system.db["metadata"].find().documents)
    fp["feedback"] = [d["text"]
                      for d in system.db["feedback"].find().documents]
    return fp


# --------------------------------------------------------------------- #
# The oracle matrix: every crash point x randomized churn interleavings
# --------------------------------------------------------------------- #

def run_crash_scenario(artifacts, tmp_path, point, seed, *, serving=False):
    ops = build_ops(artifacts, seed)
    rng = random.Random(seed * 7919 + 13)
    crash_at = rng.randrange(3, len(ops))
    directory = tmp_path / "dur"
    faults = FaultInjector()
    system = fresh_system(artifacts, directory, serving=serving)
    durable = DurableEarthQube(system, faults=faults)

    if point in WAL_APPEND_POINTS:
        checkpoint_after = rng.choice([None, rng.randrange(1, crash_at)])
        for i, op in enumerate(ops[:crash_at]):
            if checkpoint_after == i:
                durable.checkpoint()
            apply_op(system, op, artifacts)
        faults.arm(point)
        with pytest.raises(CrashPoint):
            apply_op(system, ops[crash_at], artifacts)
        # mid_record leaves a torn (never-durable) record: the crashed op
        # vanishes.  before/after_fsync flushed the full record to the OS:
        # a same-machine restart replays it.
        expected = crash_at if point == "wal.mid_record" else crash_at + 1
        expected_checkpoint = checkpoint_after or 0
    else:
        for op in ops[:crash_at]:
            apply_op(system, op, artifacts)
        faults.arm(point)
        with pytest.raises(CrashPoint):
            durable.checkpoint()
        expected = crash_at
        # Whether the manifest committed before the crash decides which
        # checkpoint recovery starts from — never which state it reaches.
        expected_checkpoint = (
            crash_at if point in ("wal.truncate",
                                  "snapshot.after_manifest_replace") else 0)

    # "kill -9": no close(), no flushing courtesies — just reopen the dir.
    recovered = fresh_system(artifacts, directory, serving=serving)
    durable2 = DurableEarthQube(recovered, faults=FaultInjector())
    info = durable2.recovery_info
    assert info is not None and info["recovered"]
    assert durable2.last_applied_seq == expected
    assert info["checkpoint_seq"] == expected_checkpoint
    assert info["replayed_records"] == expected - expected_checkpoint
    assert info["skipped_records"] == 0

    oracle = fresh_system(artifacts)
    for op in ops[:expected]:
        apply_op(oracle, op, artifacts)
    assert fingerprint(recovered, artifacts) == fingerprint(oracle, artifacts)
    return durable2


@pytest.mark.parametrize("seed", [1, 2])
@pytest.mark.parametrize("point", CRASH_POINTS)
def test_recovered_node_equals_oracle(artifacts, tmp_path, point, seed):
    run_crash_scenario(artifacts, tmp_path, point, seed)


def test_recovery_rebuilds_serving_gateway(artifacts, tmp_path):
    durable = run_crash_scenario(artifacts, tmp_path, "wal.after_fsync", 3,
                                 serving=True)
    gateway = durable.system.gateway
    assert gateway is not None
    # Monotone generations: the restored floor strictly supersedes any
    # generation a client captured before the crash.
    assert gateway._generation > durable.last_applied_seq


# --------------------------------------------------------------------- #
# Restart cost: recovery must not re-extract or re-hash anything
# --------------------------------------------------------------------- #

def test_restart_loads_codes_without_reembedding(artifacts, tmp_path,
                                                 monkeypatch):
    directory = tmp_path / "dur"
    system = fresh_system(artifacts, directory)
    durable = DurableEarthQube(system, faults=FaultInjector())
    system.delete_image(artifacts["names"][0])
    system.db["feedback"].insert_one({"text": "pre-restart",
                                      "category": "comment"})
    durable.checkpoint()
    durable.close()

    # Bootstrap scaffolding first, instrument afterwards: only the
    # recovery path itself must be extraction- and hash-free.
    recovered = fresh_system(artifacts, directory)
    calls = {"extract": 0, "hash": 0}
    real_extract = artifacts["extractor"].extract
    real_hash = artifacts["hasher"].hash_packed

    def counting_extract(patch):
        calls["extract"] += 1
        return real_extract(patch)

    def counting_hash(features):
        calls["hash"] += 1
        return real_hash(features)

    monkeypatch.setattr(artifacts["extractor"], "extract", counting_extract)
    monkeypatch.setattr(artifacts["hasher"], "hash_packed", counting_hash)
    durable2 = DurableEarthQube(recovered, faults=FaultInjector())
    assert durable2.recovery_info["replayed_records"] == 0
    assert calls == {"extract": 0, "hash": 0}
    # The mmap-restored matrix serves queries directly.
    assert not recovered.cbir.has(artifacts["names"][0])
    assert len(recovered.similar_images(artifacts["names"][1], k=5)) == 5
    assert calls["extract"] == 0


# --------------------------------------------------------------------- #
# Append-before-apply: a failed op's record replays to the same failure
# --------------------------------------------------------------------- #

def test_failed_op_record_is_skipped_on_replay(artifacts, tmp_path):
    directory = tmp_path / "dur"
    system = fresh_system(artifacts, directory)
    durable = DurableEarthQube(system, faults=FaultInjector())
    system.delete_image(artifacts["names"][0])
    with pytest.raises(ReproError):
        system.delete_image("no-such-image")
    durable.close()

    recovered = fresh_system(artifacts, directory)
    durable2 = DurableEarthQube(recovered, faults=FaultInjector())
    assert durable2.recovery_info["replayed_records"] == 1
    assert durable2.recovery_info["skipped_records"] == 1
    oracle = fresh_system(artifacts)
    oracle.delete_image(artifacts["names"][0])
    assert fingerprint(recovered, artifacts) == fingerprint(oracle, artifacts)


# --------------------------------------------------------------------- #
# verify_on_load: the sampled re-extraction oracle
# --------------------------------------------------------------------- #

def test_verify_on_load_accepts_clean_state_and_detects_damage(
        artifacts, tmp_path):
    directory = tmp_path / "dur"
    system = fresh_system(artifacts, directory)
    durable = DurableEarthQube(system, faults=FaultInjector())
    system.delete_image(artifacts["names"][3])
    durable.checkpoint()
    durable.close()

    recovered = fresh_system(artifacts, directory, verify=True)
    durable2 = DurableEarthQube(recovered, faults=FaultInjector())
    assert durable2.recovery_info["verified"] is True
    codes_path = (durable2.snapshots.directory
                  / durable2.snapshots.read_manifest().files["codes"])
    durable2.close()

    # Flip a bit in every stored code: external damage the CRC-protected
    # WAL cannot see, but the re-extraction oracle must.
    codes = np.load(codes_path, allow_pickle=False)
    np.save(codes_path, codes ^ np.uint64(1), allow_pickle=False)
    with pytest.raises(DurabilityError, match="re-extraction oracle"):
        DurableEarthQube(fresh_system(artifacts, directory, verify=True),
                         faults=FaultInjector())


# --------------------------------------------------------------------- #
# REST surface: /ready gating and POST /admin/checkpoint
# --------------------------------------------------------------------- #

def test_ready_and_admin_checkpoint_endpoints(artifacts, tmp_path):
    system = fresh_system(artifacts, tmp_path / "dur")
    durable = DurableEarthQube(system, faults=FaultInjector())
    api = EarthQubeAPI(system)

    system.delete_image(artifacts["names"][0])
    system.delete_image(artifacts["names"][1])
    ready = api.ready()
    assert ready["ready"] is True
    state = ready["system"]["durability"]
    assert state["wal_records"] == 2
    assert state["last_applied_seq"] == 2
    assert state["recovery_in_progress"] is False

    response = api.admin_checkpoint()
    assert response["ok"] is True
    assert response["checkpoint"]["wal_seq"] == 2
    assert response["wal_records"] == 0
    assert api.ready()["system"]["durability"]["last_checkpoint_seq"] == 2
    durable.close()


def test_ready_without_durability_reports_disabled(artifacts):
    api = EarthQubeAPI(fresh_system(artifacts))
    assert "durability" not in api.ready()["system"]
    response = api.admin_checkpoint()
    assert response["ok"] is False
    assert "durability tier" in response["message"]


# --------------------------------------------------------------------- #
# Federation: a recovered node re-registers with fresh capabilities
# --------------------------------------------------------------------- #

def test_recovered_node_reregisters_with_federation(artifacts, tmp_path):
    directory = tmp_path / "node-a"
    faults = FaultInjector()
    node_a = fresh_system(artifacts, directory)
    durable = DurableEarthQube(node_a, faults=faults)
    node_b = spare_node(artifacts)
    federation = EarthQube.federate({"a": node_a, "b": node_b})

    node_a.delete_image(artifacts["names"][0])
    node_a.delete_image(artifacts["names"][1])
    faults.arm("wal.after_fsync")
    with pytest.raises(CrashPoint):
        node_a.delete_image(artifacts["names"][2])

    recovered = fresh_system(artifacts, directory)
    durable2 = DurableEarthQube(recovered, faults=FaultInjector())
    assert durable2.last_applied_seq == 3
    durable2.reregister(federation, "a")

    entry = next(e for e in federation.nodes() if e["name"] == "a")
    assert entry["capabilities"]["corpus_size"] == len(recovered.cbir)
    assert entry["capabilities"]["corpus_size"] == len(artifacts["names"]) - 3

    oracle = fresh_system(artifacts)
    for name in artifacts["names"][:3]:
        oracle.delete_image(name)
    # reregister() appends: the recovered "a" now sits after "b" in
    # registration order, which merge tie-breaking follows.
    oracle_fed = EarthQube.federate({"b": node_b, "a": oracle})
    query = artifacts["names"][5]
    got = federation.similar_images(query, k=5)
    want = oracle_fed.similar_images(query, k=5)
    assert ([(str(r.item_id), int(r.distance)) for r in got.value.results]
            == [(str(r.item_id), int(r.distance)) for r in want.value.results])


# --------------------------------------------------------------------- #
# Observability: recovery spans stitch into the caller's trace
# --------------------------------------------------------------------- #

def test_recovery_trace_stitches_with_cost_counters(artifacts, tmp_path):
    """A traced restart sees the whole recovery as one span tree: the
    ``durability.recover`` root with ``recover.load_checkpoint`` and
    ``recover.replay`` children, carrying the ``codes_restored`` /
    ``wal_records_replayed`` cost counters a post-incident drill-down
    needs."""
    from repro.obs import Tracer, profile_from_tree

    directory = tmp_path / "dur"
    system = fresh_system(artifacts, directory)
    DurableEarthQube(system, faults=FaultInjector())
    system.delete_image(artifacts["names"][0])
    system.durability.checkpoint()
    system.delete_image(artifacts["names"][1])
    system.delete_image(artifacts["names"][2])

    recovered = fresh_system(artifacts, directory)
    tracer = Tracer(enabled=True, sample_rate=1.0)
    with tracer.start_trace("restart") as root:
        durable = DurableEarthQube(recovered, faults=FaultInjector())
    assert durable.recovery_info["replayed_records"] == 2

    tree = root.as_dict()
    names: set = set()

    def walk(node):
        names.add(node["name"])
        for child in node.get("children", ()):
            walk(child)

    walk(tree)
    assert {"durability.recover", "recover.load_checkpoint",
            "recover.replay"} <= names

    profile = profile_from_tree(tree)
    assert profile["costs"]["wal_records_replayed"] == 2
    assert profile["costs"].get("wal_records_skipped", 0) == 0
    assert profile["costs"]["codes_restored"] > 0
    replay = profile["stages"]["recover.replay"]
    assert replay["count"] == 1
    assert replay["costs"]["wal_records_replayed"] == 2


def test_unsampled_recovery_still_measures_costs(artifacts, tmp_path):
    """Without a sampled trace, the cost-only ledger still captures the
    recovery counters (credit sampling never gates cost accounting)."""
    from repro.obs import measure

    directory = tmp_path / "dur"
    system = fresh_system(artifacts, directory)
    DurableEarthQube(system, faults=FaultInjector())
    system.delete_image(artifacts["names"][0])

    recovered = fresh_system(artifacts, directory)
    with measure("restart") as ledger:
        durable = DurableEarthQube(recovered, faults=FaultInjector())
    assert durable.recovery_info["replayed_records"] == 1
    report = ledger.report()
    assert report["costs"]["wal_records_replayed"] == 1
    assert report["costs"]["codes_restored"] > 0
    assert "recover.replay" in report["stages"]
