"""Write-ahead log unit tests: framing, torn tails, corruption, truncate."""

import struct
import zlib

import numpy as np
import pytest

from repro.errors import DurabilityError, ValidationError, WALCorruptionError
from repro.store.faults import CrashPoint, FaultInjector
from repro.store.wal import (WriteAheadLog, decode_payload, encode_payload)


@pytest.fixture()
def wal_path(tmp_path):
    return tmp_path / "wal.log"


def read_records(path):
    wal = WriteAheadLog(path)
    try:
        return wal.replay()
    finally:
        wal.close()


# --------------------------------------------------------------------- #
# Payload codec
# --------------------------------------------------------------------- #

def test_payload_roundtrip_scalars_and_containers():
    payload = {"name": "patch_1", "k": 10, "pi": 3.5, "flag": True,
               "nothing": None, "items": [1, "two", [3.0, False]]}
    assert decode_payload(encode_payload(payload)) == payload


def test_payload_roundtrip_bytes_and_arrays():
    rng = np.random.default_rng(3)
    payload = {
        "blob": b"\x00\xff raw bytes",
        "features": rng.normal(size=17),
        "codes": rng.integers(0, 2**63, size=(4, 2)).astype(np.uint64),
        "bands": {"B02": rng.random((6, 6)).astype(np.float32)},
    }
    decoded = decode_payload(encode_payload(payload))
    assert decoded["blob"] == payload["blob"]
    for key in ("features", "codes"):
        assert decoded[key].dtype == payload[key].dtype
        np.testing.assert_array_equal(decoded[key], payload[key])
    band = decoded["bands"]["B02"]
    assert band.dtype == np.float32
    np.testing.assert_array_equal(band, payload["bands"]["B02"])


def test_payload_reserved_keys_escape():
    for tricky in ({"__bytes__": "not base64!"},
                   {"__nd__": "user data"},
                   {"__esc__": True, "value": {"x": 1}},
                   {"__bytes__": b"real bytes", "other": 1}):
        assert decode_payload(encode_payload(tricky)) == tricky


def test_payload_numpy_scalars_become_python():
    encoded = encode_payload({"n": np.int64(7), "x": np.float64(1.5),
                              "b": np.bool_(True)})
    assert encoded == {"n": 7, "x": 1.5, "b": True}


# --------------------------------------------------------------------- #
# Append / replay basics
# --------------------------------------------------------------------- #

def test_append_assigns_monotone_sequences(wal_path):
    with WriteAheadLog(wal_path) as wal:
        assert [wal.append("op", {"i": i}) for i in range(5)] == [1, 2, 3, 4, 5]
        assert wal.last_seq == 5
        assert wal.record_count == 5
        records = wal.replay()
    assert [r.seq for r in records] == [1, 2, 3, 4, 5]
    assert [r.payload["i"] for r in records] == list(range(5))


def test_replay_survives_reopen(wal_path):
    with WriteAheadLog(wal_path, fsync="off") as wal:
        wal.append("insert", {"doc": {"name": "a", "blob": b"\x01\x02"}})
        wal.append("delete", {"name": "a"})
    records = read_records(wal_path)
    assert [(r.seq, r.op) for r in records] == [(1, "insert"), (2, "delete")]
    assert records[0].payload["doc"]["blob"] == b"\x01\x02"


def test_reopen_continues_sequence_numbers(wal_path):
    with WriteAheadLog(wal_path) as wal:
        wal.append("a", {})
        wal.append("b", {})
    with WriteAheadLog(wal_path) as wal:
        assert wal.append("c", {}) == 3
        assert [r.seq for r in wal.replay()] == [1, 2, 3]


def test_replay_after_seq_filters(wal_path):
    with WriteAheadLog(wal_path) as wal:
        for i in range(4):
            wal.append("op", {"i": i})
        assert [r.seq for r in wal.replay(after_seq=2)] == [3, 4]


@pytest.mark.parametrize("policy", ["always", "interval", "off"])
def test_fsync_policies_all_preserve_records(wal_path, policy):
    with WriteAheadLog(wal_path, fsync=policy, fsync_interval=3) as wal:
        for i in range(7):
            wal.append("op", {"i": i})
    assert [r.payload["i"] for r in read_records(wal_path)] == list(range(7))


def test_invalid_fsync_policy_rejected(wal_path):
    with pytest.raises(ValidationError):
        WriteAheadLog(wal_path, fsync="sometimes")
    with pytest.raises(ValidationError):
        WriteAheadLog(wal_path, fsync="interval", fsync_interval=0)


# --------------------------------------------------------------------- #
# Torn tails (expected after a crash) vs mid-log corruption (damage)
# --------------------------------------------------------------------- #

def _truncated(path, drop: int) -> bytes:
    data = path.read_bytes()
    return data[:len(data) - drop]


def test_torn_final_body_is_dropped(wal_path):
    with WriteAheadLog(wal_path) as wal:
        wal.append("keep", {"i": 1})
        wal.append("torn", {"i": 2})
    wal_path.write_bytes(_truncated(wal_path, 5))
    records = read_records(wal_path)
    assert [r.op for r in records] == ["keep"]


def test_torn_header_is_dropped(wal_path):
    with WriteAheadLog(wal_path) as wal:
        wal.append("keep", {"i": 1})
        end = wal_path.stat().st_size
        wal.append("torn", {"i": 2})
    # leave only 3 bytes of the second record's 8-byte header
    wal_path.write_bytes(wal_path.read_bytes()[:end + 3])
    assert [r.op for r in read_records(wal_path)] == ["keep"]


def test_corrupt_final_record_is_dropped(wal_path):
    with WriteAheadLog(wal_path) as wal:
        wal.append("keep", {"i": 1})
        wal.append("garbled", {"i": 2})
    data = bytearray(wal_path.read_bytes())
    data[-1] ^= 0xFF  # flip a bit inside the final record's body
    wal_path.write_bytes(bytes(data))
    assert [r.op for r in read_records(wal_path)] == ["keep"]


def test_reopen_truncates_torn_tail_before_appending(wal_path):
    with WriteAheadLog(wal_path) as wal:
        wal.append("keep", {"i": 1})
        wal.append("torn", {"i": 2})
    wal_path.write_bytes(_truncated(wal_path, 5))
    with WriteAheadLog(wal_path) as wal:
        assert wal.record_count == 1
        # the torn record's sequence (2) is reused by the next append:
        # it was never durable, so it never existed
        assert wal.append("next", {"i": 3}) == 2
        assert [(r.seq, r.op) for r in wal.replay()] == [(1, "keep"),
                                                         (2, "next")]


def test_midlog_corruption_raises(wal_path):
    with WriteAheadLog(wal_path) as wal:
        wal.append("first", {"i": 1})
        first_end = wal_path.stat().st_size
        wal.append("second", {"i": 2})
    data = bytearray(wal_path.read_bytes())
    data[first_end - 2] ^= 0xFF  # damage the FIRST record's body
    wal_path.write_bytes(bytes(data))
    with pytest.raises(WALCorruptionError, match="damaged at rest"):
        read_records(wal_path)


def test_sequence_gap_raises(wal_path):
    with WriteAheadLog(wal_path) as wal:
        wal.append("first", {"i": 1})
    # hand-craft a CRC-valid record with the wrong sequence number
    body = b'{"seq":7,"op":"bogus","payload":{}}'
    with open(wal_path, "ab") as handle:
        handle.write(struct.pack("<II", len(body), zlib.crc32(body)))
        handle.write(body)
    with pytest.raises(WALCorruptionError, match="sequence"):
        read_records(wal_path)


def test_bad_magic_raises(wal_path):
    wal_path.write_bytes(b"NOTAWAL!" + b"\x00" * 8)
    with pytest.raises(WALCorruptionError, match="magic"):
        read_records(wal_path)


# --------------------------------------------------------------------- #
# Truncation
# --------------------------------------------------------------------- #

def test_truncate_drops_covered_prefix(wal_path):
    with WriteAheadLog(wal_path) as wal:
        for i in range(6):
            wal.append("op", {"i": i})
        kept = wal.truncate(4)
        assert kept == 2
        assert wal.base_seq == 4
        assert wal.record_count == 2
        assert [r.seq for r in wal.replay()] == [5, 6]
        # appends continue the global sequence
        assert wal.append("more", {}) == 7
    assert [r.seq for r in read_records(wal_path)] == [5, 6, 7]


def test_truncate_everything_leaves_empty_log(wal_path):
    with WriteAheadLog(wal_path) as wal:
        wal.append("a", {})
        wal.append("b", {})
        assert wal.truncate(2) == 0
        assert wal.record_count == 0
        assert wal.append("c", {}) == 3


def test_truncate_below_base_rejected(wal_path):
    with WriteAheadLog(wal_path) as wal:
        wal.append("a", {})
        wal.truncate(1)
        with pytest.raises(DurabilityError):
            wal.truncate(0)


def test_truncate_crash_leaves_old_log_intact(wal_path):
    faults = FaultInjector()
    with WriteAheadLog(wal_path, faults=faults) as wal:
        for i in range(3):
            wal.append("op", {"i": i})
        faults.arm("wal.truncate")
        with pytest.raises(CrashPoint):
            wal.truncate(2)
    # the replace never happened: all three records still readable
    assert [r.seq for r in read_records(wal_path)] == [1, 2, 3]
    # the staged temp file is the only debris
    assert all(p.name.endswith(".truncate.tmp")
               for p in wal_path.parent.iterdir() if p != wal_path)


# --------------------------------------------------------------------- #
# Injected crashes in the append path
# --------------------------------------------------------------------- #

def test_crash_mid_record_leaves_droppable_torn_tail(wal_path):
    faults = FaultInjector()
    wal = WriteAheadLog(wal_path, faults=faults)
    wal.append("durable", {"i": 1})
    faults.arm("wal.mid_record")
    with pytest.raises(CrashPoint):
        wal.append("torn", {"i": 2})
    wal.close()
    assert [r.op for r in read_records(wal_path)] == ["durable"]


def test_crash_before_fsync_keeps_flushed_record(wal_path):
    # The record reached the OS before the "crash"; same-machine restart
    # (no power loss) sees it — replay keeps it.
    faults = FaultInjector()
    wal = WriteAheadLog(wal_path, faults=faults)
    faults.arm("wal.before_fsync")
    with pytest.raises(CrashPoint):
        wal.append("flushed", {"i": 1})
    wal.close()
    assert [r.op for r in read_records(wal_path)] == ["flushed"]


def test_crash_on_nth_hit(wal_path):
    faults = FaultInjector()
    wal = WriteAheadLog(wal_path, fsync="always", faults=faults)
    faults.arm("wal.after_fsync", hits=3)
    wal.append("one", {})
    wal.append("two", {})
    with pytest.raises(CrashPoint) as crash:
        wal.append("three", {})
    assert crash.value.point == "wal.after_fsync"
    assert crash.value.hit == 3
    wal.close()
    # all three records are durable; only the in-memory apply was lost
    assert [r.op for r in read_records(wal_path)] == ["one", "two", "three"]


def test_metrics_gauges_track_wal(wal_path):
    from repro.serving.metrics import MetricsRegistry
    metrics = MetricsRegistry()
    with WriteAheadLog(wal_path, fsync="always", metrics=metrics) as wal:
        wal.append("op", {})
        wal.append("op", {})
    snapshot = metrics.snapshot()
    assert snapshot["gauges"]["wal.records"] == 2
    assert snapshot["gauges"]["wal.seq"] == 2
    assert snapshot["latency"]["wal.fsync"]["count"] == 2
