"""Round-trip tests for the JSON database snapshot (store/persistence.py).

The load-bearing case: a collection holding *packed code matrices* (the
CBIR tier's uint64 Hamming codes, stored as bytes) must survive a
save/load cycle bit-exactly, and a retrieval index rebuilt from the
restored codes must answer byte-identically to one built from the
originals.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import StoreError
from repro.index.linear_scan import LinearScanIndex
from repro.index.mih import MultiIndexHashing
from repro.store.database import Database
from repro.store.persistence import load_database, save_database

NUM_BITS = 128
WORDS = NUM_BITS // 64


@pytest.fixture
def codes() -> np.ndarray:
    rng = np.random.default_rng(97)
    return rng.integers(0, 2**63, size=(80, WORDS), dtype=np.uint64) * 2 + 1


@pytest.fixture
def code_db(codes) -> Database:
    """A database whose `codes` collection holds the packed code matrix."""
    db = Database("archive_node")
    collection = db.create_collection("codes", primary_key="name")
    collection.create_index("shard")
    for row, code in enumerate(codes):
        collection.insert_one({
            "name": f"patch_{row}",
            "row": row,
            "shard": row % 4,
            "code": code.tobytes(),
        })
    return db


def restored_codes(db: Database) -> np.ndarray:
    documents = sorted(db["codes"].find().documents, key=lambda d: d["row"])
    return np.stack([np.frombuffer(doc["code"], dtype=np.uint64)
                     for doc in documents])


def test_packed_codes_round_trip_bit_exactly(tmp_path, code_db, codes):
    path = tmp_path / "node.json"
    save_database(code_db, path)
    loaded = load_database(path)
    assert loaded.name == "archive_node"
    np.testing.assert_array_equal(restored_codes(loaded), codes)


def test_rebuilt_index_answers_byte_identically(tmp_path, code_db, codes):
    path = tmp_path / "node.json"
    save_database(code_db, path)
    restored = restored_codes(load_database(path))

    names = [f"patch_{row}" for row in range(len(codes))]
    queries = codes[:8]
    for make in (lambda: MultiIndexHashing(NUM_BITS, 4),
                 lambda: LinearScanIndex(NUM_BITS)):
        original, rebuilt = make(), make()
        original.build(names, codes)
        rebuilt.build(names, restored)
        for query in queries:
            assert (rebuilt.search_knn(query, 10)
                    == original.search_knn(query, 10))
            assert (rebuilt.search_radius(query, 8)
                    == original.search_radius(query, 8))


def test_snapshot_is_plain_json(tmp_path, code_db):
    path = tmp_path / "node.json"
    save_database(code_db, path)
    with open(path, encoding="utf-8") as handle:
        snapshot = json.load(handle)
    assert snapshot["format_version"] == 2
    document = snapshot["collections"]["codes"]["documents"][0]
    assert set(document["code"]) == {"__bytes__"}  # base64-wrapped bytes


def test_index_definitions_are_rebuilt(tmp_path, code_db):
    path = tmp_path / "node.json"
    save_database(code_db, path)
    loaded = load_database(path)
    collection = loaded["codes"]
    assert collection.primary_key == "name"
    assert collection.get("patch_3")["row"] == 3
    # The hash index survived: an equality query plans through it.
    response = collection.find({"shard": 2})
    assert {doc["row"] % 4 for doc in response.documents} == {2}


def test_earthqube_schema_round_trip(tmp_path):
    db = Database.earthqube_schema()
    db["metadata"].insert_one({
        "name": "p0",
        "location": {"bbox": [10.0, 50.0, 10.1, 50.1]},
        "properties": {"labels": ["Beaches"], "season": "Summer"},
    })
    db["feedback"].insert_one({"text": "hello", "category": "comment"})
    path = tmp_path / "schema.json"
    save_database(db, path)
    loaded = load_database(path)
    assert loaded.collection_names() == db.collection_names()
    assert loaded["metadata"].get("p0") == db["metadata"].get("p0")
    assert len(loaded["feedback"]) == 1


def test_nested_bytes_round_trip(tmp_path):
    db = Database("binary")
    collection = db.create_collection("blobs", primary_key="name")
    document = {"name": "b0",
                "payload": {"bands": [b"\x00\xff\x10", b"ok"], "depth": 2}}
    collection.insert_one(document)
    path = tmp_path / "binary.json"
    save_database(db, path)
    assert load_database(path)["blobs"].get("b0") == document


def test_reserved_marker_keys_round_trip(tmp_path):
    """Regression: user dicts whose keys collide with the codec's markers.

    ``{"__bytes__": ...}`` used to be ambiguous — a user document shaped
    like the codec's own bytes wrapper was decoded *as* bytes.  Format
    version 2 escapes reserved keys, so these documents survive verbatim.
    """
    db = Database("tricky")
    collection = db.create_collection("docs", primary_key="name")
    documents = [
        {"name": "d0", "payload": {"__bytes__": "not base64 at all"}},
        {"name": "d1", "payload": {"__bytes__": b"real bytes", "n": 1}},
        {"name": "d2", "payload": {"__esc__": True, "value": {"x": 2}}},
        {"name": "d3", "nested": [{"__bytes__": 7}, b"\x00\x01"]},
    ]
    for document in documents:
        collection.insert_one(document)
    path = tmp_path / "tricky.json"
    save_database(db, path)
    loaded = load_database(path)
    for document in documents:
        assert loaded["docs"].get(document["name"]) == document
    # The wrapper itself still works: real bytes stay bytes.
    assert isinstance(loaded["docs"].get("d1")["payload"]["__bytes__"], bytes)


def test_version_1_snapshots_still_load(tmp_path):
    """Snapshots written before the escape existed stay readable."""
    path = tmp_path / "v1.json"
    path.write_text(json.dumps({
        "format_version": 1,
        "name": "old",
        "collections": {
            "docs": {
                "indexes": {"primary_key": "name", "unique": [],
                            "hash": [], "geo": {}, "date_columns": []},
                "documents": [{"name": "a",
                               "code": {"__bytes__": "AAE="}}],
            },
        },
    }))
    loaded = load_database(path)
    assert loaded["docs"].get("a")["code"] == b"\x00\x01"


def test_date_columns_round_trip_scan_identically(tmp_path):
    """Satellite: a date column mid-churn (pending adds + tombstones not
    yet compacted) must save/load to a collection that answers range
    queries identically to the live one, through the columnar plan."""
    db = Database("dated")
    collection = db.create_collection("events", primary_key="name")
    collection.create_date_column("when")
    rng = np.random.default_rng(11)
    for i in range(40):
        collection.insert_one({
            "name": f"e{i}",
            "when": f"2024-{rng.integers(1, 13):02d}-{rng.integers(1, 29):02d}",
        })
    # Churn *after* the initial build so the column carries live overflow
    # state (pending list + tombstones) at save time.
    for i in range(0, 12, 2):
        collection.delete_one({"name": f"e{i}"})
    for i in range(20, 26):
        collection.update_one({"name": f"e{i}"},
                              {"$set": {"when": "2025-01-15"}})
    collection.insert_one({"name": "late", "when": "2025-06-30"})

    path = tmp_path / "dated.json"
    save_database(db, path)
    loaded = load_database(path)

    for query in ({"when": {"$gte": "2024-06-01", "$lt": "2025-01-01"}},
                  {"when": {"$gte": "2025-01-01"}},
                  {"when": {"$lt": "2024-03-01"}}):
        live = collection.find(query, sort="name")
        restored = loaded["events"].find(query, sort="name")
        assert restored.documents == live.documents
        # The rebuilt collection kept the column definition: the planner
        # answers through it, not via full scan.
        assert "date_column:when" in restored.plan


def test_save_failure_leaves_original_intact(tmp_path, code_db, monkeypatch):
    """Satellite: save_database stages + os.replace — a crash mid-save can
    never truncate or tear the previous snapshot."""
    import os as os_module

    path = tmp_path / "node.json"
    save_database(code_db, path)
    before = path.read_bytes()

    real_replace = os_module.replace

    def failing_replace(src, dst):
        raise OSError("simulated crash before commit")

    monkeypatch.setattr("repro.store.persistence.os.replace", failing_replace)
    with pytest.raises(OSError):
        save_database(code_db, path)
    monkeypatch.setattr("repro.store.persistence.os.replace", real_replace)

    assert path.read_bytes() == before          # old content untouched
    assert load_database(path)["codes"].get("patch_0") is not None
    assert not list(tmp_path.glob("*.tmp"))     # staged temp cleaned up


def test_missing_snapshot_raises(tmp_path):
    with pytest.raises(StoreError):
        load_database(tmp_path / "absent.json")


def test_unsupported_version_raises(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"format_version": 99, "collections": {}}))
    with pytest.raises(StoreError):
        load_database(path)
