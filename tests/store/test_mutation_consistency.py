"""Property tests: index consistency under random mutation sequences.

The store's central invariant: whatever sequence of inserts, deletes, and
updates runs, every query plan (unique/hash/geo index or scan) returns
exactly what a naive matcher over the live documents returns.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.errors import DuplicateKeyError
from repro.geo import BoundingBox, Rectangle
from repro.store import Collection, matches


def _doc(i: int, lon: float, lat: float, season: str, labels: list[str]) -> dict:
    return {
        "name": f"p{i}",
        "location": {"bbox": [lon, lat, lon + 0.01, lat + 0.01]},
        "properties": {"labels": labels, "season": season},
    }


_SEASONS = ["Winter", "Spring", "Summer", "Autumn"]
_LABELS = ["a", "b", "c", "d", "e"]


@st.composite
def mutation_script(draw):
    """A random sequence of (op, payload) store mutations."""
    ops = []
    num_ops = draw(st.integers(min_value=5, max_value=25))
    next_id = 0
    live: list[int] = []
    for _ in range(num_ops):
        choice = draw(st.sampled_from(["insert", "insert", "insert", "delete", "update"]))
        if choice == "insert" or not live:
            lon = draw(st.floats(min_value=-10, max_value=10))
            lat = draw(st.floats(min_value=40, max_value=55))
            season = draw(st.sampled_from(_SEASONS))
            labels = draw(st.lists(st.sampled_from(_LABELS), min_size=1,
                                   max_size=3, unique=True))
            ops.append(("insert", (next_id, lon, lat, season, labels)))
            live.append(next_id)
            next_id += 1
        elif choice == "delete":
            victim = draw(st.sampled_from(live))
            live.remove(victim)
            ops.append(("delete", victim))
        else:
            target = draw(st.sampled_from(live))
            season = draw(st.sampled_from(_SEASONS))
            ops.append(("update", (target, season)))
    return ops


@settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow], deadline=None)
@given(script=mutation_script())
def test_indexed_queries_match_naive_evaluation(script):
    collection = Collection("mut", primary_key="name")
    collection.create_index("properties.season")
    collection.create_index("properties.labels")
    collection.create_geo_index("location", precision=3)
    shadow: dict[str, dict] = {}

    for op, payload in script:
        if op == "insert":
            i, lon, lat, season, labels = payload
            doc = _doc(i, lon, lat, season, labels)
            collection.insert_one(doc)
            shadow[doc["name"]] = doc
        elif op == "delete":
            name = f"p{payload}"
            collection.delete_one({"name": name})
            shadow.pop(name, None)
        else:
            i, season = payload
            name = f"p{i}"
            collection.update_one({"name": name},
                                  {"$set": {"properties.season": season}})
            if name in shadow:
                shadow[name]["properties"]["season"] = season

    queries = [
        {"properties.season": "Summer"},
        {"properties.labels": {"$in": ["a", "c"]}},
        {"properties.labels": {"$all": ["a", "b"]}},
        {"location": {"$geoIntersects":
                      Rectangle(BoundingBox(west=-5, south=42, east=5, north=50))}},
    ]
    for query in queries:
        got = {d["name"] for d in collection.find(query)}
        expected = {name for name, doc in shadow.items() if matches(doc, query)}
        assert got == expected, f"divergence on {query}"
    assert len(collection) == len(shadow)


class TestFailureInjection:
    def test_insert_rollback_on_duplicate_keeps_indexes_clean(self):
        collection = Collection("fi", primary_key="name")
        collection.create_index("properties.season")
        collection.insert_one(_doc(0, 0.0, 45.0, "Summer", ["a"]))
        with pytest.raises(DuplicateKeyError):
            collection.insert_one(_doc(0, 1.0, 46.0, "Winter", ["b"]))
        # The failed document must not be reachable via any index.
        assert collection.count({"properties.season": "Winter"}) == 0
        assert collection.count() == 1

    def test_reinsert_after_delete_uses_fresh_geo_cells(self):
        collection = Collection("fi2", primary_key="name")
        collection.create_geo_index("location", precision=4)
        collection.insert_one(_doc(1, 0.0, 45.0, "Summer", ["a"]))
        collection.delete_one({"name": "p1"})
        # Same name, different place: old cells must not resurface it.
        collection.insert_one(_doc(1, 9.0, 54.0, "Summer", ["a"]))
        near_old = Rectangle(BoundingBox(west=-0.5, south=44.5, east=0.5, north=45.5))
        near_new = Rectangle(BoundingBox(west=8.5, south=53.5, east=9.5, north=54.5))
        assert collection.count({"location": {"$geoIntersects": near_old}}) == 0
        assert collection.count({"location": {"$geoIntersects": near_new}}) == 1

    def test_update_moving_geometry_relocates_index_entry(self):
        collection = Collection("fi3", primary_key="name")
        collection.create_geo_index("location", precision=4)
        collection.insert_one(_doc(2, 0.0, 45.0, "Summer", ["a"]))
        collection.update_one(
            {"name": "p2"},
            {"$set": {"location": {"bbox": [20.0, 60.0, 20.01, 60.01]}}})
        near_old = Rectangle(BoundingBox(west=-0.5, south=44.5, east=0.5, north=45.5))
        near_new = Rectangle(BoundingBox(west=19.5, south=59.5, east=20.5, north=60.5))
        assert collection.count({"location": {"$geoIntersects": near_old}}) == 0
        assert collection.count({"location": {"$geoIntersects": near_new}}) == 1
