"""Tests for the Mongo-style query matcher."""

import re

import pytest
from hypothesis import given, strategies as st

from repro.errors import QuerySyntaxError
from repro.geo import BoundingBox, Circle, Rectangle
from repro.store import matches
from repro.store.matcher import extract_all_values, extract_equality, extract_geo

DOC = {
    "name": "S2A_1",
    "location": {"bbox": [13.0, 52.0, 13.01, 52.01]},
    "properties": {
        "labels": ["Pastures", "Water bodies"],
        "label_chars": "Rn",
        "season": "Summer",
        "country": "Austria",
        "num_labels": 2,
        "acquisition_date": "2017-08-15T10:30:00",
    },
}


class TestEquality:
    def test_empty_query_matches(self):
        assert matches(DOC, {})

    def test_top_level_equality(self):
        assert matches(DOC, {"name": "S2A_1"})
        assert not matches(DOC, {"name": "other"})

    def test_dotted_path_equality(self):
        assert matches(DOC, {"properties.season": "Summer"})
        assert not matches(DOC, {"properties.season": "Winter"})

    def test_array_membership_semantics(self):
        # Scalar matches when contained in an array field, like MongoDB.
        assert matches(DOC, {"properties.labels": "Pastures"})
        assert not matches(DOC, {"properties.labels": "Airports"})

    def test_exact_array_equality(self):
        assert matches(DOC, {"properties.labels": ["Pastures", "Water bodies"]})
        assert not matches(DOC, {"properties.labels": ["Pastures"]})

    def test_missing_field_equals_none(self):
        assert matches(DOC, {"properties.missing": None})
        assert not matches(DOC, {"properties.missing": 5})

    def test_eq_operator(self):
        assert matches(DOC, {"properties.num_labels": {"$eq": 2}})

    def test_ne_operator(self):
        assert matches(DOC, {"properties.num_labels": {"$ne": 3}})
        assert not matches(DOC, {"properties.num_labels": {"$ne": 2}})


class TestComparisons:
    def test_gt_gte(self):
        assert matches(DOC, {"properties.num_labels": {"$gt": 1}})
        assert not matches(DOC, {"properties.num_labels": {"$gt": 2}})
        assert matches(DOC, {"properties.num_labels": {"$gte": 2}})

    def test_lt_lte(self):
        assert matches(DOC, {"properties.num_labels": {"$lt": 3}})
        assert matches(DOC, {"properties.num_labels": {"$lte": 2}})
        assert not matches(DOC, {"properties.num_labels": {"$lt": 2}})

    def test_string_range_on_dates(self):
        assert matches(DOC, {"properties.acquisition_date": {
            "$gte": "2017-06-01", "$lte": "2017-12-31"}})
        assert not matches(DOC, {"properties.acquisition_date": {"$gte": "2018-01-01"}})

    def test_incomparable_types_do_not_match(self):
        assert not matches(DOC, {"name": {"$gt": 5}})

    def test_missing_field_comparison_false(self):
        assert not matches(DOC, {"nope": {"$gt": 0}})


class TestSetOperators:
    def test_in(self):
        assert matches(DOC, {"properties.season": {"$in": ["Summer", "Winter"]}})
        assert not matches(DOC, {"properties.season": {"$in": ["Winter"]}})

    def test_in_with_array_field(self):
        assert matches(DOC, {"properties.labels": {"$in": ["Airports", "Pastures"]}})

    def test_nin(self):
        assert matches(DOC, {"properties.season": {"$nin": ["Winter"]}})
        assert not matches(DOC, {"properties.season": {"$nin": ["Summer"]}})

    def test_in_requires_list(self):
        with pytest.raises(QuerySyntaxError):
            matches(DOC, {"properties.season": {"$in": "Summer"}})

    def test_all(self):
        assert matches(DOC, {"properties.labels": {"$all": ["Pastures"]}})
        assert matches(DOC, {"properties.labels": {"$all": ["Pastures", "Water bodies"]}})
        assert not matches(DOC, {"properties.labels": {"$all": ["Pastures", "Airports"]}})

    def test_all_on_non_array_false(self):
        assert not matches(DOC, {"properties.season": {"$all": ["Summer"]}})

    def test_size(self):
        assert matches(DOC, {"properties.labels": {"$size": 2}})
        assert not matches(DOC, {"properties.labels": {"$size": 1}})

    def test_size_requires_int(self):
        with pytest.raises(QuerySyntaxError):
            matches(DOC, {"properties.labels": {"$size": "2"}})

    def test_exists(self):
        assert matches(DOC, {"properties.season": {"$exists": True}})
        assert matches(DOC, {"properties.nope": {"$exists": False}})
        assert not matches(DOC, {"properties.nope": {"$exists": True}})

    def test_regex(self):
        assert matches(DOC, {"name": {"$regex": r"^S2A"}})
        assert matches(DOC, {"name": {"$regex": re.compile(r"_1$")}})
        assert not matches(DOC, {"name": {"$regex": r"^S2B"}})

    def test_elem_match_on_scalars(self):
        doc = {"values": [1, 5, 9]}
        assert matches(doc, {"values": {"$elemMatch": {"$gt": 7}}})
        assert not matches(doc, {"values": {"$elemMatch": {"$gt": 10}}})

    def test_elem_match_on_documents(self):
        doc = {"items": [{"kind": "a", "n": 1}, {"kind": "b", "n": 5}]}
        assert matches(doc, {"items": {"$elemMatch": {"kind": "b", "n": {"$gte": 5}}}})
        assert not matches(doc, {"items": {"$elemMatch": {"kind": "a", "n": {"$gte": 5}}}})


class TestLogical:
    def test_and(self):
        assert matches(DOC, {"$and": [
            {"properties.season": "Summer"},
            {"properties.country": "Austria"},
        ]})
        assert not matches(DOC, {"$and": [
            {"properties.season": "Summer"},
            {"properties.country": "Portugal"},
        ]})

    def test_or(self):
        assert matches(DOC, {"$or": [
            {"properties.season": "Winter"},
            {"properties.country": "Austria"},
        ]})
        assert not matches(DOC, {"$or": [
            {"properties.season": "Winter"},
            {"properties.country": "Portugal"},
        ]})

    def test_nor(self):
        assert matches(DOC, {"$nor": [
            {"properties.season": "Winter"},
            {"properties.country": "Portugal"},
        ]})
        assert not matches(DOC, {"$nor": [{"properties.season": "Summer"}]})

    def test_not_operator(self):
        assert matches(DOC, {"properties.num_labels": {"$not": {"$gt": 5}}})
        assert not matches(DOC, {"properties.num_labels": {"$not": {"$eq": 2}}})

    def test_implicit_and_of_fields(self):
        assert matches(DOC, {"properties.season": "Summer", "name": "S2A_1"})

    def test_logical_requires_list(self):
        with pytest.raises(QuerySyntaxError):
            matches(DOC, {"$and": {"a": 1}})
        with pytest.raises(QuerySyntaxError):
            matches(DOC, {"$or": []})

    def test_unknown_operator(self):
        with pytest.raises(QuerySyntaxError):
            matches(DOC, {"name": {"$fancy": 1}})
        with pytest.raises(QuerySyntaxError):
            matches(DOC, {"$everything": []})


class TestGeoOperators:
    def test_geo_intersects_with_rectangle(self):
        shape = Rectangle(BoundingBox(west=12.9, south=51.9, east=13.1, north=52.1))
        assert matches(DOC, {"location": {"$geoIntersects": shape}})

    def test_geo_intersects_disjoint(self):
        shape = Rectangle(BoundingBox(west=0.0, south=0.0, east=1.0, north=1.0))
        assert not matches(DOC, {"location": {"$geoIntersects": shape}})

    def test_geo_within(self):
        big = Rectangle(BoundingBox(west=12.0, south=51.0, east=14.0, north=53.0))
        assert matches(DOC, {"location": {"$geoWithin": big}})
        partial = Rectangle(BoundingBox(west=13.005, south=51.0, east=14.0, north=53.0))
        assert not matches(DOC, {"location": {"$geoWithin": partial}})

    def test_geo_with_circle(self):
        circle = Circle(lon=13.0, lat=52.0, radius_km=10.0)
        assert matches(DOC, {"location": {"$geoIntersects": circle}})

    def test_geo_accepts_bare_bbox(self):
        assert matches(DOC, {"location": {"$geoIntersects": (12.9, 51.9, 13.1, 52.1)}})

    def test_geo_on_non_geometry_false(self):
        shape = Rectangle(BoundingBox(west=0, south=0, east=180, north=90))
        assert not matches(DOC, {"name": {"$geoIntersects": shape}})

    def test_geo_bad_operand(self):
        with pytest.raises(QuerySyntaxError):
            matches(DOC, {"location": {"$geoIntersects": "everywhere"}})


class TestPlannerExtractors:
    def test_extract_equality_bare(self):
        assert extract_equality({"name": "x"}, "name") == ["x"]

    def test_extract_equality_eq(self):
        assert extract_equality({"name": {"$eq": "x"}}, "name") == ["x"]

    def test_extract_equality_in(self):
        assert extract_equality({"name": {"$in": ["x", "y"]}}, "name") == ["x", "y"]

    def test_extract_equality_under_and(self):
        query = {"$and": [{"a": 1}, {"name": "x"}]}
        assert extract_equality(query, "name") == ["x"]

    def test_extract_equality_absent(self):
        assert extract_equality({"other": 1}, "name") is None
        assert extract_equality({"name": {"$gt": 1}}, "name") is None

    def test_extract_all_values(self):
        assert extract_all_values({"tags": {"$all": ["a", "b"]}}, "tags") == ["a", "b"]
        assert extract_all_values({"tags": {"$in": ["a"]}}, "tags") is None

    def test_extract_all_under_and(self):
        query = {"$and": [{"tags": {"$all": ["a"]}}]}
        assert extract_all_values(query, "tags") == ["a"]

    def test_extract_geo(self):
        shape = Circle(lon=0.0, lat=0.0, radius_km=5.0)
        assert extract_geo({"location": {"$geoIntersects": shape}}, "location") is shape
        assert extract_geo({"location": "oslo"}, "location") is None


@given(st.integers(min_value=-100, max_value=100))
def test_property_comparison_trichotomy(n):
    doc = {"v": n}
    assert matches(doc, {"v": {"$gte": n}})
    assert matches(doc, {"v": {"$lte": n}})
    assert not matches(doc, {"v": {"$gt": n}})
    assert not matches(doc, {"v": {"$lt": n}})


@given(st.lists(st.sampled_from(["a", "b", "c", "d"]), min_size=1, max_size=4, unique=True),
       st.lists(st.sampled_from(["a", "b", "c", "d"]), min_size=1, max_size=4, unique=True))
def test_property_all_matches_iff_subset(doc_tags, query_tags):
    doc = {"tags": doc_tags}
    expected = set(query_tags) <= set(doc_tags)
    assert matches(doc, {"tags": {"$all": query_tags}}) == expected


@given(st.lists(st.sampled_from(["a", "b", "c", "d"]), min_size=1, max_size=4, unique=True),
       st.lists(st.sampled_from(["a", "b", "c", "d"]), min_size=1, max_size=4, unique=True))
def test_property_in_matches_iff_intersection(doc_tags, query_tags):
    doc = {"tags": doc_tags}
    expected = bool(set(query_tags) & set(doc_tags))
    assert matches(doc, {"tags": {"$in": query_tags}}) == expected


class TestRegexCompilationCache:
    def test_string_pattern_compiled_once_per_query(self, monkeypatch):
        """A collection scan evaluates one query against many documents;
        the string pattern must hit re.compile exactly once."""
        from repro.store import matcher as matcher_module

        matcher_module._compile_pattern.cache_clear()
        compile_calls: list[str] = []
        real_compile = re.compile

        def counting_compile(pattern, *args, **kwargs):
            compile_calls.append(pattern)
            return real_compile(pattern, *args, **kwargs)

        monkeypatch.setattr(matcher_module.re, "compile", counting_compile)
        try:
            documents = [{"name": f"S2A_patch_{i}"} for i in range(50)]
            query = {"name": {"$regex": r"^S2A_patch_\d+$"}}
            assert all(matches(document, query) for document in documents)
            assert compile_calls.count(r"^S2A_patch_\d+$") == 1
        finally:
            matcher_module._compile_pattern.cache_clear()

    def test_cached_pattern_still_matches_correctly(self):
        from repro.store.matcher import _compile_pattern

        _compile_pattern.cache_clear()
        query = {"name": {"$regex": r"_1$"}}
        assert matches({"name": "patch_1"}, query)
        assert not matches({"name": "patch_2"}, query)
        assert _compile_pattern.cache_info().hits >= 1
        _compile_pattern.cache_clear()

    def test_precompiled_pattern_bypasses_cache(self):
        from repro.store.matcher import _compile_pattern

        _compile_pattern.cache_clear()
        pattern = re.compile(r"^S2A")
        assert matches({"name": "S2A_x"}, {"name": {"$regex": pattern}})
        assert _compile_pattern.cache_info().misses == 0
