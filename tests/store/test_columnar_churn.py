"""Churn property test for the columnar planner's mutation machinery.

The :class:`~repro.store.columnar.SortedDateColumn` runs a pending /
tombstone / re-add state machine (fresh values serve from a pending list,
removals of compacted entries tombstone them, compaction folds both back
into the sorted arrays).  Under random interleavings of insert_one /
insert_many / update_one / delete_one / delete_many, every planned query
must stay byte-identical to the forced sequential scan — the planner is
allowed to change cost, never results.
"""

import numpy as np
import pytest

from repro.store import Collection

DATE_FIELD = "properties.acquisition_date"

PROBES = [
    {DATE_FIELD: {"$gte": "2017-06-01", "$lte": "2017-12-31"}},
    {DATE_FIELD: {"$gt": "2017-09-15"}},
    {DATE_FIELD: {"$lt": "2017-08-01"}},
    {DATE_FIELD: "2017-07-07"},
    {DATE_FIELD: {"$gte": "2018-01-01"}},
    {DATE_FIELD: {"$gte": "2017-06-15", "$lt": "2017-06-15"}},  # empty range
    {"properties.tag": "even",
     DATE_FIELD: {"$gte": "2017-06-01", "$lte": "2018-03-31"}},
]


def make_collection() -> Collection:
    col = Collection("metadata", primary_key="name")
    col.create_index("properties.tag")
    col.create_date_column(DATE_FIELD)
    return col


def random_date(rng) -> str:
    day = int(rng.integers(0, 400))
    month, rest = divmod(day, 28)
    return f"2017-{(6 + month - 1) % 12 + 1:02d}-{rest + 1:02d}" \
        if month < 12 else f"2018-{month - 11:02d}-{rest + 1:02d}"


def make_doc(serial: int, rng) -> dict:
    return {
        "name": f"doc{serial}",
        "properties": {
            "tag": "even" if serial % 2 == 0 else "odd",
            "acquisition_date": random_date(rng),
        },
    }


def assert_plan_equivalence(col: Collection) -> None:
    """Every probe through the planner == the same probe forced to scan."""
    for query in PROBES:
        planned = col.find(query, sort="name")
        scanned = col.find(query, sort="name", hint="scan")
        assert [d["name"] for d in planned] == [d["name"] for d in scanned], query
        assert planned.total_matches == scanned.total_matches
        # Unsorted candidate order must be plan-independent too.
        assert [d["name"] for d in col.find(query)] == \
            [d["name"] for d in col.find(query, hint="scan")], query


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_random_churn_stays_scan_identical(seed):
    rng = np.random.default_rng(seed)
    col = make_collection()
    serial = 0
    live: list[str] = []

    def fresh_doc():
        nonlocal serial
        doc = make_doc(serial, rng)
        serial += 1
        live.append(doc["name"])
        return doc

    # Seed enough rows that the date column compacts at least once
    # (overflow threshold is max(64, len >> 3)).
    col.insert_many([fresh_doc() for _ in range(120)])
    assert_plan_equivalence(col)

    for step in range(160):
        op = int(rng.integers(0, 10))
        if op < 3:
            col.insert_one(fresh_doc())
        elif op < 5:
            col.insert_many([fresh_doc() for _ in range(int(rng.integers(1, 6)))])
        elif op < 8 and live:
            victim = live[int(rng.integers(len(live)))]
            kind = int(rng.integers(0, 3))
            if kind == 0:
                # Move the date: tombstone the old value, pend the new one.
                col.update_one({"name": victim},
                               {"$set": {DATE_FIELD: random_date(rng)}})
            elif kind == 1:
                # Drop the date entirely: the doc leaves the column.
                col.update_one({"name": victim}, {"$unset": {DATE_FIELD: 1}})
            else:
                # Unparseable value: the doc moves to the unknown bucket.
                col.update_one({"name": victim},
                               {"$set": {DATE_FIELD: "not-a-date"}})
        elif op == 8 and live:
            victim = live[int(rng.integers(len(live)))]
            col.delete_one({"name": victim})
            live.remove(victim)
        elif live:
            # Range delete: several tombstones land in one operation.
            lo = random_date(rng)
            deleted = {d["name"] for d in col.find(
                {DATE_FIELD: {"$gte": lo, "$lte": lo[:8] + "28"}})}
            col.delete_many({DATE_FIELD: {"$gte": lo, "$lte": lo[:8] + "28"}})
            live[:] = [name for name in live if name not in deleted]
        if step % 10 == 0:
            assert_plan_equivalence(col)

    assert_plan_equivalence(col)
    assert len(col) == len(live)


def test_delete_then_readd_same_doc_id_semantics():
    """update_one re-adds under the same doc id: the stale compacted entry
    must stay tombstoned while the fresh value serves from pending."""
    col = make_collection()
    col.insert_many([make_doc(i, np.random.default_rng(9)) for i in range(100)])
    # Force the column to compact so doc values live in the sorted arrays.
    col.find({DATE_FIELD: {"$gte": "2017-01-01"}})
    col.update_one({"name": "doc0"}, {"$set": {DATE_FIELD: "2019-12-31"}})
    hits = col.find({DATE_FIELD: {"$gte": "2019-01-01"}})
    assert [d["name"] for d in hits] == ["doc0"]
    old = col.find({DATE_FIELD: {"$lte": "2018-12-31"}})
    assert "doc0" not in [d["name"] for d in old]
    # ... and equivalence still holds after the doc cycles again.
    col.update_one({"name": "doc0"}, {"$set": {DATE_FIELD: "2017-06-02"}})
    assert_plan_equivalence(col)


def test_plan_uses_date_column_after_churn():
    col = make_collection()
    rng = np.random.default_rng(5)
    col.insert_many([make_doc(i, rng) for i in range(80)])
    for i in range(0, 40, 3):
        col.delete_one({"name": f"doc{i}"})
    result = col.find({DATE_FIELD: {"$gte": "2017-06-01"}})
    assert result.plan == f"date_column:{DATE_FIELD}"
