"""Columnar query engine: mask intersection, date columns, bulk inserts.

The load-bearing invariant is *plan neutrality*: whatever access path the
planner chooses (posting arrays, date columns, geohash buckets, or their
intersection), ``find(query)`` must be byte-identical to
``find(query, hint="scan")``.
"""

import pytest

from repro.errors import DuplicateKeyError, StoreError
from repro.geo import BoundingBox, Rectangle
from repro.store import Collection
from repro.store.columnar import SortedDateColumn, iso_to_int64


def make_collection(docs=None):
    col = Collection("metadata", primary_key="name")
    col.create_index("properties.labels")
    col.create_index("properties.season")
    col.create_geo_index("location", precision=4)
    col.create_date_column("properties.date")
    if docs is not None:
        col.insert_many(docs)
    return col


def sample_docs():
    return [
        {"name": "a", "location": {"bbox": [10.0, 50.0, 10.1, 50.1]},
         "properties": {"labels": ["x", "y"], "season": "Summer",
                        "date": "2017-06-10", "n": 1}},
        {"name": "b", "location": {"bbox": [10.2, 50.0, 10.3, 50.1]},
         "properties": {"labels": ["y"], "season": "Winter",
                        "date": "2017-12-01T08:30:00", "n": 2}},
        {"name": "c", "location": {"bbox": [-9.0, 38.0, -8.9, 38.1]},
         "properties": {"labels": ["z"], "season": "Summer",
                        "date": "2018-03-20", "n": 3}},
        {"name": "d", "location": {"bbox": [10.05, 50.05, 10.15, 50.15]},
         "properties": {"labels": ["x"], "season": "Summer",
                        "date": "2017-07-01", "n": 4}},
        # Adversarial rows: unparseable and missing dates.
        {"name": "weird", "properties": {"labels": ["x"], "season": "Summer",
                                         "date": "not-a-date", "n": 5}},
        {"name": "undated", "properties": {"labels": ["y"], "season": "Winter",
                                           "n": 6}},
    ]


@pytest.fixture()
def collection():
    return make_collection(sample_docs())


QUERIES = [
    {},
    {"properties.season": "Summer"},
    {"properties.season": "Summer", "properties.labels": {"$in": ["x", "z"]}},
    {"properties.labels": {"$all": ["x", "y"]}},
    {"properties.date": {"$gte": "2017-06-01", "$lte": "2017-12-31"}},
    {"properties.date": {"$gt": "2017-06-10"}},
    {"properties.date": "2017-06-10"},
    {"properties.date": {"$gte": "not-a-date"}},  # unparseable bound
    {"$and": [{"properties.season": "Summer"},
              {"properties.date": {"$lte": "2017-08-01"}}]},
    {"$and": [{"properties.labels": "x"},
              {"location": {"$geoIntersects": Rectangle(
                  BoundingBox(west=9.5, south=49.5, east=10.5, north=50.5))}}]},
    {"$or": [{"properties.season": "Winter"}, {"properties.n": {"$gt": 4}}]},
    {"properties.labels": {"$in": ["y"]}, "properties.n": {"$lt": 3}},
    {"properties.season": {"$ne": "Summer"}},
    {"properties.labels": ["x", "y"]},  # whole-array equality operand
    {"properties.season": None},       # None matches missing, planner must not index it
]


class TestPlanNeutrality:
    @pytest.mark.parametrize("query", QUERIES, ids=repr)
    def test_planned_equals_scan(self, collection, query):
        planned = collection.find(query, sort="name")
        scanned = collection.find(query, sort="name", hint="scan")
        assert planned.documents == scanned.documents
        assert planned.total_matches == scanned.total_matches

    @pytest.mark.parametrize("query", QUERIES, ids=repr)
    def test_unsorted_order_is_plan_independent(self, collection, query):
        assert (collection.find(query).documents
                == collection.find(query, hint="scan").documents)

    def test_bad_hint_rejected(self, collection):
        with pytest.raises(StoreError):
            collection.find({}, hint="warp")


class TestColumnarPlans:
    def test_multi_condition_intersection_plan(self, collection):
        result = collection.find({"properties.season": "Summer",
                                  "properties.labels": {"$in": ["x"]}})
        assert result.plan.startswith("columnar:")
        assert "hash_index:properties.season" in result.plan
        assert "hash_index:properties.labels" in result.plan
        assert {d["name"] for d in result} == {"a", "d", "weird"}

    def test_intersection_examines_fewer_candidates(self, collection):
        broad = collection.find({"properties.season": "Summer"})
        narrow = collection.find({"properties.season": "Summer",
                                  "properties.labels": "z"})
        assert narrow.candidates_examined < broad.candidates_examined
        assert narrow.candidates_examined <= 1 + 1  # c plus nothing else

    def test_single_date_condition_plan(self, collection):
        result = collection.find(
            {"properties.date": {"$gte": "2017-06-01", "$lte": "2017-12-31"}})
        assert result.plan == "date_column:properties.date"
        # "not-a-date" sorts above the $lte bound, so the weird doc is a
        # candidate (unknown bucket) but fails exact verification.
        assert {d["name"] for d in result} == {"a", "b", "d"}

    def test_date_range_excludes_missing_but_keeps_unknown(self, collection):
        # "not-a-date" compares lexicographically above "2017-…", so the
        # weird doc matches; the undated doc never satisfies a comparison.
        result = collection.find({"properties.date": {"$gte": "2017-01-01"}})
        assert "weird" in {d["name"] for d in result}
        assert "undated" not in {d["name"] for d in result}

    def test_date_geo_and_categorical_intersect(self, collection):
        shape = Rectangle(BoundingBox(west=9.5, south=49.5, east=10.5, north=50.5))
        query = {"properties.season": "Summer",
                 "properties.date": {"$lte": "2017-06-30"},
                 "location": {"$geoIntersects": shape}}
        result = collection.find(query)
        assert result.plan.startswith("columnar:")
        assert "geo_index:location" in result.plan
        assert "date_column:properties.date" in result.plan
        assert [d["name"] for d in result] == ["a"]

    def test_legacy_single_source_plan_names(self, collection):
        assert collection.find({"name": "a"}).plan == "unique_index:name"
        assert (collection.find({"properties.season": "Winter"}).plan
                == "hash_index:properties.season")
        shape = Rectangle(BoundingBox(west=9.5, south=49.5, east=10.5, north=50.5))
        assert (collection.find({"location": {"$geoIntersects": shape}}).plan
                == "geo_index:location")
        assert collection.find({"properties.n": {"$gt": 1}}).plan == "scan"


class TestDateColumnMaintenance:
    def test_update_moves_date(self, collection):
        collection.update_one({"name": "a"},
                              {"$set": {"properties.date": "2019-01-01"}})
        late = collection.find({"properties.date": {"$gte": "2019-01-01"}})
        # "not-a-date" also sorts above the bound (string comparison).
        assert [d["name"] for d in late] == ["a", "weird"]
        early = collection.find(
            {"properties.date": {"$gte": "2017-06-01", "$lte": "2017-06-30"}})
        assert "a" not in {d["name"] for d in early}

    def test_delete_drops_from_column(self, collection):
        collection.delete_one({"name": "b"})
        result = collection.find({"properties.date": {"$gte": "2017-12-01"}})
        assert "b" not in {d["name"] for d in result}

    def test_column_created_after_insert_sees_existing_docs(self):
        col = Collection("later")
        col.insert_many(sample_docs())
        col.create_date_column("properties.date")
        result = col.find({"properties.date": {"$gte": "2018-01-01",
                                               "$lte": "2018-12-31"}})
        assert result.plan == "date_column:properties.date"
        assert {d["name"] for d in result} == {"c"}

    def test_compaction_round_trip(self):
        column = SortedDateColumn("d")
        for i in range(300):
            column.add(i, {"d": f"2017-01-{1 + i % 28:02d}"})
        for i in range(0, 300, 3):
            column.remove(i, {"d": f"2017-01-{1 + i % 28:02d}"})
        lo = iso_to_int64("2017-01-05")
        hi = iso_to_int64("2017-01-07")
        got = set(column.ids_in_range(lo, hi).tolist())
        expected = {i for i in range(300)
                    if i % 3 and 5 <= 1 + i % 28 <= 7}
        assert got == expected

    def test_compacted_probe_returns_id_sorted_candidates(self):
        # Regression: the post-compaction fast path must re-sort the
        # value-sorted slice by doc id, or unsorted find()/pagination
        # order would depend on the plan.
        rng_days = [(i * 37) % 120 for i in range(200)]  # shuffled dates
        col = Collection("c")
        col.create_date_column("d")
        col.insert_many([{"d": f"2017-01-01T{day % 24:02d}:00:00",
                          "i": i} for i, day in enumerate(rng_days)])
        planned = col.find({"d": {"$gte": "2017-01-01T00:00:00",
                                  "$lte": "2017-01-01T23:59:59"}}, limit=7)
        scanned = col.find({"d": {"$gte": "2017-01-01T00:00:00",
                                  "$lte": "2017-01-01T23:59:59"}},
                           limit=7, hint="scan")
        assert planned.plan == "date_column:d"
        assert planned.documents == scanned.documents

    def test_readded_id_serves_fresh_value(self):
        # remove + re-add under the same id (the update path) must not
        # resurrect the stale compacted entry.
        column = SortedDateColumn("d")
        for i in range(200):
            column.add(i, {"d": "2017-01-01"})
        column.ids_in_range(None, None)  # force compaction
        column.remove(7, {"d": "2017-01-01"})
        column.add(7, {"d": "2020-01-01"})
        old = column.ids_in_range(iso_to_int64("2017-01-01"),
                                  iso_to_int64("2017-12-31"))
        assert 7 not in old.tolist()
        new = column.ids_in_range(iso_to_int64("2020-01-01"), None)
        assert new.tolist() == [7]


class TestIsoToInt64:
    def test_monotone_with_lexicographic_order(self):
        values = ["2017-01-01", "2017-01-01T00:00:01", "2017-06-10",
                  "2017-06-10T23:59:59", "2018-01-01"]
        parsed = [iso_to_int64(v) for v in values]
        assert parsed == sorted(parsed)
        assert len(set(parsed)) == len(parsed)

    def test_unparseable(self):
        assert iso_to_int64("not-a-date") is None
        assert iso_to_int64(None) is None
        assert iso_to_int64(20170101) is None
        assert iso_to_int64("2017-01-01T00:00:00+02:00") is None

    def test_non_extended_formats_are_unknown(self):
        # Basic format and space separators order differently as strings
        # than as instants; they must fall into the unknown bucket.
        assert iso_to_int64("20200105") is None
        assert iso_to_int64("2020-01-01 10:00:00") is None

    def test_mixed_format_docs_stay_plan_neutral(self):
        # Regression: a basic-format value sorts *below* extended-format
        # strings lexicographically but parses to a later instant; it must
        # be a candidate of every probe (unknown), not mis-sorted.
        col = Collection("c")
        col.create_date_column("d")
        col.insert_many([{"d": "20200105", "i": 0},
                         {"d": "2020-02-01", "i": 1},
                         {"d": "2019-12-31", "i": 2}])
        query = {"d": {"$gt": "2020-01-31"}}
        planned = col.find(query)
        scanned = col.find(query, hint="scan")
        assert planned.documents == scanned.documents
        # "20200105" > "2020-01-31" lexicographically ('0' > '-' at index
        # 4), so the matcher accepts it; the planner must not lose it.
        assert {d["i"] for d in planned} == {0, 1}

    def test_prefix_collapses_to_midnight(self):
        assert iso_to_int64("2017-01-01") == iso_to_int64("2017-01-01T00:00:00")


class TestBulkInsert:
    def test_bulk_equals_sequential(self):
        docs = sample_docs()
        bulk = make_collection(docs)
        seq = make_collection()
        for doc in docs:
            seq.insert_one(doc)
        for query in QUERIES:
            assert (bulk.find(query, sort="name").documents
                    == seq.find(query, sort="name").documents)

    def test_bulk_returns_distinct_ids(self):
        col = Collection("c")
        ids = col.insert_many([{"a": i} for i in range(100)])
        assert len(set(ids)) == 100

    def test_duplicate_inside_batch_preserves_prefix(self):
        col = Collection("c", primary_key="name")
        with pytest.raises(DuplicateKeyError):
            col.insert_many([{"name": "a"}, {"name": "b"}, {"name": "a"}])
        # Sequential fallback semantics: docs before the offender landed.
        assert len(col) == 2

    def test_duplicate_against_existing_preserves_prefix(self):
        col = Collection("c", primary_key="name")
        col.insert_one({"name": "x"})
        with pytest.raises(DuplicateKeyError):
            col.insert_many([{"name": "y"}, {"name": "x"}, {"name": "z"}])
        assert len(col) == 2  # x + y

    def test_non_mapping_in_batch(self):
        col = Collection("c")
        with pytest.raises(StoreError):
            col.insert_many([{"a": 1}, [1, 2]])
        assert len(col) == 1


class TestZeroCopyReads:
    def test_field_values(self, collection):
        names = collection.field_values({"properties.season": "Summer"}, "name")
        assert sorted(names) == ["a", "c", "d", "weird"]

    def test_field_values_skips_missing(self, collection):
        dates = collection.field_values({}, "properties.date")
        assert len(dates) == 5  # undated contributes nothing

    def test_count_and_distinct_still_exact(self, collection):
        assert collection.count({"properties.season": "Summer"}) == 4
        assert collection.distinct("properties.labels",
                                   {"properties.season": "Winter"}) == ["y"]

    def test_find_page_total_matches(self, collection):
        page = collection.find({"properties.season": "Summer"},
                               sort="name", skip=1, limit=2)
        assert page.total_matches == 4
        assert [d["name"] for d in page] == ["c", "d"]
