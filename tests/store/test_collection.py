"""Tests for collections, indexes, and the query planner."""

import pytest

from repro.errors import (
    DocumentNotFoundError,
    DuplicateKeyError,
    IndexError_,
    StoreError,
)
from repro.geo import BoundingBox, Rectangle
from repro.store import Collection


def sample_docs():
    return [
        {"name": "a", "location": {"bbox": [10.0, 50.0, 10.1, 50.1]},
         "properties": {"labels": ["x", "y"], "season": "Summer", "n": 1}},
        {"name": "b", "location": {"bbox": [10.2, 50.0, 10.3, 50.1]},
         "properties": {"labels": ["y"], "season": "Winter", "n": 2}},
        {"name": "c", "location": {"bbox": [-9.0, 38.0, -8.9, 38.1]},
         "properties": {"labels": ["z"], "season": "Summer", "n": 3}},
    ]


@pytest.fixture()
def collection():
    col = Collection("metadata", primary_key="name")
    col.create_index("properties.labels")
    col.create_index("properties.season")
    col.create_geo_index("location", precision=4)
    col.insert_many(sample_docs())
    return col


class TestInserts:
    def test_insert_returns_ids(self):
        col = Collection("c")
        ids = col.insert_many([{"a": 1}, {"a": 2}])
        assert len(ids) == 2 and ids[0] != ids[1]

    def test_insert_non_mapping_rejected(self):
        col = Collection("c")
        with pytest.raises(StoreError):
            col.insert_one([1, 2, 3])

    def test_duplicate_primary_key_rejected(self, collection):
        with pytest.raises(DuplicateKeyError):
            collection.insert_one({"name": "a"})

    def test_failed_insert_leaves_collection_unchanged(self, collection):
        before = len(collection)
        with pytest.raises(DuplicateKeyError):
            collection.insert_one({"name": "b"})
        assert len(collection) == before

    def test_missing_primary_key_rejected(self, collection):
        with pytest.raises(IndexError_):
            collection.insert_one({"nope": 1})

    def test_documents_are_copied_on_insert(self, collection):
        doc = {"name": "fresh", "properties": {"n": 9}}
        collection.insert_one(doc)
        doc["name"] = "mutated"
        assert collection.get("fresh")["name"] == "fresh"


class TestPointLookups:
    def test_get_by_primary_key(self, collection):
        assert collection.get("b")["properties"]["n"] == 2

    def test_get_missing_raises(self, collection):
        with pytest.raises(DocumentNotFoundError):
            collection.get("zzz")

    def test_get_without_primary_key(self):
        col = Collection("nopk")
        col.insert_one({"a": 1})
        with pytest.raises(StoreError):
            col.get("a")

    def test_find_returns_copies(self, collection):
        doc = collection.find({"name": "a"}).documents[0]
        doc["properties"]["n"] = 999
        assert collection.get("a")["properties"]["n"] == 1


class TestQueryPlanner:
    def test_primary_key_plan(self, collection):
        result = collection.find({"name": "a"})
        assert result.plan == "unique_index:name"
        assert result.candidates_examined == 1

    def test_hash_index_plan_for_in(self, collection):
        result = collection.find({"properties.labels": {"$in": ["y"]}})
        assert result.plan == "hash_index:properties.labels"
        assert {d["name"] for d in result} == {"a", "b"}

    def test_hash_index_plan_for_all(self, collection):
        result = collection.find({"properties.labels": {"$all": ["x", "y"]}})
        assert result.plan == "hash_index:properties.labels"
        assert {d["name"] for d in result} == {"a"}

    def test_geo_index_plan(self, collection):
        shape = Rectangle(BoundingBox(west=9.5, south=49.5, east=10.5, north=50.5))
        result = collection.find({"location": {"$geoIntersects": shape}})
        assert result.plan == "geo_index:location"
        assert {d["name"] for d in result} == {"a", "b"}

    def test_scan_plan(self, collection):
        result = collection.find({"properties.n": {"$gt": 1}})
        assert result.plan == "scan"
        assert {d["name"] for d in result} == {"b", "c"}

    def test_plans_agree_with_scan(self, collection):
        query = {"properties.season": "Summer"}
        indexed = collection.find(query)
        collection.drop_index("properties.season")
        scanned = collection.find(query)
        assert indexed.plan.startswith("hash_index")
        assert scanned.plan == "scan"
        assert sorted(d["name"] for d in indexed) == sorted(d["name"] for d in scanned)

    def test_index_created_after_insert_sees_existing_docs(self):
        col = Collection("later")
        col.insert_many(sample_docs())
        col.create_index("properties.season")
        result = col.find({"properties.season": "Summer"})
        assert result.plan == "hash_index:properties.season"
        assert len(result) == 2

    def test_cannot_drop_primary_key(self, collection):
        with pytest.raises(IndexError_):
            collection.drop_index("name")


class TestFindOptions:
    def test_sort_ascending(self, collection):
        result = collection.find({}, sort="properties.n")
        assert [d["name"] for d in result] == ["a", "b", "c"]

    def test_sort_descending(self, collection):
        result = collection.find({}, sort="properties.n", descending=True)
        assert [d["name"] for d in result] == ["c", "b", "a"]

    def test_limit_and_skip(self, collection):
        result = collection.find({}, sort="properties.n", skip=1, limit=1)
        assert [d["name"] for d in result] == ["b"]

    def test_projection(self, collection):
        result = collection.find({"name": "a"}, projection=["name"])
        assert result.documents == [{"name": "a"}]

    def test_find_one(self, collection):
        assert collection.find_one({"name": "c"})["properties"]["n"] == 3
        assert collection.find_one({"name": "nope"}) is None

    def test_count(self, collection):
        assert collection.count() == 3
        assert collection.count({"properties.season": "Summer"}) == 2

    def test_distinct_multikey(self, collection):
        assert collection.distinct("properties.labels") == ["x", "y", "z"]

    def test_distinct_with_query(self, collection):
        assert collection.distinct("properties.labels",
                                   {"properties.season": "Winter"}) == ["y"]


class TestMutations:
    def test_delete_one(self, collection):
        assert collection.delete_one({"name": "a"}) == 1
        assert collection.count() == 2
        assert collection.delete_one({"name": "a"}) == 0

    def test_delete_many(self, collection):
        assert collection.delete_many({"properties.season": "Summer"}) == 2
        assert collection.count() == 1

    def test_delete_updates_indexes(self, collection):
        collection.delete_one({"name": "a"})
        result = collection.find({"properties.labels": "x"})
        assert len(result) == 0
        # Freed primary key can be reused.
        collection.insert_one({"name": "a", "properties": {"labels": ["q"]}})
        assert collection.get("a")["properties"]["labels"] == ["q"]

    def test_update_one_set(self, collection):
        updated = collection.update_one({"name": "b"},
                                        {"$set": {"properties.season": "Spring"}})
        assert updated == 1
        assert collection.get("b")["properties"]["season"] == "Spring"
        # Index reflects the new value.
        assert {d["name"] for d in collection.find({"properties.season": "Spring"})} == {"b"}

    def test_update_one_unset(self, collection):
        collection.update_one({"name": "b"}, {"$unset": {"properties.season": 1}})
        assert "season" not in collection.get("b")["properties"]

    def test_update_with_callable(self, collection):
        def bump(doc):
            doc["properties"]["n"] += 10
            return doc
        collection.update_one({"name": "c"}, bump)
        assert collection.get("c")["properties"]["n"] == 13

    def test_update_no_match(self, collection):
        assert collection.update_one({"name": "zzz"}, {"$set": {"x": 1}}) == 0

    def test_update_rejects_unknown_operators(self, collection):
        with pytest.raises(StoreError):
            collection.update_one({"name": "a"}, {"$push": {"x": 1}})


class TestUpdateAtomicity:
    """A failing update_one must leave the document and every index intact.

    Regression: the replacement used to be validated only while re-adding
    it to the indexes, *after* the document had been removed — a duplicate
    key on the updated unique field (or a ``$unset`` primary key) lost the
    document and left the hash/geo indexes half-updated.
    """

    def test_collide_on_update_keeps_document(self, collection):
        with pytest.raises(DuplicateKeyError):
            collection.update_one({"name": "a"}, {"$set": {"name": "b"}})
        # Document survives, fully findable through every access path.
        assert collection.count() == 3
        assert collection.get("a")["properties"]["season"] == "Summer"
        assert {d["name"] for d in collection.find({"properties.labels": "x"})} == {"a"}
        assert {d["name"] for d in collection.find({"properties.season": "Summer"})} == {"a", "c"}
        shape = Rectangle(BoundingBox(west=9.9, south=49.9, east=10.15, north=50.2))
        assert {d["name"] for d in collection.find(
            {"location": {"$geoWithin": shape}})} == {"a"}

    def test_unset_primary_key_keeps_document(self, collection):
        with pytest.raises(IndexError_):
            collection.update_one({"name": "a"}, {"$unset": {"name": 1}})
        assert collection.count() == 3
        assert collection.get("a")["properties"]["labels"] == ["x", "y"]
        assert {d["name"] for d in collection.find({"properties.labels": "y"})} == {"a", "b"}

    def test_callable_dropping_unique_field_keeps_document(self, collection):
        def strip_name(doc):
            del doc["name"]
            return doc

        with pytest.raises(IndexError_):
            collection.update_one({"name": "c"}, strip_name)
        assert collection.get("c")["properties"]["n"] == 3

    def test_failed_update_then_valid_update_succeeds(self, collection):
        with pytest.raises(DuplicateKeyError):
            collection.update_one({"name": "a"}, {"$set": {"name": "c"}})
        assert collection.update_one(
            {"name": "a"}, {"$set": {"name": "a2"}}) == 1
        assert collection.get("a2")["properties"]["n"] == 1
        # The old key is free again and the indexes moved with the doc.
        collection.insert_one({"name": "a", "properties": {"labels": []}})
        assert {d["name"] for d in collection.find({"properties.labels": "x"})} == {"a2"}

    def test_unhashable_hash_index_value_keeps_document(self, collection):
        # HashIndex keys pass through _hashable, which raises TypeError on
        # sets; before pre-validation the doc was removed first and lost.
        with pytest.raises(TypeError):
            collection.update_one({"name": "a"},
                                  {"$set": {"properties.labels": [{1, 2}]}})
        assert collection.count() == 3
        assert collection.get("a")["properties"]["labels"] == ["x", "y"]
        assert {d["name"] for d in collection.find({"properties.labels": "x"})} == {"a"}

    def test_update_to_same_unique_value_still_allowed(self, collection):
        # Re-asserting the document's own key is not a collision.
        assert collection.update_one(
            {"name": "b"}, {"$set": {"name": "b", "properties.n": 20}}) == 1
        assert collection.get("b")["properties"]["n"] == 20

    def test_update_to_oversized_geometry_keeps_document(self, collection):
        huge = {"bbox": [-179.0, -89.0, 179.0, 89.0]}
        with pytest.raises(Exception):
            collection.update_one({"name": "a"}, {"$set": {"location": huge}})
        # The original geometry still answers geo queries.
        shape = Rectangle(BoundingBox(west=9.9, south=49.9, east=10.15, north=50.2))
        assert {d["name"] for d in collection.find(
            {"location": {"$geoWithin": shape}})} == {"a"}


class TestGeoIndexMaintenance:
    def test_geo_index_candidates_shrink_search(self, collection):
        shape = Rectangle(BoundingBox(west=-9.5, south=37.5, east=-8.5, north=38.5))
        result = collection.find({"location": {"$geoIntersects": shape}})
        assert result.candidates_examined < 3  # pruned to the Portugal doc
        assert [d["name"] for d in result] == ["c"]

    def test_geo_index_conflicting_precision_rejected(self, collection):
        with pytest.raises(IndexError_):
            collection.create_geo_index("location", precision=7)

    def test_geo_index_same_precision_idempotent(self, collection):
        collection.create_geo_index("location", precision=4)  # no error
        assert "location" in collection.index_fields
