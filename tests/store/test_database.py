"""Tests for the database namespace and the EarthQube schema."""

import pytest

from repro.errors import CollectionNotFoundError, StoreError
from repro.store import Database
from repro.store.database import FEEDBACK, IMAGE_DATA, METADATA, RENDERED_IMAGES


class TestDatabase:
    def test_create_and_get(self):
        db = Database("test")
        col = db.create_collection("things")
        col.insert_one({"a": 1})
        assert len(db["things"]) == 1

    def test_duplicate_create_rejected(self):
        db = Database()
        db.create_collection("x")
        with pytest.raises(StoreError):
            db.create_collection("x")

    def test_missing_collection_raises(self):
        db = Database()
        with pytest.raises(CollectionNotFoundError):
            db["missing"]

    def test_contains_and_iter(self):
        db = Database()
        db.create_collection("a")
        db.create_collection("b")
        assert "a" in db and "c" not in db
        assert sorted(db) == ["a", "b"]

    def test_drop_collection(self):
        db = Database()
        db.create_collection("gone")
        db.drop_collection("gone")
        assert "gone" not in db
        with pytest.raises(CollectionNotFoundError):
            db.drop_collection("gone")

    def test_collection_names_sorted(self):
        db = Database()
        for name in ("zeta", "alpha"):
            db.create_collection(name)
        assert db.collection_names() == ["alpha", "zeta"]


class TestEarthQubeSchema:
    def test_four_collections(self):
        db = Database.earthqube_schema()
        assert set(db.collection_names()) == {METADATA, IMAGE_DATA,
                                              RENDERED_IMAGES, FEEDBACK}

    def test_metadata_indexes(self):
        db = Database.earthqube_schema()
        fields = db[METADATA].index_fields
        assert "name" in fields          # auto-indexed primary key
        assert "location" in fields      # 2D geohash index
        assert "properties.labels" in fields
        assert "properties.label_chars" in fields

    def test_image_collections_keyed_by_name(self):
        db = Database.earthqube_schema()
        assert db[IMAGE_DATA].primary_key == "name"
        assert db[RENDERED_IMAGES].primary_key == "name"

    def test_feedback_has_no_primary_key(self):
        db = Database.earthqube_schema()
        assert db[FEEDBACK].primary_key is None

    def test_geo_precision_configurable(self):
        db = Database.earthqube_schema(geo_precision=3)
        # Indexing works end to end at the chosen precision.
        db[METADATA].insert_one({
            "name": "p1", "location": {"bbox": [0.0, 0.0, 0.1, 0.1]},
            "properties": {"labels": ["x"]}})
        assert len(db[METADATA]) == 1
