"""Tests for the baseline hashing methods and brute-force kNN."""

import numpy as np
import pytest

from repro.baselines import (
    BruteForceFeatureIndex,
    ITQHashing,
    PCASignHashing,
    RandomHyperplaneLSH,
)
from repro.errors import EmptyIndexError, NotFittedError, ValidationError


@pytest.fixture(scope="module")
def gaussian_features():
    rng = np.random.default_rng(5)
    # Two well-separated clusters so similarity is measurable.
    a = rng.standard_normal((60, 40)) + 4.0
    b = rng.standard_normal((60, 40)) - 4.0
    return np.vstack([a, b])


class TestLSH:
    def test_bits_shape_and_values(self, gaussian_features):
        lsh = RandomHyperplaneLSH(32, seed=0).fit(gaussian_features)
        bits = lsh.hash_bits(gaussian_features)
        assert bits.shape == (120, 32)
        assert set(np.unique(bits)) <= {0, 1}

    def test_single_vector(self, gaussian_features):
        lsh = RandomHyperplaneLSH(32, seed=0).fit(gaussian_features)
        assert lsh.hash_bits(gaussian_features[0]).shape == (32,)

    def test_deterministic_given_seed(self, gaussian_features):
        a = RandomHyperplaneLSH(32, seed=3).fit(gaussian_features)
        b = RandomHyperplaneLSH(32, seed=3).fit(gaussian_features)
        np.testing.assert_array_equal(a.hash_packed(gaussian_features),
                                      b.hash_packed(gaussian_features))

    def test_cluster_members_closer_in_hamming(self, gaussian_features):
        from repro.index import hamming_distance
        lsh = RandomHyperplaneLSH(64, seed=0).fit(gaussian_features)
        packed = lsh.hash_packed(gaussian_features)
        within = hamming_distance(packed[0], packed[1])       # same cluster
        across = hamming_distance(packed[0], packed[70])       # other cluster
        assert within < across

    def test_unfitted_raises(self, gaussian_features):
        with pytest.raises(NotFittedError):
            RandomHyperplaneLSH(32).hash_bits(gaussian_features)

    def test_invalid_bits(self):
        with pytest.raises(ValidationError):
            RandomHyperplaneLSH(10)


class TestPCASign:
    def test_bits_shape(self, gaussian_features):
        method = PCASignHashing(16).fit(gaussian_features)
        bits = method.hash_bits(gaussian_features)
        assert bits.shape == (120, 16)

    def test_first_bit_separates_clusters(self, gaussian_features):
        method = PCASignHashing(16).fit(gaussian_features)
        bits = method.hash_bits(gaussian_features)
        first = bits[:, 0]
        # The top principal component is the cluster axis.
        assert abs(first[:60].mean() - first[60:].mean()) > 0.9

    def test_unfitted_raises(self, gaussian_features):
        with pytest.raises(NotFittedError):
            PCASignHashing(16).hash_bits(gaussian_features)


class TestITQ:
    def test_rotation_is_orthogonal(self, gaussian_features):
        itq = ITQHashing(16, iterations=20, seed=0).fit(gaussian_features)
        gram = itq.rotation_ @ itq.rotation_.T
        np.testing.assert_allclose(gram, np.eye(16), atol=1e-8)

    def test_quantization_error_decreases(self, gaussian_features):
        itq = ITQHashing(16, iterations=30, seed=0).fit(gaussian_features)
        errors = itq.quantization_errors_
        assert errors[-1] <= errors[0]

    def test_bits_shape(self, gaussian_features):
        itq = ITQHashing(24, iterations=10, seed=0).fit(gaussian_features)
        assert itq.hash_bits(gaussian_features).shape == (120, 24)

    def test_itq_beats_pca_sign_on_balance(self, gaussian_features):
        """ITQ's rotation balances bits that raw PCA leaves degenerate."""
        from repro.core.binarize import bit_entropy
        pca_bits = PCASignHashing(16).fit(gaussian_features).hash_bits(gaussian_features)
        itq_bits = ITQHashing(16, iterations=30, seed=0).fit(
            gaussian_features).hash_bits(gaussian_features)
        assert bit_entropy(itq_bits) >= bit_entropy(pca_bits) - 0.05

    def test_validation(self):
        with pytest.raises(ValidationError):
            ITQHashing(16, iterations=0)
        with pytest.raises(NotFittedError):
            ITQHashing(16).hash_bits(np.zeros((2, 4)))


class TestBruteForce:
    def test_exact_euclidean_knn(self, gaussian_features):
        index = BruteForceFeatureIndex()
        index.build(list(range(120)), gaussian_features)
        results = index.search_knn(gaussian_features[0], 5)
        assert results[0].item_id == 0
        # All top-5 from the same cluster.
        assert all(r.item_id < 60 for r in results)

    def test_cosine_metric(self, gaussian_features):
        index = BruteForceFeatureIndex(metric="cosine")
        index.build(list(range(120)), gaussian_features)
        results = index.search_knn(gaussian_features[5], 3)
        assert results[0].item_id == 5

    def test_matches_numpy_argsort(self, rng):
        features = rng.standard_normal((50, 8))
        index = BruteForceFeatureIndex()
        index.build(list(range(50)), features)
        query = features[7]
        expected = np.argsort(((features - query) ** 2).sum(axis=1))[:4]
        actual = [r.item_id for r in index.search_knn(query, 4)]
        assert actual == list(expected)

    def test_storage_bytes(self, gaussian_features):
        index = BruteForceFeatureIndex()
        assert index.storage_bytes() == 0
        index.build(list(range(120)), gaussian_features)
        assert index.storage_bytes() == 120 * 40 * 8

    def test_validation(self, gaussian_features):
        with pytest.raises(ValidationError):
            BruteForceFeatureIndex(metric="manhattan")
        index = BruteForceFeatureIndex()
        with pytest.raises(EmptyIndexError):
            index.search_knn(gaussian_features[0], 3)
        index.build(list(range(120)), gaussian_features)
        with pytest.raises(ValidationError):
            index.search_knn(gaussian_features[0], 0)
