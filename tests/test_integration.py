"""Cross-module integration tests.

These knit together subsystems that the per-package suites test in
isolation: archive persistence feeding a live system, hasher state moving
between processes, API-over-system flows, and configuration limits being
honored end to end.
"""

import numpy as np

from repro import MiLaNHasher
from repro.bigearthnet.io import load_archive, save_archive
from repro.earthqube import EarthQubeAPI, QuerySpec


class TestArchivePersistenceIntegration:
    def test_saved_archive_produces_identical_features(self, archive, extractor,
                                                       features, tmp_path):
        save_archive(archive, tmp_path / "arch")
        loaded = load_archive(tmp_path / "arch")
        reloaded_features = extractor.extract_many(loaded.patches[:10])
        np.testing.assert_allclose(reloaded_features, features[:10], rtol=1e-6)

    def test_saved_archive_label_matrix_identical(self, archive, label_matrix,
                                                  tmp_path):
        save_archive(archive, tmp_path / "arch2")
        loaded = load_archive(tmp_path / "arch2")
        np.testing.assert_array_equal(loaded.label_matrix(), label_matrix)


class TestHasherPortability:
    def test_state_dict_transfers_to_fresh_process_equivalent(self, system, tmp_path):
        """Simulate shipping the trained model: save state, rebuild from
        scratch, verify the archive hashes to identical codes."""
        state = system.hasher.state_dict()
        np.savez_compressed(tmp_path / "milan.npz", **state)

        with np.load(tmp_path / "milan.npz") as archive_file:
            restored_state = {k: archive_file[k] for k in archive_file.files}
        fresh = MiLaNHasher(system.hasher.milan_config, system.hasher.train_config)
        fresh.load_state_dict(restored_state, feature_dim=system.features.shape[1])
        np.testing.assert_array_equal(
            fresh.hash_packed(system.features[:25]),
            system.hasher.hash_packed(system.features[:25]))


class TestSystemLimits:
    def test_render_many_respects_configured_cap(self, system):
        cap = system.config.max_rendered_images
        names = system.archive.names * (cap // len(system.archive) + 2)
        # Build a name list longer than the cap from real names (duplicates
        # are fine for the cap check).
        unique_names = list(dict.fromkeys(names))[: len(system.archive)]
        renders = system.render_many(unique_names)
        assert len(renders) <= cap

    def test_cart_page_limit_comes_from_config(self, system):
        cart = system.new_cart()
        assert cart.page_limit == system.config.cart_page_limit


class TestAPIOverSystemFlows:
    def test_search_then_similar_then_statistics(self, system):
        """The scenario-2 click path through the JSON API layer."""
        api = EarthQubeAPI(system)
        search = api.search({"shape": {
            "type": "rectangle", "west": -11.0, "south": 36.0,
            "east": 32.0, "north": 71.0}, "limit": 5})
        assert search["ok"] and search["names"]
        similar = api.similar({"name": search["names"][0], "k": 5})
        assert similar["ok"]
        stats = api.statistics({"names": [r["name"] for r in similar["results"]]})
        assert stats["ok"] and stats["bars"]

    def test_api_round_trips_are_json_safe(self, system):
        import json
        api = EarthQubeAPI(system)
        for response in (
            api.search({"seasons": ["Summer"], "limit": 2}),
            api.similar({"name": system.archive.names[0], "k": 2}),
            api.statistics({"names": system.archive.names[:3]}),
            api.describe(),
        ):
            json.dumps(response)  # raises if anything non-serializable leaks


class TestQueryPanelEquivalences:
    def test_hierarchy_expansion_equals_explicit_selection(self, system):
        """Selecting Level-2 'Forests' == selecting its three Level-3 leaves."""
        from repro.bigearthnet.clc import get_nomenclature
        expanded = get_nomenclature().expand_selection(["31"])
        explicit = ("Broad-leaved forest", "Coniferous forest", "Mixed forest")
        response_a = system.search(QuerySpec(labels=tuple(expanded)))
        response_b = system.search(QuerySpec(labels=explicit))
        assert sorted(response_a.names) == sorted(response_b.names)

    def test_empty_spatial_region_returns_nothing(self, system):
        from repro.geo import Circle
        # Mid-Atlantic: no BigEarthNet country covers it.
        response = system.search(QuerySpec(shape=Circle(lon=-40.0, lat=45.0,
                                                        radius_km=200)))
        assert response.total_matches == 0

    def test_conflicting_filters_compose_to_empty(self, system):
        spec = QuerySpec(date_from="2017-06-01", date_to="2017-06-02",
                         seasons=("Winter",))  # June is never Winter
        assert system.count(spec) == 0
