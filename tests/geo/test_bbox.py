"""Tests for repro.geo.bbox."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import GeoError
from repro.geo import BoundingBox


def make_box(west=-10.0, south=40.0, east=10.0, north=50.0):
    return BoundingBox(west=west, south=south, east=east, north=north)


class TestConstruction:
    def test_valid_box(self):
        box = make_box()
        assert box.west == -10.0 and box.north == 50.0

    def test_point_box_is_allowed(self):
        box = BoundingBox(west=5.0, south=5.0, east=5.0, north=5.0)
        assert box.area_deg2 == 0.0

    def test_west_greater_than_east_rejected(self):
        with pytest.raises(GeoError):
            BoundingBox(west=10.0, south=0.0, east=-10.0, north=5.0)

    def test_south_greater_than_north_rejected(self):
        with pytest.raises(GeoError):
            BoundingBox(west=0.0, south=10.0, east=5.0, north=-10.0)

    def test_longitude_out_of_range_rejected(self):
        with pytest.raises(GeoError):
            BoundingBox(west=-181.0, south=0.0, east=0.0, north=1.0)

    def test_latitude_out_of_range_rejected(self):
        with pytest.raises(GeoError):
            BoundingBox(west=0.0, south=-91.0, east=1.0, north=0.0)

    def test_from_center(self):
        box = BoundingBox.from_center(10.0, 45.0, 2.0, 4.0)
        assert box.west == pytest.approx(9.0)
        assert box.east == pytest.approx(11.0)
        assert box.south == pytest.approx(43.0)
        assert box.north == pytest.approx(47.0)

    def test_from_center_clamps_to_valid_range(self):
        box = BoundingBox.from_center(179.5, 89.5, 2.0, 2.0)
        assert box.east == 180.0
        assert box.north == 90.0

    def test_from_center_negative_extent_rejected(self):
        with pytest.raises(GeoError):
            BoundingBox.from_center(0.0, 0.0, -1.0, 1.0)


class TestGeometry:
    def test_center(self):
        assert make_box().center == (0.0, 45.0)

    def test_width_height_area(self):
        box = make_box()
        assert box.width == 20.0
        assert box.height == 10.0
        assert box.area_deg2 == 200.0

    def test_contains_point_inside(self):
        assert make_box().contains_point(0.0, 45.0)

    def test_contains_point_on_boundary(self):
        assert make_box().contains_point(-10.0, 40.0)

    def test_contains_point_outside(self):
        assert not make_box().contains_point(11.0, 45.0)

    def test_contains_bbox(self):
        inner = BoundingBox(west=-5.0, south=42.0, east=5.0, north=48.0)
        assert make_box().contains_bbox(inner)
        assert not inner.contains_bbox(make_box())

    def test_intersects_overlapping(self):
        other = BoundingBox(west=5.0, south=45.0, east=15.0, north=55.0)
        assert make_box().intersects(other)
        assert other.intersects(make_box())

    def test_intersects_touching_edge(self):
        other = BoundingBox(west=10.0, south=40.0, east=20.0, north=50.0)
        assert make_box().intersects(other)

    def test_intersects_disjoint(self):
        other = BoundingBox(west=20.0, south=40.0, east=30.0, north=50.0)
        assert not make_box().intersects(other)

    def test_intersection_shape(self):
        other = BoundingBox(west=0.0, south=45.0, east=20.0, north=55.0)
        overlap = make_box().intersection(other)
        assert overlap == BoundingBox(west=0.0, south=45.0, east=10.0, north=50.0)

    def test_intersection_disjoint_is_none(self):
        other = BoundingBox(west=50.0, south=40.0, east=60.0, north=50.0)
        assert make_box().intersection(other) is None

    def test_union_covers_both(self):
        other = BoundingBox(west=30.0, south=30.0, east=40.0, north=42.0)
        union = make_box().union(other)
        assert union.contains_bbox(make_box())
        assert union.contains_bbox(other)

    def test_expand(self):
        grown = make_box().expand(1.0)
        assert grown.west == -11.0 and grown.north == 51.0

    def test_expand_negative_rejected(self):
        with pytest.raises(GeoError):
            make_box().expand(-0.1)

    def test_expand_clamps(self):
        box = BoundingBox(west=-179.5, south=-89.5, east=179.5, north=89.5)
        grown = box.expand(10.0)
        assert grown.as_tuple() == (-180.0, -90.0, 180.0, 90.0)


class TestSerialization:
    def test_tuple_roundtrip(self):
        box = make_box()
        assert BoundingBox.from_tuple(box.as_tuple()) == box

    def test_from_tuple_wrong_length(self):
        with pytest.raises(GeoError):
            BoundingBox.from_tuple((1.0, 2.0, 3.0))

    def test_geojson_ring_is_closed(self):
        geo = make_box().to_geojson()
        ring = geo["coordinates"][0]
        assert geo["type"] == "Polygon"
        assert ring[0] == ring[-1]
        assert len(ring) == 5


@given(
    lon=st.floats(min_value=-170, max_value=170),
    lat=st.floats(min_value=-80, max_value=80),
    w=st.floats(min_value=0.01, max_value=10),
    h=st.floats(min_value=0.01, max_value=10),
)
def test_property_center_box_contains_its_center(lon, lat, w, h):
    box = BoundingBox.from_center(lon, lat, w, h)
    clon, clat = box.center
    assert box.contains_point(clon, clat)


@given(
    west=st.floats(min_value=-100, max_value=0),
    south=st.floats(min_value=-50, max_value=0),
    dw=st.floats(min_value=0, max_value=50),
    dh=st.floats(min_value=0, max_value=40),
)
def test_property_intersection_is_commutative_and_contained(west, south, dw, dh):
    a = BoundingBox(west=west, south=south, east=west + dw, north=south + dh)
    b = BoundingBox(west=west + dw / 2, south=south + dh / 2,
                    east=west + dw / 2 + 10, north=south + dh / 2 + 10)
    inter_ab = a.intersection(b)
    inter_ba = b.intersection(a)
    assert inter_ab == inter_ba
    if inter_ab is not None:
        assert a.contains_bbox(inter_ab)
        assert b.contains_bbox(inter_ab)
