"""Tests for repro.geo.geohash (including hypothesis roundtrips)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import GeoError
from repro.geo import BoundingBox, cover_bbox, decode, decode_bbox, encode, neighbors
from repro.geo.geohash import cell_size


class TestKnownValues:
    """Anchor against well-known public geohash examples."""

    def test_encode_jutland(self):
        # The canonical example from the original geohash documentation.
        assert encode(-5.6, 42.6, 5) == "ezs42"

    def test_encode_berlin(self):
        assert encode(13.4050, 52.5200, 6) == "u33dc0"

    def test_decode_contains_original_point(self):
        box = decode_bbox("ezs42")
        assert box.contains_point(-5.6, 42.6)

    def test_single_char_cells_tile_the_world(self):
        box = decode_bbox("s")
        assert box.width == pytest.approx(45.0)
        assert box.height == pytest.approx(45.0)


class TestValidation:
    def test_bad_precision(self):
        with pytest.raises(GeoError):
            encode(0.0, 0.0, 0)
        with pytest.raises(GeoError):
            encode(0.0, 0.0, 13)

    def test_bad_longitude(self):
        with pytest.raises(GeoError):
            encode(181.0, 0.0, 5)

    def test_bad_latitude(self):
        with pytest.raises(GeoError):
            encode(0.0, 91.0, 5)

    def test_decode_empty(self):
        with pytest.raises(GeoError):
            decode_bbox("")

    def test_decode_invalid_character(self):
        # 'a' is not in the geohash base-32 alphabet.
        with pytest.raises(GeoError):
            decode_bbox("ua")


class TestNeighbors:
    def test_eight_neighbors_inland(self):
        result = neighbors("u33dc")
        assert set(result) == {"n", "s", "e", "w", "ne", "nw", "se", "sw"}

    def test_neighbors_are_adjacent_cells(self):
        center = decode_bbox("u33dc")
        for direction, cell in neighbors("u33dc").items():
            box = decode_bbox(cell)
            assert box.width == pytest.approx(center.width)
            # neighbor boxes touch the center box
            assert center.expand(1e-9).intersects(box)

    def test_neighbors_at_north_pole_missing_north(self):
        top_cell = encode(0.0, 89.99, 4)
        result = neighbors(top_cell)
        assert "n" not in result
        assert "s" in result

    def test_neighbors_distinct(self):
        result = neighbors("ezs42")
        assert len(set(result.values())) == len(result)


class TestCellSize:
    def test_precision_5_cell_size(self):
        width, height = cell_size(5)
        # ~0.044 degrees at precision 5
        assert width == pytest.approx(360.0 / 2 ** 13)
        assert height == pytest.approx(180.0 / 2 ** 12)

    def test_sizes_shrink_with_precision(self):
        for p in range(1, 12):
            w1, h1 = cell_size(p)
            w2, h2 = cell_size(p + 1)
            assert w2 < w1 and h2 < h1


class TestCoverBbox:
    def test_cover_contains_cell_of_every_corner(self):
        box = BoundingBox(west=13.0, south=52.0, east=13.5, north=52.3)
        cover = set(cover_bbox(box, 4))
        for lon, lat in [(13.0, 52.0), (13.5, 52.0), (13.0, 52.3), (13.5, 52.3)]:
            assert encode(lon, lat, 4) in cover

    def test_cover_cells_all_intersect_box(self):
        box = BoundingBox(west=-9.0, south=38.0, east=-8.5, north=38.4)
        for cell in cover_bbox(box, 5):
            assert decode_bbox(cell).intersects(box)

    def test_tiny_box_single_cell(self):
        box = BoundingBox(west=10.0, south=50.0, east=10.001, north=50.001)
        cover = cover_bbox(box, 4)
        assert len(cover) == 1

    def test_cover_exceeding_max_cells_raises(self):
        world = BoundingBox(west=-180, south=-90, east=180, north=90)
        with pytest.raises(GeoError):
            cover_bbox(world, 6, max_cells=100)

    def test_cover_unique(self):
        box = BoundingBox(west=5.0, south=45.0, east=7.0, north=46.5)
        cover = cover_bbox(box, 3)
        assert len(cover) == len(set(cover))


@given(
    lon=st.floats(min_value=-180, max_value=180),
    lat=st.floats(min_value=-90, max_value=90),
    precision=st.integers(min_value=1, max_value=9),
)
def test_property_decode_cell_contains_encoded_point(lon, lat, precision):
    cell = encode(lon, lat, precision)
    assert len(cell) == precision
    assert decode_bbox(cell).contains_point(lon, lat)


@given(
    lon=st.floats(min_value=-179, max_value=179),
    lat=st.floats(min_value=-89, max_value=89),
    precision=st.integers(min_value=4, max_value=8),
)
def test_property_encode_decode_encode_is_stable(lon, lat, precision):
    cell = encode(lon, lat, precision)
    center_lon, center_lat = decode(cell)
    assert encode(center_lon, center_lat, precision) == cell


@settings(max_examples=40)
@given(
    lon=st.floats(min_value=-170, max_value=169),
    lat=st.floats(min_value=-80, max_value=79),
    precision=st.integers(min_value=3, max_value=6),
)
def test_property_cover_includes_center_cell(lon, lat, precision):
    box = BoundingBox.from_center(lon, lat, 0.5, 0.5)
    cover = cover_bbox(box, precision, max_cells=8192)
    assert encode(*box.center, precision) in cover
