"""Tests for repro.geo.shapes and repro.geo.distance."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import GeoError
from repro.geo import BoundingBox, Circle, Polygon, Rectangle, haversine_km
from repro.geo.distance import km_per_degree_lat, km_per_degree_lon


class TestHaversine:
    def test_zero_distance(self):
        assert haversine_km(13.4, 52.5, 13.4, 52.5) == 0.0

    def test_known_distance_berlin_paris(self):
        # Berlin -> Paris is ~878 km.
        distance = haversine_km(13.4050, 52.5200, 2.3522, 48.8566)
        assert distance == pytest.approx(878, rel=0.01)

    def test_symmetry(self):
        d1 = haversine_km(0.0, 0.0, 10.0, 10.0)
        d2 = haversine_km(10.0, 10.0, 0.0, 0.0)
        assert d1 == pytest.approx(d2)

    def test_out_of_range_rejected(self):
        with pytest.raises(GeoError):
            haversine_km(0.0, 95.0, 0.0, 0.0)

    def test_km_per_degree_lat_constant(self):
        assert km_per_degree_lat() == pytest.approx(111.195, rel=1e-3)

    def test_km_per_degree_lon_shrinks_with_latitude(self):
        assert km_per_degree_lon(60.0) == pytest.approx(km_per_degree_lat() / 2, rel=1e-6)

    def test_km_per_degree_lon_bad_lat(self):
        with pytest.raises(GeoError):
            km_per_degree_lon(91.0)


class TestRectangle:
    def test_contains_point(self):
        rect = Rectangle.from_corners(0.0, 0.0, 10.0, 10.0)
        assert rect.contains_point(5.0, 5.0)
        assert not rect.contains_point(-1.0, 5.0)

    def test_bounding_box_is_self(self):
        rect = Rectangle.from_corners(0.0, 0.0, 10.0, 10.0)
        assert rect.bounding_box() == rect.box

    def test_intersects_bbox(self):
        rect = Rectangle.from_corners(0.0, 0.0, 10.0, 10.0)
        assert rect.intersects_bbox(BoundingBox(west=5, south=5, east=15, north=15))
        assert not rect.intersects_bbox(BoundingBox(west=11, south=11, east=15, north=15))


class TestCircle:
    def test_contains_center(self):
        circle = Circle(lon=10.0, lat=50.0, radius_km=10.0)
        assert circle.contains_point(10.0, 50.0)

    def test_contains_point_within_radius(self):
        circle = Circle(lon=10.0, lat=50.0, radius_km=50.0)
        # ~0.4 degrees of latitude is ~44 km
        assert circle.contains_point(10.0, 50.4)
        assert not circle.contains_point(10.0, 51.0)

    def test_bounding_box_contains_circle_points(self):
        circle = Circle(lon=10.0, lat=60.0, radius_km=100.0)
        box = circle.bounding_box()
        # Cardinal extremes of the circle must be inside the box.
        dlat = 100.0 / km_per_degree_lat()
        assert box.contains_point(10.0, 60.0 + dlat)
        assert box.contains_point(10.0, 60.0 - dlat)
        dlon = 100.0 / km_per_degree_lon(60.0)
        assert box.contains_point(10.0 + dlon * 0.99, 60.0)

    def test_invalid_radius(self):
        with pytest.raises(GeoError):
            Circle(lon=0.0, lat=0.0, radius_km=0.0)

    def test_invalid_center(self):
        with pytest.raises(GeoError):
            Circle(lon=200.0, lat=0.0, radius_km=1.0)

    def test_intersects_bbox_exact_nearest_point(self):
        circle = Circle(lon=0.0, lat=0.0, radius_km=120.0)
        # Box starting ~1 degree east (~111 km): circle reaches it.
        near = BoundingBox(west=1.0, south=-0.5, east=2.0, north=0.5)
        assert circle.intersects_bbox(near)
        far = BoundingBox(west=2.0, south=-0.5, east=3.0, north=0.5)
        assert not circle.intersects_bbox(far)


class TestPolygon:
    @pytest.fixture()
    def triangle(self):
        return Polygon(((0.0, 0.0), (10.0, 0.0), (5.0, 10.0)))

    def test_contains_interior_point(self, triangle):
        assert triangle.contains_point(5.0, 3.0)

    def test_excludes_exterior_point(self, triangle):
        assert not triangle.contains_point(0.0, 9.0)

    def test_vertex_counts_as_inside(self, triangle):
        assert triangle.contains_point(0.0, 0.0)

    def test_edge_point_counts_as_inside(self, triangle):
        assert triangle.contains_point(5.0, 0.0)

    def test_needs_three_vertices(self):
        with pytest.raises(GeoError):
            Polygon(((0.0, 0.0), (1.0, 1.0)))

    def test_vertex_out_of_range(self):
        with pytest.raises(GeoError):
            Polygon(((0.0, 0.0), (200.0, 0.0), (0.0, 10.0)))

    def test_from_coords_drops_closing_vertex(self):
        poly = Polygon.from_coords([(0, 0), (10, 0), (5, 10), (0, 0)])
        assert len(poly.vertices) == 3

    def test_bounding_box(self, triangle):
        box = triangle.bounding_box()
        assert box.as_tuple() == (0.0, 0.0, 10.0, 10.0)

    def test_intersects_bbox_overlap(self, triangle):
        assert triangle.intersects_bbox(BoundingBox(west=4, south=1, east=6, north=2))

    def test_intersects_bbox_box_inside_polygon(self, triangle):
        assert triangle.intersects_bbox(BoundingBox(west=4.5, south=2, east=5.5, north=3))

    def test_intersects_bbox_polygon_inside_box(self, triangle):
        assert triangle.intersects_bbox(BoundingBox(west=-5, south=-5, east=15, north=15))

    def test_intersects_bbox_disjoint(self, triangle):
        assert not triangle.intersects_bbox(BoundingBox(west=20, south=20, east=30, north=30))

    def test_intersects_bbox_edge_piercing(self):
        # Thin sliver polygon crossing a box without any vertex inside it.
        sliver = Polygon(((-5.0, 4.9), (15.0, 5.1), (15.0, 5.2), (-5.0, 5.0)))
        box = BoundingBox(west=0.0, south=0.0, east=10.0, north=10.0)
        assert sliver.intersects_bbox(box)

    def test_concave_polygon_membership(self):
        # A "U" shape: the notch is outside.
        u_shape = Polygon(((0, 0), (10, 0), (10, 10), (7, 10), (7, 3), (3, 3), (3, 10), (0, 10)))
        assert not u_shape.contains_point(5.0, 8.0)   # inside the notch
        assert u_shape.contains_point(5.0, 1.0)       # bottom bar
        assert u_shape.contains_point(1.0, 8.0)       # left arm


@given(
    lon=st.floats(min_value=-10, max_value=10),
    lat=st.floats(min_value=40, max_value=60),
    radius=st.floats(min_value=1.0, max_value=300.0),
)
def test_property_circle_bounding_box_contains_circle(lon, lat, radius):
    circle = Circle(lon=lon, lat=lat, radius_km=radius)
    box = circle.bounding_box()
    # Sample boundary points in all directions via small-circle approximation.
    for frac in (0.0, 0.25, 0.5, 0.75):
        import math
        theta = 2 * math.pi * frac
        dlat = (radius / km_per_degree_lat()) * math.sin(theta)
        dlon = (radius / max(km_per_degree_lon(lat), 1e-9)) * math.cos(theta) * 0.999
        plon, plat = lon + dlon, lat + dlat
        if -180 <= plon <= 180 and -90 <= plat <= 90 and circle.contains_point(plon, plat):
            assert box.contains_point(plon, plat)
